//! The `e2eprof` command-line tool: black-box service-path analysis of
//! application-level transaction logs.
//!
//! ```sh
//! e2eprof analyze trace.csv --window 60s --tau 1ms --format text
//! e2eprof demo
//! e2eprof distributed --transport tcp --shards 4
//! e2eprof broker --listen 127.0.0.1:7070
//! ```
//!
//! The log format is one message per line: `timestamp_ns,src,dst`
//! (`#` comments and blank lines ignored). Output formats: `text`
//! (annotated graphs), `dot` (Graphviz), `waterfall` (ASCII timeline).

use e2eprof::core::ingest::TraceIngest;
use e2eprof::core::prelude::*;
use e2eprof::timeseries::{Nanos, Quanta};
use std::fs::File;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => analyze(&args[1..]),
        Some("demo") => demo(),
        Some("distributed") => distributed(&args[1..]),
        Some("broker") => broker(&args[1..]),
        _ => {
            eprintln!("usage: e2eprof <analyze|demo|distributed|broker> [options]");
            eprintln!();
            eprintln!("  analyze <log.csv> [options]   discover service paths from a log");
            eprintln!("      --window <dur>      sliding window W       (default 60s)");
            eprintln!("      --tau <dur>         time quantum τ         (default 1ms)");
            eprintln!("      --omega <ticks>     sampling window ω in τ (default 50)");
            eprintln!("      --max-delay <dur>   lag bound T_u          (default 2s)");
            eprintln!("      --format <f>        text | dot | waterfall (default text)");
            eprintln!("      durations: 500us, 250ms, 30s, 5m");
            eprintln!();
            eprintln!("  demo                          simulate a system and analyze it");
            eprintln!();
            eprintln!("  distributed [options]         demo over the network transport");
            eprintln!("      --transport <t>     inproc | tcp | unix (default from");
            eprintln!("                          E2EPROF_TRANSPORT, else inproc pipes)");
            eprintln!("      --shards <n>        analyzer shards        (default 2)");
            eprintln!();
            eprintln!("  broker [options]              run a standalone broker");
            eprintln!("      --listen <addr>     TCP listen address (default 127.0.0.1:7070)");
            eprintln!("      --unix <path>       listen on a Unix socket path instead");
            ExitCode::from(2)
        }
    }
}

/// Parses `500us` / `250ms` / `30s` / `5m` into nanoseconds.
fn parse_duration(s: &str) -> Result<Nanos, String> {
    let (digits, unit): (String, String) = s.chars().partition(|c| c.is_ascii_digit());
    let value: u64 = digits
        .parse()
        .map_err(|_| format!("bad duration {s:?} (expected e.g. 250ms, 30s, 5m)"))?;
    let scale = match unit.as_str() {
        "us" | "µs" => 1_000,
        "ms" => 1_000_000,
        "s" => 1_000_000_000,
        "m" | "min" => 60_000_000_000,
        other => return Err(format!("unknown duration unit {other:?} in {s:?}")),
    };
    Ok(Nanos::from_nanos(value * scale))
}

struct Options {
    path: String,
    window: Nanos,
    tau: Nanos,
    omega: u64,
    max_delay: Nanos,
    format: String,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        path: String::new(),
        window: Nanos::from_secs(60),
        tau: Nanos::from_millis(1),
        omega: 50,
        max_delay: Nanos::from_secs(2),
        format: "text".into(),
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--window" => opts.window = parse_duration(&value("--window")?)?,
            "--tau" => opts.tau = parse_duration(&value("--tau")?)?,
            "--max-delay" => opts.max_delay = parse_duration(&value("--max-delay")?)?,
            "--omega" => {
                opts.omega = value("--omega")?
                    .parse()
                    .map_err(|_| "bad --omega (expected ticks)".to_string())?
            }
            "--format" => {
                let f = value("--format")?;
                if !["text", "dot", "waterfall"].contains(&f.as_str()) {
                    return Err(format!("unknown format {f:?}"));
                }
                opts.format = f;
            }
            flag if flag.starts_with("--") => return Err(format!("unknown option {flag:?}")),
            path if opts.path.is_empty() => opts.path = path.to_owned(),
            extra => return Err(format!("unexpected argument {extra:?}")),
        }
    }
    if opts.path.is_empty() {
        return Err("missing log file (usage: e2eprof analyze <log.csv>)".into());
    }
    Ok(opts)
}

fn analyze(args: &[String]) -> ExitCode {
    let opts = match parse_options(args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("e2eprof: {e}");
            return ExitCode::from(2);
        }
    };
    let file = match File::open(&opts.path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("e2eprof: cannot open {}: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    let mut ingest = TraceIngest::new();
    let records = match ingest.read_csv(BufReader::new(file)) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("e2eprof: {}: {e}", opts.path);
            return ExitCode::from(1);
        }
    };
    if records == 0 {
        eprintln!("e2eprof: {} contains no records", opts.path);
        return ExitCode::from(1);
    }
    eprintln!(
        "{} records, {} components, horizon {:.1}s",
        records,
        ingest.num_components(),
        ingest.horizon().as_secs_f64()
    );
    let roots = ingest.infer_roots();
    if roots.is_empty() {
        eprintln!(
            "e2eprof: no clients inferred (every component both sends and receives); \
             strip client-bound responses from the log or use the library API with explicit roots"
        );
        return ExitCode::from(1);
    }
    let cfg = PathmapConfig::builder()
        .quanta(Quanta::from_nanos(opts.tau.as_nanos()))
        .omega_ticks(opts.omega)
        .window(opts.window)
        .refresh(opts.window)
        .max_delay(opts.max_delay)
        .env_overrides()
        .build();
    let labels = ingest.labels();
    let signals = ingest.build_signals(&cfg, ingest.horizon());
    let graphs = Pathmap::new(cfg).discover(&signals, &roots, &labels);
    if graphs.is_empty() {
        eprintln!("e2eprof: no service graphs discovered (not enough traffic in the window?)");
        return ExitCode::from(1);
    }
    for g in &graphs {
        match opts.format.as_str() {
            "dot" => print!("{}", g.to_dot()),
            "waterfall" => {
                println!("client {}:", g.client_label);
                print!("{}", g.to_waterfall(48));
                println!();
            }
            _ => println!("{g}"),
        }
    }
    ExitCode::SUCCESS
}

/// Builds the three-tier demo topology shared by `demo` and
/// `distributed`.
fn demo_topology() -> e2eprof::netsim::Topology {
    use e2eprof::netsim::prelude::*;
    use e2eprof::netsim::Route;
    let mut t = TopologyBuilder::new();
    let class = t.service_class("browse");
    let web = t.service(
        "web",
        ServiceConfig::new(DelayDist::normal_millis(3, 1)).with_servers(4),
    );
    let app = t.service(
        "app",
        ServiceConfig::new(DelayDist::normal_millis(15, 3)).with_servers(4),
    );
    let db = t.service(
        "db",
        ServiceConfig::new(DelayDist::normal_millis(6, 1)).with_servers(4),
    );
    let client = t.client("client", class, web, Workload::poisson(25.0));
    t.connect(client, web, DelayDist::constant_millis(1));
    t.connect(web, app, DelayDist::constant_millis(1));
    t.connect(app, db, DelayDist::constant_millis(1));
    t.route(web, class, Route::fixed(app));
    t.route(app, class, Route::fixed(db));
    t.route(db, class, Route::terminal());
    t.build().expect("demo topology")
}

/// Runs the demo system through the real network transport: broker +
/// socket-backed tracer links + a sharded analyzer tier, all in this
/// process, on the selected transport.
fn distributed(args: &[String]) -> ExitCode {
    use e2eprof::net::pipeline::{Endpoint, PipelineBuilder};
    use e2eprof::netsim::Simulation;

    let mut transport: Option<String> = None;
    let mut shards = 2usize;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--transport" => value("--transport").map(|v| transport = Some(v)),
            "--shards" => value("--shards").and_then(|v| {
                v.parse()
                    .map(|n: usize| shards = n.max(1))
                    .map_err(|_| "bad --shards (expected a count)".into())
            }),
            flag => Err(format!("unknown option {flag:?}")),
        };
        if let Err(e) = result {
            eprintln!("e2eprof: {e}");
            return ExitCode::from(2);
        }
    }

    let cfg = PathmapConfig::builder()
        .window(Nanos::from_secs(60))
        .refresh(Nanos::from_secs(15))
        .max_delay(Nanos::from_secs(2))
        .env_overrides()
        .build();
    let selected = match transport.as_deref() {
        Some("tcp") => Transport::Tcp,
        Some("unix") => Transport::Unix,
        Some("inproc") => Transport::InProcess,
        Some(other) => {
            eprintln!("e2eprof: unknown transport {other:?} (inproc | tcp | unix)");
            return ExitCode::from(2);
        }
        None => cfg.transport(),
    };
    let endpoint = match selected {
        Transport::Tcp => Endpoint::Tcp,
        Transport::Unix => Endpoint::Unix,
        // The in-process demo still exercises the full broker/framing
        // stack — just over deterministic in-memory pipes.
        Transport::InProcess => Endpoint::Mem,
    };
    let bound = match endpoint.bind() {
        Ok(b) => b,
        Err(e) => {
            eprintln!("e2eprof: cannot bind {endpoint:?} endpoint: {e}");
            return ExitCode::from(1);
        }
    };
    println!("transport: {bound:?}, {shards} analyzer shard(s)\n");

    let mut sim = Simulation::new(demo_topology(), 7);
    let mut pipeline = PipelineBuilder::new(cfg, shards).build(sim.topology(), &bound);
    let mut graphs = Vec::new();
    for step in 1..=6u64 {
        let now = Nanos::from_secs(15 * step);
        graphs = pipeline.step(&mut sim, now, Nanos::from_secs(1));
    }
    for g in &graphs {
        println!("{g}");
    }
    println!(
        "frames: {} emitted, {} dropped; broker delivered {}, rejected {} duplicates",
        pipeline.frames_emitted(),
        pipeline.frames_dropped(),
        pipeline.broker().delivered(),
        pipeline.broker().duplicates_rejected(),
    );
    let incremental = pipeline
        .shards()
        .iter()
        .filter_map(|s| s.analyzer.incremental_stats())
        .fold(None, |acc: Option<IncrementalStats>, stats| {
            let mut total = acc.unwrap_or_default();
            total.absorb(stats);
            Some(total)
        });
    if let Some(stats) = incremental {
        println!(
            "incremental: {}/{} fine pair(s) skipped ({:.0}%), {}/{} root graph(s) reused",
            stats.fine_skipped,
            stats.fine_pairs,
            stats.fine_skipped_fraction() * 100.0,
            stats.reused_roots,
            stats.roots,
        );
    }
    if pipeline.backfills_emitted() > 0 {
        println!(
            "reduction: {} backfill frame(s) emitted",
            pipeline.backfills_emitted()
        );
    }
    for (node, redials) in pipeline.link_redials() {
        if redials > 0 {
            println!("link node {node}: {redials} reconnect(s)");
        }
    }
    for (node, reconnects) in pipeline.hint_reconnects() {
        if reconnects > 0 {
            println!("hint link node {node}: {reconnects} reconnect(s)");
        }
    }
    let total_redials: u64 = pipeline.link_redials().iter().map(|&(_, r)| r).sum();
    println!(
        "links: {} total reconnect(s) across {} tracer link(s)",
        total_redials,
        pipeline.link_redials().len()
    );
    pipeline.shutdown();
    ExitCode::SUCCESS
}

/// Runs a standalone broker until killed: tracers connect and publish,
/// analyzers subscribe — the process is the deployment's rendezvous
/// point.
fn broker(args: &[String]) -> ExitCode {
    use e2eprof::net::{Acceptor, BrokerConfig, BrokerHandle};
    use std::sync::Arc;

    let mut listen = "127.0.0.1:7070".to_string();
    let mut unix: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        let result = match arg.as_str() {
            "--listen" => value("--listen").map(|v| listen = v),
            "--unix" => value("--unix").map(|v| unix = Some(v)),
            flag => Err(format!("unknown option {flag:?}")),
        };
        if let Err(e) = result {
            eprintln!("e2eprof: {e}");
            return ExitCode::from(2);
        }
    }
    let acceptor: Arc<dyn Acceptor> = if let Some(path) = unix {
        let _ = std::fs::remove_file(&path);
        match std::os::unix::net::UnixListener::bind(&path) {
            Ok(l) => {
                println!("broker listening on unix socket {path}");
                Arc::new(l)
            }
            Err(e) => {
                eprintln!("e2eprof: cannot bind {path}: {e}");
                return ExitCode::from(1);
            }
        }
    } else {
        match std::net::TcpListener::bind(&listen) {
            Ok(l) => {
                println!(
                    "broker listening on {}",
                    l.local_addr().map_or(listen.clone(), |a| a.to_string())
                );
                Arc::new(l)
            }
            Err(e) => {
                eprintln!("e2eprof: cannot bind {listen}: {e}");
                return ExitCode::from(1);
            }
        }
    };
    let _broker = BrokerHandle::spawn(acceptor, BrokerConfig::default());
    loop {
        std::thread::park();
    }
}

fn demo() -> ExitCode {
    use e2eprof::netsim::Simulation;
    println!("simulating a three-tier system for 90 seconds...\n");
    let mut sim = Simulation::new(demo_topology(), 7);
    sim.run_until(Nanos::from_secs(90));

    let cfg = PathmapConfig::builder()
        .window(Nanos::from_secs(60))
        .refresh(Nanos::from_secs(15))
        .max_delay(Nanos::from_secs(2))
        .env_overrides()
        .build();
    let graphs = Pathmap::new(cfg.clone()).discover(
        &EdgeSignals::from_capture(sim.captures(), &cfg, sim.now()),
        &roots_from_topology(sim.topology()),
        &NodeLabels::from_topology(sim.topology()),
    );
    for g in &graphs {
        println!("{g}");
        println!("waterfall:\n{}", g.to_waterfall(48));
    }
    ExitCode::SUCCESS
}
