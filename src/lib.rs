//! # E2EProf — automated end-to-end performance management
//!
//! A Rust reproduction of *E2EProf: Automated End-to-End Performance
//! Management for Enterprise Systems* (Agarwala, Alegre, Schwan,
//! Mehalingham — DSN 2007): black-box discovery of the causal paths client
//! requests take through a distributed system, and of the delays incurred
//! along them, from nothing but passively captured message timestamps.
//!
//! The facade re-exports the five subsystem crates:
//!
//! | Module | Crate | Role |
//! |---|---|---|
//! | [`timeseries`] | `e2eprof-timeseries` | density time series; sparse and RLE signal representations; sliding windows; wire format |
//! | [`xcorr`] | `e2eprof-xcorr` | cross-correlation engines (direct, bounded, sparse, RLE, FFT, incremental); Eq. 1 normalization; spike detection |
//! | [`netsim`] | `e2eprof-netsim` | discrete-event multi-tier system simulator: the evaluation substrate (queueing stations, links, routing, workloads, capture taps, clocks, ground truth) |
//! | [`core`] | `e2eprof-core` | the pathmap algorithm, service graphs, online tracer/analyzer pipeline, change detection, clock-skew estimation, convolution baseline, accuracy validation |
//! | [`net`] | `e2eprof-net` | real-network transport: framed wire streaming over TCP/Unix sockets, broker, backpressure, reconnect, fault injection, and the sharded analyzer tier |
//! | [`apps`] | `e2eprof-apps` | the paper's evaluation applications: RUBiS, the Delta Revenue Pipeline, the SLA scheduler, and every experiment driver |
//!
//! # Quickstart
//!
//! ```
//! use e2eprof::netsim::prelude::*;
//! use e2eprof::core::prelude::*;
//!
//! // Simulate a three-tier system for two minutes...
//! let mut t = TopologyBuilder::new();
//! let class = t.service_class("browse");
//! let web = t.service("web", ServiceConfig::new(DelayDist::normal_millis(3, 1)));
//! let db = t.service("db", ServiceConfig::new(DelayDist::normal_millis(9, 2)));
//! let client = t.client("client", class, web, Workload::poisson(50.0));
//! t.connect(client, web, DelayDist::constant_millis(1));
//! t.connect(web, db, DelayDist::constant_millis(1));
//! t.route(web, class, Route::fixed(db));
//! t.route(db, class, Route::terminal());
//! let mut sim = Simulation::new(t.build()?, 1);
//! sim.run_until(Nanos::from_minutes(2));
//!
//! // ...and recover its service path from packet timestamps alone.
//! let cfg = PathmapConfig::builder()
//!     .window(Nanos::from_minutes(1))
//!     .max_delay(Nanos::from_secs(2))
//!     .build();
//! let graphs = Pathmap::new(cfg.clone()).discover(
//!     &EdgeSignals::from_capture(sim.captures(), &cfg, sim.now()),
//!     &roots_from_topology(sim.topology()),
//!     &NodeLabels::from_topology(sim.topology()),
//! );
//! assert!(graphs[0].has_edge_between("web", "db"));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! See `examples/` for runnable reproductions of every figure and table in
//! the paper's evaluation, and `DESIGN.md` / `EXPERIMENTS.md` in the
//! repository for the experiment index and measured results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use e2eprof_apps as apps;
pub use e2eprof_core as core;
pub use e2eprof_net as net;
pub use e2eprof_netsim as netsim;
pub use e2eprof_timeseries as timeseries;
pub use e2eprof_xcorr as xcorr;
