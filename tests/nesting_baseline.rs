//! Integration: the nesting baseline (Aguilera et al.) against pathmap.
//!
//! On RPC-style traffic (RUBiS) both find the same forward call chain
//! with comparable delays. On a *unidirectional* pipeline (streaming
//! media, paper Section 3.1) nesting finds nothing — there are no
//! responses to pair — while pathmap's correlation spikes are unaffected.

use e2eprof::apps::experiments::rubis_config;
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::nesting::Nesting;
use e2eprof::core::prelude::*;
use e2eprof::netsim::prelude::*;
use e2eprof::netsim::Route;

#[test]
fn nesting_agrees_with_pathmap_on_rpc_traffic() {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 5,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(Nanos::from_secs(90));
    let labels = NodeLabels::from_topology(rubis.sim().topology());
    let roots = roots_from_topology(rubis.sim().topology());

    let nesting_graphs = Nesting::default().discover(rubis.sim().captures(), &roots, &labels);
    let cfg = rubis_config(Nanos::from_secs(60), Nanos::from_secs(15));
    let pathmap_graphs = Pathmap::new(cfg.clone()).discover(
        &EdgeSignals::from_capture(rubis.sim().captures(), &cfg, rubis.sim().now()),
        &roots,
        &labels,
    );

    let n = rubis.nodes();
    let nest_bid = nesting_graphs.iter().find(|g| g.client == n.c1).unwrap();
    let path_bid = pathmap_graphs.iter().find(|g| g.client == n.c1).unwrap();
    // The forward chain, from both techniques.
    for (a, b) in [("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DB")] {
        assert!(
            nest_bid.has_edge_between(a, b),
            "nesting missing {a}->{b}:\n{nest_bid}"
        );
        assert!(path_bid.has_edge_between(a, b), "pathmap missing {a}->{b}");
    }
    // Nesting must not leak onto the comment branch.
    assert!(!nest_bid.has_edge_between("WS", "TS2"), "{nest_bid}");
    // Per-hop cumulative delays agree within the sampling window.
    for (a, b) in [(n.ws, n.ts1), (n.ts1, n.ejb1), (n.ejb1, n.db)] {
        let nd = nest_bid
            .edge(a, b)
            .unwrap()
            .min_delay()
            .unwrap()
            .as_millis_f64();
        let pd = path_bid
            .edge(a, b)
            .unwrap()
            .min_delay()
            .unwrap()
            .as_millis_f64();
        assert!(
            (nd - pd).abs() <= 50.0,
            "{}->{}: nesting {nd}ms vs pathmap {pd}ms",
            nest_bid.label_of(a),
            nest_bid.label_of(b)
        );
    }
    // Both attribute the bottleneck to EJB1.
    assert!(nest_bid
        .vertices()
        .iter()
        .any(|v| v.label == "EJB1" && v.bottleneck));
}

/// A unidirectional (streaming) pipeline: source -> ingest -> transcode
/// -> archive, no responses ever.
fn streaming_sim(seed: u64) -> Simulation {
    let mut t = TopologyBuilder::new();
    let class = t.service_class("stream");
    let ingest = t.service(
        "ingest",
        ServiceConfig::new(DelayDist::normal_millis(4, 1)).with_servers(4),
    );
    let transcode = t.service(
        "transcode",
        ServiceConfig::new(DelayDist::normal_millis(18, 4)).with_servers(4),
    );
    let archive = t.service(
        "archive",
        ServiceConfig::new(DelayDist::normal_millis(6, 1)).with_servers(4),
    );
    let src = t.client("source", class, ingest, Workload::poisson(25.0));
    t.connect(src, ingest, DelayDist::constant_millis(1));
    t.connect(ingest, transcode, DelayDist::constant_millis(1));
    t.connect(transcode, archive, DelayDist::constant_millis(1));
    t.route(ingest, class, Route::fixed(transcode));
    t.route(transcode, class, Route::fixed(archive));
    t.route(archive, class, Route::sink());
    Simulation::new(t.build().expect("valid"), seed)
}

#[test]
fn unidirectional_paths_pathmap_works_nesting_does_not() {
    let mut sim = streaming_sim(8);
    sim.run_until(Nanos::from_secs(60));
    // Sanity: truly unidirectional — nothing ever returns to the client.
    assert_eq!(sim.truth().completed_count(), 0);
    assert!(sim.truth().started_count() > 800);

    let labels = NodeLabels::from_topology(sim.topology());
    let roots = roots_from_topology(sim.topology());
    let cfg = PathmapConfig::builder()
        .window(Nanos::from_secs(30))
        .refresh(Nanos::from_secs(10))
        .max_delay(Nanos::from_secs(2))
        .build();

    // Pathmap: the full forward pipeline, delays and all.
    let graphs = Pathmap::new(cfg.clone()).discover(
        &EdgeSignals::from_capture(sim.captures(), &cfg, sim.now()),
        &roots,
        &labels,
    );
    let g = &graphs[0];
    assert!(g.has_edge_between("ingest", "transcode"), "{g}");
    assert!(g.has_edge_between("transcode", "archive"), "{g}");
    let hop = g
        .edge(
            labels.id_of("ingest").unwrap(),
            labels.id_of("transcode").unwrap(),
        )
        .unwrap();
    let cum = hop.min_delay().unwrap().as_millis_f64();
    assert!((2.0..12.0).contains(&cum), "ingest->transcode at {cum}ms");

    // Nesting: no responses, no call intervals, no paths.
    let nesting = Nesting::default().discover(sim.captures(), &roots, &labels);
    assert_eq!(
        nesting[0].edges().len(),
        1, // just the anchoring client edge
        "nesting should find nothing on a one-way pipeline:\n{}",
        nesting[0]
    );
}
