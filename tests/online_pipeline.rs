//! Integration: the full online pipeline on RUBiS — tracer agents on
//! every server streaming wire-encoded RLE chunks, the central analyzer
//! maintaining sliding windows and incrementally-updated correlations,
//! service graphs republished every refresh.

use crossbeam::channel::unbounded;
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::netsim::NodeId;
use e2eprof::timeseries::{Nanos, Quanta, Tick};
use std::collections::HashSet;

#[test]
fn online_analyzer_tracks_rubis_live() {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 11,
        ..RubisConfig::default()
    });
    let config = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .build();

    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = rubis.sim().topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = rubis
        .sim()
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(rubis.sim().topology()),
        NodeLabels::from_topology(rubis.sim().topology()),
        rx,
    );

    let mut refreshes_with_graphs = 0;
    let mut last = Vec::new();
    for step in 1..=12u64 {
        let now = Nanos::from_secs(step * 5);
        rubis.sim_mut().run_until(now);
        // Tracers drain 1 s behind the wall clock (≫ ω = 50 ms).
        let drain = Tick::new(step * 5_000 - 1_000);
        for a in &mut agents {
            a.poll(rubis.sim().captures(), drain);
        }
        let ingested = analyzer.ingest();
        assert!(ingested > 0, "no frames at step {step}");
        let graphs = analyzer.refresh(now);
        if !graphs.is_empty() {
            refreshes_with_graphs += 1;
            last = graphs;
        }
    }
    assert!(
        refreshes_with_graphs >= 5,
        "only {refreshes_with_graphs} productive refreshes"
    );
    assert_eq!(last.len(), 2);
    let bid = last
        .iter()
        .find(|g| g.client_label == "C1")
        .expect("bid graph");
    for (a, b) in [("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DB"), ("WS", "C1")] {
        assert!(bid.has_edge_between(a, b), "missing {a}->{b}:\n{bid}");
    }
    // Delay histories accumulated across refreshes for change detection.
    assert!(analyzer.change_tracker().keys().count() >= 6);
    let (c, f, t) = analyzer.change_tracker().keys().next().unwrap();
    assert!(analyzer.change_tracker().history(c, f, t).len() >= 2);
}

#[test]
fn analyzer_heals_tracer_gaps() {
    // One tracer misses several polls (e.g. restarted); the analyzer's
    // windows heal and discovery resumes producing the full path.
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 19,
        ..RubisConfig::default()
    });
    let config = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(15))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .build();
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = rubis.sim().topology().clients().into_iter().collect();
    let services = rubis.sim().topology().services();
    let flaky_node = services[3]; // one EJB's tracer is flaky
    let mut agents: Vec<TracerAgent> = services
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(rubis.sim().topology()),
        NodeLabels::from_topology(rubis.sim().topology()),
        rx,
    );

    let mut flaky_agent: Option<TracerAgent> = None;
    let mut last = Vec::new();
    for step in 1..=20u64 {
        let now = Nanos::from_secs(step * 5);
        rubis.sim_mut().run_until(now);
        let drain = Tick::new(step * 5_000 - 1_000);
        // Steps 6-9: the flaky node's tracer is down (restart simulated by
        // replacing the agent, which restarts its streams from scratch).
        if step == 6 {
            let idx = agents
                .iter()
                .position(|a| a.node() == flaky_node)
                .expect("flaky agent present");
            flaky_agent = Some(agents.swap_remove(idx));
        }
        if step == 10 {
            drop(flaky_agent.take());
            agents.push(TracerAgent::new(
                flaky_node,
                clients.clone(),
                config.clone(),
                tx.clone(),
            ));
        }
        for a in &mut agents {
            a.poll(rubis.sim().captures(), drain);
        }
        analyzer.ingest();
        let graphs = analyzer.refresh(now);
        if !graphs.is_empty() {
            last = graphs;
        }
    }
    // After healing, the full bidding path (through the flaky EJB) is back.
    let bid = last
        .iter()
        .find(|g| g.client_label == "C1")
        .expect("bidding graph after healing");
    for (a, b) in [("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DB"), ("WS", "C1")] {
        assert!(
            bid.has_edge_between(a, b),
            "missing {a}->{b} after gap:\n{bid}"
        );
    }
}
