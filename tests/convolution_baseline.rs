//! Integration: the Aguilera et al. convolution baseline (offline,
//! FFT-based, full lag range) discovers the same causal structure as
//! pathmap on the strongly-supported edges — and illustrates a second
//! reason (besides cost) the paper bounds the lag range by `T_u`: over the
//! full window-length lag range, weak spurious correlations occasionally
//! cross the detection threshold at implausible multi-second lags.

use e2eprof::apps::experiments::rubis_config;
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::convolution;
use e2eprof::core::prelude::*;
use e2eprof::netsim::NodeId;
use e2eprof::timeseries::Nanos;
use std::collections::BTreeSet;

#[test]
fn convolution_baseline_agrees_on_strong_edges() {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 21,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(Nanos::from_secs(80));
    let cfg = rubis_config(Nanos::from_secs(30), Nanos::from_secs(10));
    let labels = NodeLabels::from_topology(rubis.sim().topology());
    let roots = roots_from_topology(rubis.sim().topology());

    let pathmap_graphs = {
        let pm = Pathmap::new(cfg.clone());
        let signals = EdgeSignals::from_capture(rubis.sim().captures(), &cfg, rubis.sim().now());
        pm.discover(&signals, &roots, &labels)
    };
    let baseline_graphs = {
        let base = convolution::baseline(&cfg);
        let signals =
            EdgeSignals::from_capture(rubis.sim().captures(), base.config(), rubis.sim().now());
        base.discover(&signals, &roots, &labels)
    };

    assert_eq!(pathmap_graphs.len(), baseline_graphs.len());
    for (pm_g, bl_g) in pathmap_graphs.iter().zip(&baseline_graphs) {
        let edge_set = |g: &ServiceGraph, min_strength: f64| -> BTreeSet<(NodeId, NodeId)> {
            g.edges()
                .iter()
                .filter(|e| e.strength() >= min_strength)
                .map(|e| (e.from, e.to))
                .collect()
        };
        // Every edge pathmap found, the baseline finds too.
        let pm_all = edge_set(pm_g, 0.0);
        let bl_all = edge_set(bl_g, 0.0);
        assert!(
            pm_all.is_subset(&bl_all),
            "baseline missed edges for {}:\n{pm_g}\n{bl_g}",
            pm_g.client_label
        );
        // Restricted to well-supported correlations, the structures are
        // identical. Both analyses may additionally admit weak edges near
        // the noise floor (independent clients' arrivals occasionally
        // correlate at ~0.1 for some seeds), so the structural agreement
        // is asserted on the strong sets of each.
        let pm_edges = edge_set(pm_g, 0.2);
        let bl_strong = edge_set(bl_g, 0.2);
        assert_eq!(
            pm_edges, bl_strong,
            "strong-edge structures differ for {}",
            pm_g.client_label
        );
        for &(f, t) in bl_all.difference(&pm_edges) {
            let extra = bl_g.edge(f, t).unwrap();
            assert!(
                extra.strength() < 0.2,
                "baseline extra {}->{} is not weak: {}",
                bl_g.label_of(f),
                bl_g.label_of(t),
                extra.strength()
            );
        }
        // Delay estimates agree within the sampling window ω on the
        // genuine edges.
        for &(f, t) in &pm_edges {
            let (pe, be) = (pm_g.edge(f, t).unwrap(), bl_g.edge(f, t).unwrap());
            let (Some(pm_min), Some(bl_min)) = (pe.min_delay(), be.min_delay()) else {
                continue;
            };
            assert!(
                (pm_min.as_millis_f64() - bl_min.as_millis_f64()).abs() <= 50.0,
                "delay mismatch on {}->{}: {pm_min} vs {bl_min}",
                pm_g.label_of(f),
                pm_g.label_of(t)
            );
        }
    }
}
