//! Integration: Figures 5 and 6 plus the Section 4.1.1 accuracy check,
//! end-to-end through the facade crate.

use e2eprof::apps::experiments::{accuracy, fig5_affinity, fig6_round_robin};
use e2eprof::timeseries::Nanos;

#[test]
fn fig5_affinity_paths_exact() {
    let (rubis, graphs) = fig5_affinity(1, Nanos::from_minutes(2));
    assert_eq!(graphs.len(), 2);
    let n = rubis.nodes();
    let bid = graphs.iter().find(|g| g.client == n.c1).expect("bid graph");
    // Forward path, return path, and the response to the client.
    for (a, b) in [
        ("WS", "TS1"),
        ("TS1", "EJB1"),
        ("EJB1", "DB"),
        ("DB", "EJB1"),
        ("EJB1", "TS1"),
        ("TS1", "WS"),
        ("WS", "C1"),
    ] {
        assert!(bid.has_edge_between(a, b), "bid missing {a}->{b}:\n{bid}");
    }
    // No leakage into the comment branch.
    for (a, b) in [("WS", "TS2"), ("TS2", "EJB2"), ("WS", "C2")] {
        assert!(!bid.has_edge_between(a, b), "bid leaked {a}->{b}:\n{bid}");
    }
    // The EJB server is the bottleneck (grey in the paper's figure).
    let ejb1 = bid.vertices().iter().find(|v| v.label == "EJB1").unwrap();
    assert!(ejb1.bottleneck, "EJB1 not marked bottleneck:\n{bid}");
}

#[test]
fn fig5_cumulative_delays_are_monotone_along_the_request_path() {
    let (rubis, graphs) = fig5_affinity(2, Nanos::from_minutes(2));
    let n = rubis.nodes();
    let bid = graphs.iter().find(|g| g.client == n.c1).expect("bid graph");
    let cum = |a: e2eprof::netsim::NodeId, b: e2eprof::netsim::NodeId| {
        bid.edge(a, b)
            .and_then(|e| e.min_delay())
            .unwrap_or_else(|| panic!("edge {a}->{b} missing"))
    };
    let up1 = cum(n.ws, n.ts1);
    let up2 = cum(n.ts1, n.ejb1);
    let up3 = cum(n.ejb1, n.db);
    let back = cum(n.ws, n.c1);
    assert!(
        up1 < up2 && up2 < up3 && up3 < back,
        "{up1} {up2} {up3} {back}"
    );
}

#[test]
fn fig6_round_robin_has_two_branches_per_class() {
    let (rubis, graphs) = fig6_round_robin(3, Nanos::from_minutes(2));
    let n = rubis.nodes();
    for g in &graphs {
        for (a, b) in [
            ("WS", "TS1"),
            ("WS", "TS2"),
            ("TS1", "EJB1"),
            ("TS2", "EJB2"),
            ("EJB1", "DB"),
            ("EJB2", "DB"),
        ] {
            assert!(
                g.has_edge_between(a, b),
                "{} missing {a}->{b}:\n{g}",
                g.client_label
            );
        }
    }
    let _ = n;
}

#[test]
fn accuracy_matches_paper_bands() {
    // Paper: per-server processing delays within ~10%; client-observed
    // latency ~16% above the estimate. We allow wider bands for the
    // shorter window.
    let reports = accuracy(4, Nanos::from_minutes(2));
    assert_eq!(reports.len(), 2);
    for r in &reports {
        assert!(r.hops.len() >= 3, "hops: {:#?}", r.hops);
        assert!(
            r.max_hop_error() < 0.30,
            "per-hop error too large: {:#?}",
            r.hops
        );
        let gap = r.e2e_gap.expect("e2e estimate present");
        assert!(
            (0.0..0.6).contains(&gap),
            "client-observed gap out of band: {gap}"
        );
    }
}

#[test]
fn dot_export_is_well_formed() {
    let (_, graphs) = fig5_affinity(5, Nanos::from_minutes(2));
    for g in &graphs {
        let dot = g.to_dot();
        assert!(dot.starts_with("digraph"));
        assert!(dot.ends_with("}\n"));
        assert_eq!(dot.matches("->").count(), g.edges().len());
    }
}

#[test]
fn fanout_rate_change_across_nodes_is_accommodated() {
    // Paper Sec. 3.1: "Pathmap can, however, accommodate changes in rate
    // across nodes (e.g., an EJB server issuing multiple data base
    // queries for a single client request)." Each EJB now issues three
    // back-to-back DB queries per request; the path must still be fully
    // discovered with sane delays.
    use e2eprof::apps::experiments::{discover, rubis_config};
    use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
    use e2eprof::netsim::capture::TraceKey;

    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 6,
        db_queries_per_request: 3,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(Nanos::from_minutes(2));
    let n = rubis.nodes();

    // The rate change is real: ~3x more packets on EJB1->DB than TS1->EJB1.
    let to_db = rubis
        .sim()
        .captures()
        .timestamps(TraceKey::at_receiver(n.ejb1, n.db))
        .len();
    let to_ejb = rubis
        .sim()
        .captures()
        .timestamps(TraceKey::at_receiver(n.ts1, n.ejb1))
        .len();
    assert!(
        to_db > 2 * to_ejb,
        "fanout not in effect: {to_db} vs {to_ejb}"
    );

    let cfg = rubis_config(Nanos::from_minutes(1), Nanos::from_secs(30));
    let graphs = discover(&rubis, &cfg);
    let bid = graphs.iter().find(|g| g.client == n.c1).expect("bid graph");
    for (a, b) in [
        ("WS", "TS1"),
        ("TS1", "EJB1"),
        ("EJB1", "DB"),
        ("DB", "EJB1"),
        ("WS", "C1"),
    ] {
        assert!(bid.has_edge_between(a, b), "missing {a}->{b}:\n{bid}");
    }
    // Requests still complete exactly once despite the join.
    let truth = rubis.sim().truth();
    assert!(truth.completed_count() > 400);
    assert!(truth.completed_count() <= truth.started_count());
}
