//! Wire v2 is a transport optimization, not a semantic change: with
//! `wire = V2`, every tracer flush ships one batch frame (delta-encoded
//! run starts, varint lengths, integer-count amplitudes) instead of one
//! v1 frame per edge — and the analyzer's published graphs must be
//! **identical** to the v1 run at every refresh, on both evaluation
//! applications. The integer-amplitude encoding is lossless for density
//! series (amplitudes are √n for integer counts n, reconstructed
//! bit-for-bit), so not even strength comparisons need slack — but we
//! reuse the screening test's 1e-9 tolerance to keep the helper shared.
//!
//! A pinned golden-bytes test locks the v1 layout: old frames must keep
//! decoding unchanged under a v2-capable build.

use crossbeam::channel::unbounded;
use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::netsim::{NodeId, Simulation};
use e2eprof::timeseries::{wire, Nanos, Quanta, RleSeries, Run, Tick};
use std::collections::HashSet;

/// Drives a full online pipeline (tracer agents on every service + one
/// analyzer) over `steps` refresh intervals, returning each refresh's
/// published graphs.
fn run_pipeline(
    sim: &mut Simulation,
    config: &PathmapConfig,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> Vec<Vec<ServiceGraph>> {
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        sim.run_until(now);
        let drain = config.quanta().tick_of(now.saturating_sub(drain_lag));
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        out.push(analyzer.refresh(now));
    }
    out
}

/// Structural equality: edge sets, spike lags, hop delays, and bottleneck
/// flags exact; spike strengths within 1e-9.
fn assert_graphs_equivalent(v1: &[ServiceGraph], v2: &[ServiceGraph], ctx: &str) {
    assert_eq!(v1.len(), v2.len(), "{ctx}: graph count differs");
    for (ga, gb) in v1.iter().zip(v2) {
        assert_eq!(ga.client_label, gb.client_label, "{ctx}");
        let key = |g: &ServiceGraph| {
            let mut edges: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.spikes.iter().map(|s| s.delay).collect::<Vec<_>>(),
                        e.hop_delay,
                    )
                })
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(
            key(ga),
            key(gb),
            "{ctx}, {}: wire version changed the graph\n{ga}\nvs\n{gb}",
            ga.client_label
        );
        let flags = |g: &ServiceGraph| {
            let mut v: Vec<_> = g
                .vertices()
                .iter()
                .map(|v| (v.label.clone(), v.bottleneck))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flags(ga), flags(gb), "{ctx}: bottleneck flags differ");
        for ea in ga.edges() {
            let eb = gb.edge(ea.from, ea.to).expect("edge sets already equal");
            for (sa, sb) in ea.spikes.iter().zip(&eb.spikes) {
                assert!(
                    (sa.strength - sb.strength).abs() < 1e-9,
                    "{ctx}: strength drift {} vs {}",
                    sa.strength,
                    sb.strength
                );
            }
        }
    }
}

fn rubis_cfg(wire: WireVersion) -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .wire(wire)
        .build()
}

#[test]
fn rubis_online_v2_matches_v1_across_seeds() {
    for seed in [1, 2, 3] {
        let build = || {
            Rubis::build(RubisConfig {
                dispatch: Dispatch::Affinity,
                seed,
                ..RubisConfig::default()
            })
        };
        let mut v1_app = build();
        let mut v2_app = build();
        let step = Nanos::from_secs(5);
        let lag = Nanos::from_secs(1);
        let v1 = run_pipeline(v1_app.sim_mut(), &rubis_cfg(WireVersion::V1), 12, step, lag);
        let v2 = run_pipeline(v2_app.sim_mut(), &rubis_cfg(WireVersion::V2), 12, step, lag);
        let mut productive = 0;
        for (i, (a, b)) in v1.iter().zip(&v2).enumerate() {
            assert_graphs_equivalent(a, b, &format!("rubis seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        // The equivalence must be exercised on real graphs, not vacuous ones.
        assert!(
            productive >= 5,
            "rubis seed {seed}: only {productive} productive refreshes"
        );
    }
}

fn delta_cfg(wire: WireVersion) -> PathmapConfig {
    // The paper's Delta analysis at a reduced horizon: τ = 1 s, ω = 20·τ,
    // W = 30 min, refresh = 5 min, T_u = 10 min.
    PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10))
        .wire(wire)
        .build()
}

#[test]
fn delta_online_v2_matches_v1_across_seeds() {
    for seed in [7, 8, 9] {
        let build = || {
            Delta::build(DeltaConfig {
                queues: 6,
                seed,
                ..DeltaConfig::default()
            })
        };
        let mut v1_app = build();
        let mut v2_app = build();
        let step = Nanos::from_minutes(5);
        let lag = Nanos::from_secs(60);
        let v1 = run_pipeline(v1_app.sim_mut(), &delta_cfg(WireVersion::V1), 12, step, lag);
        let v2 = run_pipeline(v2_app.sim_mut(), &delta_cfg(WireVersion::V2), 12, step, lag);
        let mut productive = 0;
        for (i, (a, b)) in v1.iter().zip(&v2).enumerate() {
            assert_graphs_equivalent(a, b, &format!("delta seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        assert!(
            productive >= 2,
            "delta seed {seed}: only {productive} productive refreshes"
        );
    }
}

/// The v1 layout, pinned byte for byte: magic `E2EP`, version 1, BE u64
/// start and length, BE u32 run count, then 20-byte runs of (BE u64
/// start, BE u32 length, BE f64 value). A frame captured under the v1-only
/// build must decode to the same series under the v2-capable decoder, and
/// re-encode to the identical bytes.
#[test]
fn pinned_v1_golden_frame_still_decodes() {
    const SQRT_2_BITS: u64 = 0x3FF6_A09E_667F_3BCD;
    let mut golden: Vec<u8> = Vec::new();
    golden.extend_from_slice(b"E2EP");
    golden.push(1);
    golden.extend_from_slice(&100u64.to_be_bytes()); // series start
    golden.extend_from_slice(&50u64.to_be_bytes()); // series length
    golden.extend_from_slice(&2u32.to_be_bytes()); // two runs
    golden.extend_from_slice(&104u64.to_be_bytes());
    golden.extend_from_slice(&3u32.to_be_bytes());
    golden.extend_from_slice(&SQRT_2_BITS.to_be_bytes());
    golden.extend_from_slice(&120u64.to_be_bytes());
    golden.extend_from_slice(&5u32.to_be_bytes());
    golden.extend_from_slice(&1.0f64.to_be_bytes());

    assert_eq!(wire::frame_version(&golden), Ok(1));
    let decoded = wire::decode(&golden).expect("golden v1 frame decodes");
    let expect = RleSeries::from_parts(
        Tick::new(100),
        50,
        vec![
            Run::new(Tick::new(104), 3, f64::from_bits(SQRT_2_BITS)),
            Run::new(Tick::new(120), 5, 1.0),
        ],
    );
    assert_eq!(decoded, expect);
    assert_eq!(
        decoded.runs()[0].value().to_bits(),
        SQRT_2_BITS,
        "amplitude must survive bit-for-bit"
    );
    assert_eq!(
        wire::encode(&decoded).as_ref(),
        golden.as_slice(),
        "the v1 encoder still emits the pinned layout"
    );
}
