//! Integration: Figure 7 — the injected delay staircase at EJB2 is
//! tracked by pathmap's per-edge delay, offset by the server's real
//! processing time, while the front-end average moves by roughly half.

use e2eprof::apps::experiments::fig7_change_detection;
use e2eprof::timeseries::Nanos;

#[test]
fn staircase_is_tracked_with_constant_offset() {
    let (points, _) = fig7_change_detection(7, 15);
    // Skip the first refresh (warm-up window partially empty).
    let tracked: Vec<_> = points
        .iter()
        .skip(1)
        .filter(|p| p.detected.is_some())
        .collect();
    assert!(tracked.len() >= 10, "too few refreshes with detections");

    // detected − injected ≈ EJB2's actual processing time, stable across
    // the staircase (paper: "the difference ... is the actual time spent
    // by EJB2 processing the requests").
    let offsets: Vec<f64> = tracked
        .iter()
        .map(|p| p.detected.unwrap().as_millis_f64() - p.injected.as_millis_f64())
        .collect();
    let mean = offsets.iter().sum::<f64>() / offsets.len() as f64;
    assert!(
        (10.0..35.0).contains(&mean),
        "offset should be EJB2's ~19ms processing: {mean} ({offsets:?})"
    );
    for o in &offsets {
        assert!(
            (o - mean).abs() < 8.0,
            "offset drifted: {o} vs mean {mean} ({offsets:?})"
        );
    }
}

#[test]
fn every_step_raises_the_detected_delay() {
    let (points, _) = fig7_change_detection(8, 15);
    // Group refreshes by injected level; detected means must be strictly
    // increasing across levels.
    let mut by_level: Vec<(u64, Vec<f64>)> = Vec::new();
    for p in points.iter().skip(1) {
        let (Some(d), inj) = (p.detected, p.injected.as_millis()) else {
            continue;
        };
        match by_level.last_mut() {
            Some((level, samples)) if *level == inj => samples.push(d.as_millis_f64()),
            _ => by_level.push((inj, vec![d.as_millis_f64()])),
        }
    }
    assert!(by_level.len() >= 4, "staircase levels seen: {by_level:?}");
    let means: Vec<f64> = by_level
        .iter()
        .map(|(_, s)| s.iter().sum::<f64>() / s.len() as f64)
        .collect();
    for w in means.windows(2) {
        assert!(w[1] > w[0] + 5.0, "step not detected: {means:?}");
    }
}

#[test]
fn frontend_average_moves_less_than_the_edge_signal() {
    let (points, _) = fig7_change_detection(9, 15);
    let first = points
        .iter()
        .skip(1)
        .find(|p| p.detected.is_some())
        .unwrap();
    let last = points.iter().rev().find(|p| p.detected.is_some()).unwrap();
    let edge_rise =
        last.detected.unwrap().as_millis_f64() - first.detected.unwrap().as_millis_f64();
    let frontend_rise =
        last.frontend_avg.unwrap().as_millis_f64() - first.frontend_avg.unwrap().as_millis_f64();
    assert!(edge_rise > 25.0, "edge rise {edge_rise}");
    assert!(
        frontend_rise < 0.8 * edge_rise,
        "frontend ({frontend_rise}) should move less than the edge ({edge_rise})"
    );
}

#[test]
fn change_tracker_flags_the_steps() {
    let (_, tracker) = fig7_change_detection(10, 15);
    // Find the EJB2 -> DB edge history and count flagged jumps ≥ 10 ms.
    let mut flagged = 0;
    for (c, f, t) in tracker.keys().collect::<Vec<_>>() {
        flagged += tracker.changes(c, f, t, Nanos::from_millis(12)).len();
    }
    // Staircase steps at minutes 2, 5, 8, 11, 14 → at least 3 jumps seen
    // on the bid path's EJB2 edge (other edges stay flat).
    assert!(flagged >= 3, "only {flagged} changes flagged");
}
