//! Integration: Table 1 — automated path selection with E2EProf vs.
//! round-robin under random EJB perturbations.

use e2eprof::apps::experiments::{table1, Table1Policy};
use e2eprof::timeseries::Nanos;

#[test]
fn table1_reproduces_the_papers_ordering() {
    let duration = Nanos::from_minutes(10);
    let seed = 42;
    let base = table1(Table1Policy::RoundRobinBaseline, seed, duration);
    let rr = table1(Table1Policy::RoundRobinPerturbed, seed, duration);
    let e2e = table1(Table1Policy::E2EProfPerturbed, seed, duration);

    // Perturbation inflates both classes under round-robin.
    assert!(
        rr.bidding.as_millis_f64() > base.bidding.as_millis_f64() + 30.0,
        "rr {rr:?} vs base {base:?}"
    );
    assert!(rr.comment.as_millis_f64() > base.comment.as_millis_f64() + 30.0);

    // E2EProf-based selection reduces bidding latency...
    assert!(
        e2e.bidding.as_millis_f64() < rr.bidding.as_millis_f64() - 3.0,
        "bidding not improved: e2e {:?} vs rr {:?}",
        e2e.bidding,
        rr.bidding
    );
    // ...and penalizes comment requests (they get the slower path).
    assert!(
        e2e.comment.as_millis_f64() > rr.comment.as_millis_f64() + 3.0,
        "comment not penalized: e2e {:?} vs rr {:?}",
        e2e.comment,
        rr.comment
    );
    // But never below the unperturbed baseline.
    assert!(e2e.bidding > base.bidding);
}

#[test]
fn perturbed_policies_face_identical_delay_sequences() {
    // The perturbation is a pure function of (seed, time): two runs of the
    // same policy are bit-identical, and changing the seed changes the
    // outcome.
    let duration = Nanos::from_minutes(3);
    let a = table1(Table1Policy::RoundRobinPerturbed, 5, duration);
    let b = table1(Table1Policy::RoundRobinPerturbed, 5, duration);
    assert_eq!(a, b);
    let c = table1(Table1Policy::RoundRobinPerturbed, 6, duration);
    assert_ne!(a.bidding, c.bidding);
}
