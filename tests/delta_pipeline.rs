//! Integration: Section 4.3 — the Delta Revenue Pipeline. Paths are
//! recovered at τ = 1 s despite unreliable per-hop delays; the 4 AM batch
//! floods the hub; the slow-database connection is diagnosed by
//! service-path delay decomposition.

use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::experiments::{delta_analysis, delta_paper_config, diagnose_delta};
use e2eprof::timeseries::Nanos;

/// Scaled configuration: 6 queues, same total event rate, so the test
/// stays fast while every mechanism is exercised.
fn cfg() -> DeltaConfig {
    DeltaConfig {
        queues: 6,
        ..DeltaConfig::default()
    }
}

#[test]
fn pipeline_paths_recovered_from_bursty_feeds() {
    let (_, graphs) = delta_analysis(cfg(), &delta_paper_config(), Nanos::from_minutes(135));
    // Every bursty feed (queue 0 is the smooth Poisson batch queue) must
    // recover the full forward pipeline.
    let mut recovered = 0;
    for g in &graphs {
        if g.client_label == "feed_00" {
            continue;
        }
        let full = g.has_edge_between("hub", "parser")
            && g.has_edge_between("parser", "validator")
            && g.has_edge_between("validator", "revenue_db");
        if full {
            recovered += 1;
        }
    }
    assert!(
        recovered >= 4,
        "only {recovered}/5 bursty feeds recovered the pipeline"
    );
}

#[test]
fn batch_surge_floods_the_hub_queue() {
    let mut d = Delta::build(DeltaConfig {
        batch_at: Some(Nanos::from_minutes(5)),
        batch_size: 4_000,
        ..cfg()
    });
    d.sim_mut().run_until(Nanos::from_minutes(10));
    let peak = d.sim().max_queue_len(d.nodes().hub);
    // Paper: queue length goes as high as 4000.
    assert!(peak > 3_000, "hub queue peaked at {peak}");
}

#[test]
fn slow_database_is_diagnosed_by_tail_gap() {
    let (_, normal_graphs) = delta_analysis(cfg(), &delta_paper_config(), Nanos::from_minutes(135));
    let normal = diagnose_delta(&normal_graphs);

    let (_, slow_graphs) = delta_analysis(
        DeltaConfig {
            slow_db: true,
            ..cfg()
        },
        &delta_paper_config(),
        Nanos::from_minutes(135),
    );
    let slow = diagnose_delta(&slow_graphs);

    // The slow connection shows up as a multi-second end-to-end estimate
    // whose mass sits beyond the deepest forward hop — the database.
    assert!(
        slow.e2e.as_secs_f64() > normal.e2e.as_secs_f64() + 2.0,
        "slow e2e {:?} vs normal {:?}",
        slow.e2e,
        normal.e2e
    );
    assert!(
        slow.tail_gap.as_secs_f64() > 2.0,
        "tail gap {:?}",
        slow.tail_gap
    );
    assert_eq!(slow.suspect.as_deref(), Some("revenue_db"));
}
