//! The adaptive backend's hard requirement: with the auto-selecting
//! correlation backend, the online analyzer's published graphs are
//! **identical** to the default (RLE) backend's — same edge sets, same
//! spike lags, same hop delays, same bottleneck flags — at every refresh,
//! on both evaluation applications and every ground-truth seed.
//!
//! Engine selection is a pure performance decision: every engine computes
//! the same `r(d) = Σ x(t)·y(t+d)`, and the auto backend only ever runs on
//! the cold (from-scratch) path of a pair's first window, after which the
//! exact incremental corrections take over. Spike strengths are compared
//! within 1e-9 to absorb the FFT route's different summation order on cold
//! windows.
//!
//! The test pins `CostModel::default()` rather than calibrating, so the
//! picks — and hence the code paths exercised — are deterministic across
//! hosts.

use crossbeam::channel::unbounded;
use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::netsim::{NodeId, Simulation};
use e2eprof::timeseries::{Nanos, Quanta};
use e2eprof::xcorr::CostModel;
use std::collections::HashSet;

/// Drives a full online pipeline (tracer agents on every service + one
/// analyzer) over `steps` refresh intervals, returning each refresh's
/// published graphs.
fn run_pipeline(
    sim: &mut Simulation,
    config: &PathmapConfig,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> Vec<Vec<ServiceGraph>> {
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        sim.run_until(now);
        let drain = config.quanta().tick_of(now.saturating_sub(drain_lag));
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        out.push(analyzer.refresh(now));
    }
    out
}

/// Structural equality: edge sets, spike lags, hop delays, and bottleneck
/// flags exact; spike strengths within 1e-9.
fn assert_graphs_equivalent(plain: &[ServiceGraph], auto: &[ServiceGraph], ctx: &str) {
    assert_eq!(plain.len(), auto.len(), "{ctx}: graph count differs");
    for (ga, gb) in plain.iter().zip(auto) {
        assert_eq!(ga.client_label, gb.client_label, "{ctx}");
        let key = |g: &ServiceGraph| {
            let mut edges: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.spikes.iter().map(|s| s.delay).collect::<Vec<_>>(),
                        e.hop_delay,
                    )
                })
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(
            key(ga),
            key(gb),
            "{ctx}, {}: the auto backend changed the graph\n{ga}\nvs\n{gb}",
            ga.client_label
        );
        let flags = |g: &ServiceGraph| {
            let mut v: Vec<_> = g
                .vertices()
                .iter()
                .map(|v| (v.label.clone(), v.bottleneck))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flags(ga), flags(gb), "{ctx}: bottleneck flags differ");
        for ea in ga.edges() {
            let eb = gb.edge(ea.from, ea.to).expect("edge sets already equal");
            for (sa, sb) in ea.spikes.iter().zip(&eb.spikes) {
                assert!(
                    (sa.strength - sb.strength).abs() < 1e-9,
                    "{ctx}: strength drift {} vs {}",
                    sa.strength,
                    sb.strength
                );
            }
        }
    }
}

fn rubis_cfg(backend: CorrelationBackend) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .backend(backend);
    if backend == CorrelationBackend::Auto {
        b = b.auto_cost_model(CostModel::default());
    }
    b.build()
}

#[test]
fn rubis_online_auto_backend_matches_default_across_seeds() {
    for seed in [1, 2, 3] {
        let build = || {
            Rubis::build(RubisConfig {
                dispatch: Dispatch::Affinity,
                seed,
                ..RubisConfig::default()
            })
        };
        let mut plain_app = build();
        let mut auto_app = build();
        let step = Nanos::from_secs(5);
        let lag = Nanos::from_secs(1);
        let plain = run_pipeline(
            plain_app.sim_mut(),
            &rubis_cfg(CorrelationBackend::Rle),
            12,
            step,
            lag,
        );
        let auto = run_pipeline(
            auto_app.sim_mut(),
            &rubis_cfg(CorrelationBackend::Auto),
            12,
            step,
            lag,
        );
        let mut productive = 0;
        for (i, (a, b)) in plain.iter().zip(&auto).enumerate() {
            assert_graphs_equivalent(a, b, &format!("rubis seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        // The equivalence must be exercised on real graphs, not vacuous ones.
        assert!(
            productive >= 5,
            "rubis seed {seed}: only {productive} productive refreshes"
        );
    }
}

fn delta_cfg(backend: CorrelationBackend) -> PathmapConfig {
    // The paper's Delta analysis at a reduced horizon: τ = 1 s, ω = 20·τ,
    // W = 30 min, refresh = 5 min, T_u = 10 min.
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10))
        .backend(backend);
    if backend == CorrelationBackend::Auto {
        b = b.auto_cost_model(CostModel::default());
    }
    b.build()
}

#[test]
fn delta_online_auto_backend_matches_default_across_seeds() {
    for seed in [7, 8, 9] {
        let build = || {
            Delta::build(DeltaConfig {
                queues: 6,
                seed,
                ..DeltaConfig::default()
            })
        };
        let mut plain_app = build();
        let mut auto_app = build();
        let step = Nanos::from_minutes(5);
        let lag = Nanos::from_secs(60);
        let plain = run_pipeline(
            plain_app.sim_mut(),
            &delta_cfg(CorrelationBackend::Rle),
            12,
            step,
            lag,
        );
        let auto = run_pipeline(
            auto_app.sim_mut(),
            &delta_cfg(CorrelationBackend::Auto),
            12,
            step,
            lag,
        );
        let mut productive = 0;
        for (i, (a, b)) in plain.iter().zip(&auto).enumerate() {
            assert_graphs_equivalent(a, b, &format!("delta seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        assert!(
            productive >= 2,
            "delta seed {seed}: only {productive} productive refreshes"
        );
    }
}

/// Offline discovery under every fixed backend — and auto — produces the
/// same edge sets as the default on a real application topology.
#[test]
fn rubis_offline_all_backends_agree() {
    let mut app = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 1,
        ..RubisConfig::default()
    });
    let sim = app.sim_mut();
    sim.run_until(Nanos::from_secs(30));
    let base_cfg = rubis_cfg(CorrelationBackend::Rle);
    let signals = EdgeSignals::from_capture(sim.captures(), &base_cfg, sim.now());
    let labels = NodeLabels::from_topology(sim.topology());
    let roots = roots_from_topology(sim.topology());
    let edge_sets = |graphs: &[ServiceGraph]| {
        let mut v: Vec<Vec<(NodeId, NodeId)>> = graphs
            .iter()
            .map(|g| {
                let mut e: Vec<_> = g.edges().iter().map(|e| (e.from, e.to)).collect();
                e.sort_unstable();
                e
            })
            .collect();
        v.sort();
        v
    };
    let reference = edge_sets(&Pathmap::new(base_cfg).discover(&signals, &roots, &labels));
    for backend in [
        CorrelationBackend::Dense,
        CorrelationBackend::Sparse,
        CorrelationBackend::Fft,
        CorrelationBackend::Auto,
    ] {
        let graphs = Pathmap::new(rubis_cfg(backend)).discover(&signals, &roots, &labels);
        assert_eq!(
            reference,
            edge_sets(&graphs),
            "backend {backend:?} disagrees with the default"
        );
    }
}
