//! The deterministic fault-injection harness: scripted connection cuts
//! (at exact byte offsets, including mid-frame), read-side jitter, and
//! stalls are injected into the distributed pipeline, and the analyzer
//! tier's graphs after every reconnect must be **identical** to an
//! uninterrupted run — frames are delivered exactly once, in per-origin
//! order, or not at all (counted, never silent).
//!
//! Everything here is deterministic: faults trigger on byte/operation
//! counts (not time), reconnect backoff is zero, and the run loop blocks
//! on frame counts rather than sleeping. Failures reproduce exactly.

use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::net::fault::FaultPlan;
use e2eprof::net::pipeline::{run_distributed, Endpoint, PipelineBuilder};
use e2eprof::timeseries::{Nanos, Quanta};

fn cfg() -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .wire(WireVersion::V2)
        .build()
}

fn build_app() -> Rubis {
    Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 1,
        ..RubisConfig::default()
    })
}

const STEPS: u64 = 12;
const STEP: Nanos = Nanos::from_secs(5);
const LAG: Nanos = Nanos::from_secs(1);

/// The uninterrupted distributed run every faulted run must match.
fn clean_run(shards: usize) -> Vec<Vec<ServiceGraph>> {
    let mut app = build_app();
    let endpoint = Endpoint::Mem.bind().expect("bind");
    run_distributed(
        app.sim_mut(),
        PipelineBuilder::new(cfg(), shards),
        &endpoint,
        STEPS,
        STEP,
        LAG,
    )
}

/// Exact structural equality (the fault harness demands bit-identity,
/// not tolerance: reconnects must not perturb the windows at all).
fn assert_identical(a: &[Vec<ServiceGraph>], b: &[Vec<ServiceGraph>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: refresh count differs");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "{ctx}: refresh {} graph count", i + 1);
        for (ga, gb) in ra.iter().zip(rb) {
            assert_eq!(ga.client_label, gb.client_label, "{ctx}");
            let key = |g: &ServiceGraph| {
                let mut edges: Vec<_> = g
                    .edges()
                    .iter()
                    .map(|e| {
                        (
                            (e.from, e.to),
                            e.spikes
                                .iter()
                                .map(|s| (s.delay, s.strength.to_bits()))
                                .collect::<Vec<_>>(),
                            e.hop_delay,
                        )
                    })
                    .collect();
                edges.sort();
                edges
            };
            assert_eq!(
                key(ga),
                key(gb),
                "{ctx}: refresh {} diverged\n{ga}\nvs\n{gb}",
                i + 1
            );
        }
    }
}

#[test]
fn tracer_mid_frame_cuts_leave_graphs_identical() {
    let anchor = clean_run(2);
    // Every tracer's first connection dies mid-stream at a different,
    // deliberately awkward byte offset (inside headers, inside payloads);
    // the second connection for nodes 0 and 1 dies too. All reconnect.
    let mut app = build_app();
    let endpoint = Endpoint::Mem.bind().expect("bind");
    let builder = PipelineBuilder::new(cfg(), 2)
        .tracer_faults(
            0,
            vec![FaultPlan::cut_write_at(97), FaultPlan::cut_write_at(411)],
        )
        .tracer_faults(
            1,
            vec![FaultPlan::cut_write_at(130), FaultPlan::cut_write_at(267)],
        )
        .tracer_faults(2, vec![FaultPlan::cut_write_at(55)])
        .tracer_faults(3, vec![FaultPlan::cut_write_at(1)]);
    let faulted = run_distributed(app.sim_mut(), builder, &endpoint, STEPS, STEP, LAG);
    assert_identical(&anchor, &faulted, "tracer cuts");
}

#[test]
fn analyzer_disconnects_resume_without_loss_or_duplication() {
    let anchor = clean_run(2);
    // Both analyzer shards lose their subscription mid-run — at different
    // read offsets — and resubscribe with resume positions.
    let mut app = build_app();
    let endpoint = Endpoint::Mem.bind().expect("bind");
    let builder = PipelineBuilder::new(cfg(), 2)
        .analyzer_faults(
            0,
            vec![FaultPlan::cut_read_at(731), FaultPlan::cut_read_at(2048)],
        )
        .analyzer_faults(1, vec![FaultPlan::cut_read_at(113)]);
    let faulted = run_distributed(app.sim_mut(), builder, &endpoint, STEPS, STEP, LAG);
    assert_identical(&anchor, &faulted, "analyzer cuts");
}

#[test]
fn jitter_and_stalls_change_timing_not_results() {
    let anchor = clean_run(4);
    // Short reads/writes everywhere (seeded, so the chunking schedule is
    // reproducible) plus a write-side stall on one tracer.
    let mut app = build_app();
    let endpoint = Endpoint::Mem.bind().expect("bind");
    let mut builder = PipelineBuilder::new(cfg(), 4)
        .tracer_faults(0, vec![FaultPlan::jitter(42, 3); 1])
        .tracer_faults(1, vec![FaultPlan::jitter(43, 5); 1])
        .analyzer_faults(0, vec![FaultPlan::jitter(44, 7); 1]);
    let mut stall = FaultPlan::jitter(45, 4);
    stall.stall = Some(e2eprof::net::fault::Stall { at: 64, ops: 3 });
    builder = builder.tracer_faults(2, vec![stall]);
    let faulted = run_distributed(app.sim_mut(), builder, &endpoint, STEPS, STEP, LAG);
    assert_identical(&anchor, &faulted, "jitter+stall");
}

/// Cuts that land *inside* a coalesced multi-frame batch. With a zero
/// redial budget, each failed poll leaves its frame queued, so the
/// backlog grows across polls; the first connection that survives its
/// handshake flushes the whole backlog as one coalesced write — and the
/// scripted byte-offset cut severs that write mid-batch. The
/// fully-written prefix must be retired exactly once (never re-sent into
/// the dedup window as a *different* count), the partial frame must be
/// rewound and resent whole, and the graphs must stay bit-identical to
/// an unfaulted run at 1 and 4 shards.
#[test]
fn cuts_mid_coalesced_batch_leave_graphs_identical() {
    use e2eprof::net::link::LinkConfig;
    for shards in [1, 4] {
        let anchor = clean_run(shards);
        let mut app = build_app();
        let endpoint = Endpoint::Mem.bind().expect("bind");
        let mut link = LinkConfig::immediate();
        // One flush attempt per poll: a cut connection leaves the frame
        // queued instead of redialing inside the same flush, so the
        // backlog (and with it the coalesced batch) builds up.
        link.max_flush_redials = 0;
        let builder = PipelineBuilder::new(cfg(), shards)
            .link_config(link)
            .tracer_faults(
                0,
                vec![
                    // Three connections die during the handshake (byte 1)
                    // — three polls' frames pile up — then the fourth
                    // survives the handshake and is cut mid-way through
                    // the coalesced backlog flush.
                    FaultPlan::cut_write_at(1),
                    FaultPlan::cut_write_at(1),
                    FaultPlan::cut_write_at(1),
                    FaultPlan::cut_write_at(260),
                ],
            )
            .tracer_faults(
                1,
                vec![
                    FaultPlan::cut_write_at(1),
                    FaultPlan::cut_write_at(1),
                    FaultPlan::cut_write_at(520),
                ],
            )
            .tracer_faults(
                2,
                vec![FaultPlan::cut_write_at(1), FaultPlan::cut_write_at(900)],
            )
            // And a subscriber cut landing mid-way through the broker's
            // coalesced replay backlog on reconnect.
            .analyzer_faults(0, vec![FaultPlan::cut_read_at(700)]);
        let faulted = run_distributed(app.sim_mut(), builder, &endpoint, STEPS, STEP, LAG);
        assert_identical(
            &anchor,
            &faulted,
            &format!("coalesced-batch cuts x{shards}"),
        );
    }
}

#[test]
fn cuts_compose_with_jitter_across_shard_counts() {
    for shards in [1, 4] {
        let anchor = clean_run(shards);
        let mut app = build_app();
        let endpoint = Endpoint::Mem.bind().expect("bind");
        let mut cut_and_jitter = FaultPlan::cut_write_at(300);
        cut_and_jitter.jitter = Some(e2eprof::net::fault::Jitter {
            seed: 7,
            max_chunk: 2,
        });
        let builder = PipelineBuilder::new(cfg(), shards)
            .tracer_faults(0, vec![cut_and_jitter])
            .analyzer_faults(0, vec![FaultPlan::cut_read_at(500)]);
        let faulted = run_distributed(app.sim_mut(), builder, &endpoint, STEPS, STEP, LAG);
        assert_identical(&anchor, &faulted, &format!("composed faults x{shards}"));
    }
}

/// A permanently unreachable broker must not panic, hang, or grow
/// unboundedly: the bounded queue evicts oldest, the agent counts every
/// eviction, and `poll` reports the drops in its outcome.
#[test]
fn unreachable_broker_drops_are_counted_never_silent() {
    use e2eprof::net::link::{LinkConfig, TracerLink};
    use e2eprof::net::{Dialer, NetStream};
    use e2eprof::netsim::NodeId;
    use std::collections::HashSet;

    struct DeadDialer;
    impl Dialer for DeadDialer {
        fn dial(&self) -> std::io::Result<Box<dyn NetStream>> {
            Err(std::io::Error::new(
                std::io::ErrorKind::ConnectionRefused,
                "down",
            ))
        }
    }

    let mut app = build_app();
    let sim = app.sim_mut();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let node = sim.topology().services()[0];
    let mut link_cfg = LinkConfig::immediate();
    link_cfg.queue_capacity = 2;
    link_cfg.max_flush_redials = 0;
    let link = TracerLink::new(node.index() as u32, Box::new(DeadDialer), link_cfg);
    // v1 wire: one frame per owned edge per poll, so a 2-slot queue
    // overflows quickly.
    let v1 = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .build();
    let mut agent = TracerAgent::with_sink(node, clients, v1, Box::new(link));
    let mut dropped_outcomes = 0;
    for i in 1..=6u64 {
        let now = Nanos::from_secs(5 * i);
        sim.run_until(now);
        let drain = Quanta::from_millis(1).tick_of(now.saturating_sub(Nanos::from_secs(1)));
        match agent.poll(sim.captures(), drain) {
            PollOutcome::Dropped(n) => {
                assert!(n > 0);
                dropped_outcomes += 1;
            }
            PollOutcome::Sent(_) => {}
        }
    }
    assert!(
        dropped_outcomes > 0,
        "a 2-slot queue against a dead broker must overflow"
    );
    assert!(agent.frames_emitted() > agent.frames_dropped());
    assert_eq!(
        agent.frames_dropped(),
        agent.frames_emitted() - 2,
        "everything but the retained queue tail was dropped, and counted"
    );
}

/// The reduction feedback loop's fault-tolerance contract: hint
/// subscriptions are cut mid-stream — including between a demote `Hint`
/// and the `Backfill` its later promote triggers — and the replayed
/// full-state snapshots must converge every tracer to the same levels,
/// leaving the published graphs identical to an unfaulted reduced run.
mod reduction_faults {
    use super::*;
    use e2eprof_bench::ebbing_fanout_sim;

    fn reduced_cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_millis(500))
            .wire(WireVersion::V2)
            .screening(ScreeningConfig {
                decimation: 8,
                hysteresis: 0.5,
            })
            .reduction(ReductionConfig::default())
            .build()
    }

    /// The ebbing fanout drives the whole hint lifecycle inside 12 × 5 s
    /// steps on a sharded tier: the background client's silence lets its
    /// backend edges go cold on *every* shard (the unanimity the
    /// effective-level merge requires), its resumption fires the
    /// promote-overlap check, and the promote triggers fine backfills.
    fn run_ebbing(
        builder_faults: impl FnOnce(PipelineBuilder) -> PipelineBuilder,
    ) -> (Vec<Vec<ServiceGraph>>, u64) {
        let mut sim = ebbing_fanout_sim(4, 11, 12.0, 44.0, 60.0);
        let endpoint = Endpoint::Mem.bind().expect("bind");
        let builder = builder_faults(PipelineBuilder::new(reduced_cfg(), 2));
        let mut pipeline = builder.build(sim.topology(), &endpoint);
        let mut out = Vec::new();
        for i in 1..=STEPS {
            let now = Nanos::from_nanos(STEP.as_nanos() * i);
            out.push(pipeline.step(&mut sim, now, LAG));
        }
        let backfills = pipeline.backfills_emitted();
        pipeline.shutdown();
        (out, backfills)
    }

    #[test]
    fn hint_cuts_between_hint_and_backfill_converge_to_the_same_graphs() {
        let (clean, clean_backfills) = run_ebbing(|b| b);
        assert!(
            clean_backfills > 0,
            "the ebbing workload must drive a demote→promote→backfill round trip"
        );
        // Cut the hint subscriptions at mid-frame byte offsets chosen to
        // land after the demote snapshots and before the promote ones —
        // i.e. between a Hint and the Backfill it will trigger — plus one
        // immediate cut exercising the resubscribe-from-scratch path.
        let (faulted, faulted_backfills) = run_ebbing(|b| {
            b.hint_faults(
                0,
                vec![FaultPlan::cut_read_at(41), FaultPlan::cut_read_at(97)],
            )
            .hint_faults(1, vec![FaultPlan::cut_read_at(73)])
            .hint_faults(2, vec![FaultPlan::cut_read_at(1)])
        });
        assert_identical(&clean, &faulted, "hint cuts");
        assert!(
            faulted_backfills > 0,
            "hint replay must still deliver the promote and its backfill"
        );
    }

    /// Hint faults compose with data-link faults: a tracer whose *data*
    /// connection dies mid-frame while its *hint* subscription is also
    /// cut must still converge.
    #[test]
    fn hint_and_data_cuts_compose() {
        let (clean, _) = run_ebbing(|b| b);
        let (faulted, backfills) = run_ebbing(|b| {
            b.tracer_faults(0, vec![FaultPlan::cut_write_at(211)])
                .hint_faults(0, vec![FaultPlan::cut_read_at(59)])
                .analyzer_faults(1, vec![FaultPlan::cut_read_at(307)])
        });
        assert_identical(&clean, &faulted, "hint+data cuts");
        assert!(backfills > 0);
    }
}

/// Same-seed fault schedules are bitwise reproducible: two identical
/// faulted runs yield identical graphs (the harness itself is
/// deterministic, so any failure it ever reports replays exactly).
#[test]
fn faulted_runs_are_reproducible() {
    let run = || {
        let mut app = build_app();
        let endpoint = Endpoint::Mem.bind().expect("bind");
        let builder = PipelineBuilder::new(cfg(), 2)
            .tracer_faults(
                0,
                vec![FaultPlan::jitter(9, 2), FaultPlan::cut_write_at(200)],
            )
            .analyzer_faults(1, vec![FaultPlan::cut_read_at(901)]);
        run_distributed(app.sim_mut(), builder, &endpoint, STEPS, STEP, LAG)
    };
    let first = run();
    let second = run();
    assert_identical(&first, &second, "reproducibility");
}
