//! Integration: pathmap on a publish-subscribe system (the paper's
//! future-work domain). The dissemination is strictly one-way multicast,
//! so call-return techniques are blind; pathmap recovers the whole
//! dissemination tree per topic, with per-subscriber delivery delays.

use e2eprof::apps::pubsub::{PubSub, PubSubConfig};
use e2eprof::core::nesting::Nesting;
use e2eprof::core::prelude::*;
use e2eprof::timeseries::Nanos;

#[test]
fn dissemination_tree_recovered_per_topic() {
    let mut p = PubSub::build(PubSubConfig::default());
    p.sim_mut().run_until(Nanos::from_secs(60));
    let n = p.nodes().clone();

    let cfg = PathmapConfig::builder()
        .window(Nanos::from_secs(30))
        .refresh(Nanos::from_secs(10))
        .max_delay(Nanos::from_secs(2))
        .build();
    let labels = NodeLabels::from_topology(p.sim().topology());
    let roots = roots_from_topology(p.sim().topology());
    let graphs = Pathmap::new(cfg.clone()).discover(
        &EdgeSignals::from_capture(p.sim().captures(), &cfg, p.sim().now()),
        &roots,
        &labels,
    );
    assert_eq!(graphs.len(), 2, "one graph per topic");

    for g in &graphs {
        // The broker fans out to every subscriber: a star below the root.
        for (i, &s) in n.subscribers.iter().enumerate() {
            let edge = g
                .edge(n.broker, s)
                .unwrap_or_else(|| panic!("{}: missing broker->sub_{i}\n{g}", g.client_label));
            let delay = edge.min_delay().expect("measured delay").as_millis_f64();
            // Broker ~4ms + 1ms link, all subscribers fed from the same
            // multicast instant.
            assert!(
                (2.0..15.0).contains(&delay),
                "broker->sub_{i} delivery at {delay}ms"
            );
        }
        // No fabricated inter-subscriber edges.
        for &a in &n.subscribers {
            for &b in &n.subscribers {
                if a != b {
                    assert!(g.edge(a, b).is_none(), "spurious sub->sub edge");
                }
            }
        }
    }

    // Call-return analysis is blind here.
    let nesting = Nesting::default().discover(p.sim().captures(), &roots, &labels);
    for g in &nesting {
        assert_eq!(
            g.edges().len(),
            1,
            "nesting found structure in one-way traffic:\n{g}"
        );
    }
}
