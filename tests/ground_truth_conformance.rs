//! Conformance against the simulator's ground truth (the paper's
//! Section 4.1.1 validation, mechanized): on clean runs, pathmap's
//! discovered edge set must match the true request paths *exactly*
//! (precision and recall 1.0 over trusted edges), and every per-edge
//! cumulative delay must sit within tolerance of the delays the
//! [`TruthRecorder`] measured with perfect knowledge — across multiple
//! seeds, for both evaluation applications.
//!
//! [`TruthRecorder`]: e2eprof::netsim::truth::TruthRecorder

use e2eprof::apps::delta::DeltaConfig;
use e2eprof::apps::experiments::{delta_analysis, delta_paper_config, fig5_affinity};
use e2eprof::apps::rubis::Rubis;
use e2eprof::core::prelude::*;
use e2eprof::netsim::truth::TruthRecorder;
use e2eprof::netsim::{ClassId, NodeId, RequestId};
use e2eprof::timeseries::Nanos;
use std::collections::{BTreeSet, HashMap};

/// Mean, per node on the true path, of (arrival at node − arrival at the
/// path's first hop) over completed `class` requests — the ground-truth
/// counterpart of a cumulative spike lag, whose zero point is the
/// client's request observed arriving at the front end. The key `None`
/// holds the mean response arrival back at the client.
fn true_cumulative_delays(truth: &TruthRecorder, class: ClassId) -> HashMap<Option<NodeId>, Nanos> {
    let mut sums: HashMap<Option<NodeId>, (f64, f64)> = HashMap::new();
    for id in 0..truth.started_count() {
        let Some(rec) = truth.request(RequestId::new(id)) else {
            continue;
        };
        if rec.class != class {
            continue;
        }
        let Some(complete) = rec.complete else {
            continue;
        };
        let Some(&(_, front_arrival, _)) = rec.hops.first() else {
            continue;
        };
        for &(node, arrival, _) in &rec.hops {
            let e = sums.entry(Some(node)).or_insert((0.0, 0.0));
            e.0 += (arrival - front_arrival).as_nanos() as f64;
            e.1 += 1.0;
        }
        let e = sums.entry(None).or_insert((0.0, 0.0));
        e.0 += (complete - front_arrival).as_nanos() as f64;
        e.1 += 1.0;
    }
    sums.into_iter()
        .map(|(node, (sum, n))| (node, Nanos::from_nanos((sum / n).round() as u64)))
        .collect()
}

/// The edge set pathmap should discover for one true path: the anchoring
/// client edge, every forward hop, the reversed hops of the response
/// path, and the response edge back to the client.
fn expected_edges(client: NodeId, path: &[NodeId]) -> BTreeSet<(NodeId, NodeId)> {
    let mut set = BTreeSet::new();
    set.insert((client, path[0]));
    for w in path.windows(2) {
        set.insert((w[0], w[1]));
        set.insert((w[1], w[0]));
    }
    set.insert((path[0], client));
    set
}

fn strong_edge_set(g: &ServiceGraph) -> BTreeSet<(NodeId, NodeId)> {
    g.strong_edges().map(|e| (e.from, e.to)).collect()
}

/// The single true path of `class`, asserting the run really was clean
/// (every completed request took the same route).
fn single_true_path(truth: &TruthRecorder, class: ClassId) -> Vec<NodeId> {
    let paths = truth.class_paths(class);
    assert_eq!(paths.len(), 1, "run not clean: {} paths", paths.len());
    paths.into_keys().next().unwrap()
}

#[test]
fn rubis_edges_and_delays_match_truth_across_seeds() {
    for seed in [1, 2, 3] {
        let (rubis, graphs) = fig5_affinity(seed, Nanos::from_minutes(2));
        assert_eq!(graphs.len(), 2, "seed {seed}");
        for g in &graphs {
            let class = class_of(&rubis, g.client);
            let truth = rubis.sim().truth();
            let path = single_true_path(truth, class);

            // Edge conformance: the trusted edges are exactly the true
            // path's edges — precision and recall 1.0.
            let expected = expected_edges(g.client, &path);
            let discovered = strong_edge_set(g);
            assert_eq!(
                discovered, expected,
                "seed {seed}, {}: edge sets differ\n{g}",
                g.client_label
            );

            // Delay conformance: each forward edge's cumulative delay is
            // the true mean arrival time at its destination (relative to
            // the front end), within 35% or 6 ms — the paper's ~10%
            // per-server band, widened for the 2-minute window and the
            // spike's mode-vs-mean offset on skewed delay distributions.
            let cum = true_cumulative_delays(truth, class);
            for w in path.windows(2) {
                let inferred = g
                    .edge(w[0], w[1])
                    .and_then(|e| e.min_delay())
                    .unwrap_or_else(|| panic!("seed {seed}: no delay on {:?}->{:?}", w[0], w[1]));
                assert_delay_close(inferred, cum[&Some(w[1])], seed, &g.client_label);
            }
            // The response edge back to the client carries the full
            // round trip (minus the untraced client link).
            let e2e = g
                .edge(path[0], g.client)
                .and_then(|e| e.max_delay())
                .expect("client return edge measured");
            assert_delay_close(e2e, cum[&None], seed, &g.client_label);
        }
    }
}

fn class_of(rubis: &Rubis, client: NodeId) -> ClassId {
    if client == rubis.nodes().c1 {
        rubis.bidding()
    } else {
        rubis.comment()
    }
}

fn assert_delay_close(inferred: Nanos, actual: Nanos, seed: u64, who: &str) {
    let tolerance = (actual.as_nanos() as f64 * 0.35).max(6e6);
    let diff = (inferred.as_nanos() as f64 - actual.as_nanos() as f64).abs();
    assert!(
        diff <= tolerance,
        "seed {seed}, {who}: inferred {inferred:?} vs truth {actual:?} (|Δ| {diff} > {tolerance})"
    );
}

#[test]
fn delta_edges_and_delays_match_truth_across_seeds() {
    for seed in [7, 8, 9] {
        let (delta, graphs) = delta_analysis(
            DeltaConfig {
                queues: 6,
                seed,
                ..DeltaConfig::default()
            },
            &delta_paper_config(),
            Nanos::from_minutes(135),
        );
        let truth = delta.sim().truth();
        let mut fully_recovered = 0;
        let mut bursty = 0;
        for g in &graphs {
            let Some(idx) = delta.nodes().queues.iter().position(|&q| q == g.client) else {
                panic!("graph for unknown client {}", g.client_label);
            };
            let class = delta.classes()[idx];
            let path = single_true_path(truth, class);

            // Precision 1.0: every trusted edge lies on the true path
            // (forward, return, or the client anchor/response) — bursty
            // feeds must not bleed into each other's graphs.
            let expected = expected_edges(g.client, &path);
            for edge in strong_edge_set(g) {
                assert!(
                    expected.contains(&edge),
                    "seed {seed}, {}: spurious edge {edge:?}\n{g}",
                    g.client_label
                );
            }

            // Recall on the forward pipeline, and delay conformance at
            // τ = 1 s: cumulative arrival delays are sub-second against a
            // 10-minute lag bound, so inferred spikes must sit within a
            // few quanta of truth. Queue 0 is the smooth Poisson feed —
            // its arrival signal carries no identifying structure, so any
            // spike it produces is another feed's burst echo at an
            // arbitrary lag; recall and delays are judged on the bursty
            // feeds only, as in the paper's bursty-workload analysis.
            let smooth = g.client_label == "feed_00";
            if smooth {
                continue;
            }
            bursty += 1;
            let cum = true_cumulative_delays(truth, class);
            let mut forward_edges = 0;
            for w in path.windows(2) {
                let Some(inferred) = g.edge(w[0], w[1]).and_then(|e| e.min_delay()) else {
                    continue;
                };
                forward_edges += 1;
                let actual = cum[&Some(w[1])];
                let diff = (inferred.as_nanos() as f64 - actual.as_nanos() as f64).abs();
                assert!(
                    diff <= 5e9,
                    "seed {seed}, {}: {:?}->{:?} inferred {inferred:?} vs truth {actual:?}",
                    g.client_label,
                    w[0],
                    w[1]
                );
            }
            if forward_edges == path.len() - 1 {
                fully_recovered += 1;
            }
        }
        assert_eq!(bursty, 5, "seed {seed}");
        assert!(
            fully_recovered >= 4,
            "seed {seed}: only {fully_recovered}/5 bursty feeds recovered the full pipeline"
        );
    }
}
