//! The screening tier's hard requirement: with `screening` enabled, the
//! online analyzer's published graphs are **identical** to the unscreened
//! run — same edge sets, same spike lags, same hop delays, same
//! bottleneck flags — at every refresh, on both evaluation applications.
//! Coarse-to-fine pruning is a cost optimization that must be
//! observationally invisible (the cover bound is sound, so anything
//! pruned could never have produced a distinguishable spike).
//!
//! Spike strengths are compared within 1e-9: a pair that is demoted and
//! later re-promoted recomputes its correlation from the retained window,
//! summing the same products in a different order than the incremental
//! path.

use crossbeam::channel::unbounded;
use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::netsim::{NodeId, Simulation};
use e2eprof::timeseries::{Nanos, Quanta};
use std::collections::HashSet;

const SCREENING: ScreeningConfig = ScreeningConfig {
    decimation: 8,
    hysteresis: 0.5,
};

/// Drives a full online pipeline (tracer agents on every service + one
/// analyzer) over `steps` refresh intervals, returning each refresh's
/// published graphs.
fn run_pipeline(
    sim: &mut Simulation,
    config: &PathmapConfig,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> Vec<Vec<ServiceGraph>> {
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        sim.run_until(now);
        let drain = config.quanta().tick_of(now.saturating_sub(drain_lag));
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        out.push(analyzer.refresh(now));
    }
    out
}

/// Structural equality: edge sets, spike lags, hop delays, and bottleneck
/// flags exact; spike strengths within 1e-9.
fn assert_graphs_equivalent(plain: &[ServiceGraph], screened: &[ServiceGraph], ctx: &str) {
    assert_eq!(plain.len(), screened.len(), "{ctx}: graph count differs");
    for (ga, gb) in plain.iter().zip(screened) {
        assert_eq!(ga.client_label, gb.client_label, "{ctx}");
        let key = |g: &ServiceGraph| {
            let mut edges: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.spikes.iter().map(|s| s.delay).collect::<Vec<_>>(),
                        e.hop_delay,
                    )
                })
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(
            key(ga),
            key(gb),
            "{ctx}, {}: screening changed the graph\n{ga}\nvs\n{gb}",
            ga.client_label
        );
        let flags = |g: &ServiceGraph| {
            let mut v: Vec<_> = g
                .vertices()
                .iter()
                .map(|v| (v.label.clone(), v.bottleneck))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flags(ga), flags(gb), "{ctx}: bottleneck flags differ");
        for ea in ga.edges() {
            let eb = gb.edge(ea.from, ea.to).expect("edge sets already equal");
            for (sa, sb) in ea.spikes.iter().zip(&eb.spikes) {
                assert!(
                    (sa.strength - sb.strength).abs() < 1e-9,
                    "{ctx}: strength drift {} vs {}",
                    sa.strength,
                    sb.strength
                );
            }
        }
    }
}

fn rubis_cfg(screening: Option<ScreeningConfig>) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2));
    if let Some(sc) = screening {
        b = b.screening(sc);
    }
    b.build()
}

#[test]
fn rubis_online_screened_matches_unscreened_across_seeds() {
    for seed in [1, 2, 3] {
        let build = || {
            Rubis::build(RubisConfig {
                dispatch: Dispatch::Affinity,
                seed,
                ..RubisConfig::default()
            })
        };
        let mut plain_app = build();
        let mut screened_app = build();
        let step = Nanos::from_secs(5);
        let lag = Nanos::from_secs(1);
        let plain = run_pipeline(plain_app.sim_mut(), &rubis_cfg(None), 12, step, lag);
        let screened = run_pipeline(
            screened_app.sim_mut(),
            &rubis_cfg(Some(SCREENING)),
            12,
            step,
            lag,
        );
        let mut productive = 0;
        for (i, (a, b)) in plain.iter().zip(&screened).enumerate() {
            assert_graphs_equivalent(a, b, &format!("rubis seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        // The equivalence must be exercised on real graphs, not vacuous ones.
        assert!(
            productive >= 5,
            "rubis seed {seed}: only {productive} productive refreshes"
        );
    }
}

fn delta_cfg(screening: Option<ScreeningConfig>) -> PathmapConfig {
    // The paper's Delta analysis at a reduced horizon: τ = 1 s, ω = 20·τ,
    // W = 30 min, refresh = 5 min, T_u = 10 min.
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10));
    if let Some(sc) = screening {
        b = b.screening(sc);
    }
    b.build()
}

#[test]
fn delta_online_screened_matches_unscreened_across_seeds() {
    for seed in [7, 8, 9] {
        let build = || {
            Delta::build(DeltaConfig {
                queues: 6,
                seed,
                ..DeltaConfig::default()
            })
        };
        let mut plain_app = build();
        let mut screened_app = build();
        let step = Nanos::from_minutes(5);
        let lag = Nanos::from_secs(60);
        let plain = run_pipeline(plain_app.sim_mut(), &delta_cfg(None), 12, step, lag);
        let screened = run_pipeline(
            screened_app.sim_mut(),
            &delta_cfg(Some(SCREENING)),
            12,
            step,
            lag,
        );
        let mut productive = 0;
        for (i, (a, b)) in plain.iter().zip(&screened).enumerate() {
            assert_graphs_equivalent(a, b, &format!("delta seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        assert!(
            productive >= 2,
            "delta seed {seed}: only {productive} productive refreshes"
        );
    }
}
