//! The sharded refresh's hard requirement: for every worker count, the
//! online analyzer's output is **tick-for-tick identical** to the serial
//! (`num_workers = 1`) run — same graphs, same edges, same delays, bitwise
//! equal floats. Parallelism here is an implementation detail that must be
//! observationally invisible.

use crossbeam::channel::unbounded;
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::netsim::NodeId;
use e2eprof::timeseries::{Nanos, Quanta, Tick};
use e2eprof::xcorr::engine::{Correlator, RleCorrelator};
use std::collections::HashSet;

fn analyzer_config(num_workers: usize) -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .num_workers(num_workers)
        .build()
}

/// One full online pipeline (simulator + tracers + analyzer), identical to
/// every other instance except for the analyzer's worker count.
struct Pipeline {
    rubis: Rubis,
    agents: Vec<TracerAgent>,
    analyzer: OnlineAnalyzer,
}

impl Pipeline {
    fn build(seed: u64, num_workers: usize) -> Self {
        let rubis = Rubis::build(RubisConfig {
            dispatch: Dispatch::Affinity,
            seed,
            ..RubisConfig::default()
        });
        let config = analyzer_config(num_workers);
        let (tx, rx) = unbounded();
        let clients: HashSet<NodeId> = rubis.sim().topology().clients().into_iter().collect();
        let agents: Vec<TracerAgent> = rubis
            .sim()
            .topology()
            .services()
            .into_iter()
            .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
            .collect();
        let analyzer = OnlineAnalyzer::new(
            config.clone(),
            roots_from_topology(rubis.sim().topology()),
            NodeLabels::from_topology(rubis.sim().topology()),
            rx,
        );
        Pipeline {
            rubis,
            agents,
            analyzer,
        }
    }

    fn step(&mut self, step: u64) -> Vec<ServiceGraph> {
        let now = Nanos::from_secs(step * 5);
        self.rubis.sim_mut().run_until(now);
        let drain = Tick::new(step * 5_000 - 1_000);
        for a in &mut self.agents {
            a.poll(self.rubis.sim().captures(), drain);
        }
        self.analyzer.ingest();
        self.analyzer.refresh(now)
    }
}

#[test]
fn online_refresh_is_identical_for_every_worker_count() {
    let seed = 11;
    let mut serial = Pipeline::build(seed, 1);
    let mut two = Pipeline::build(seed, 2);
    let mut four = Pipeline::build(seed, 4);
    let mut many = Pipeline::build(seed, 32); // more workers than pairs

    let mut productive = 0;
    for step in 1..=12u64 {
        let reference = serial.step(step);
        assert_eq!(
            two.step(step),
            reference,
            "num_workers=2 diverged at refresh {step}"
        );
        assert_eq!(
            four.step(step),
            reference,
            "num_workers=4 diverged at refresh {step}"
        );
        assert_eq!(
            many.step(step),
            reference,
            "num_workers=32 diverged at refresh {step}"
        );
        if !reference.is_empty() {
            productive += 1;
        }
    }
    // The equivalence must be exercised on real graphs, not vacuous ones.
    assert!(productive >= 5, "only {productive} productive refreshes");
}

#[test]
fn offline_parallel_discovery_matches_serial() {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 23,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(Nanos::from_secs(30));
    let cfg = analyzer_config(1);
    let signals = EdgeSignals::from_capture(rubis.sim().captures(), &cfg, rubis.sim().now());
    let roots = roots_from_topology(rubis.sim().topology());
    let labels = NodeLabels::from_topology(rubis.sim().topology());
    let pathmap = Pathmap::new(cfg);
    let serial = pathmap.discover(&signals, &roots, &labels);
    let parallel = pathmap.discover_parallel(&signals, &roots, &labels);
    assert_eq!(serial, parallel, "discover_parallel diverged from discover");
    assert!(!serial.is_empty(), "equivalence exercised on empty output");
}

#[test]
fn batch_correlation_on_real_signals_matches_serial_loop() {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 5,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(Nanos::from_secs(20));
    let cfg = analyzer_config(1);
    let signals = EdgeSignals::from_capture(rubis.sim().captures(), &cfg, rubis.sim().now());
    // Correlate every client arrival signal against every captured edge.
    let clients = rubis.sim().topology().clients();
    let roots = roots_from_topology(rubis.sim().topology());
    let sources: Vec<_> = roots
        .iter()
        .filter_map(|&(client, front)| signals.source_signal(client, front))
        .collect();
    let targets: Vec<_> = signals
        .edges()
        .filter(|&(src, _)| !clients.contains(&src))
        .filter_map(|(src, dst)| signals.target_signal(src, dst))
        .collect();
    let pairs: Vec<_> = sources
        .iter()
        .flat_map(|x| targets.iter().map(move |&y| (x, y)))
        .collect();
    assert!(pairs.len() >= 8, "need a non-trivial batch");

    let engine = RleCorrelator;
    let max_lag = 2_000;
    let serial: Vec<_> = pairs
        .iter()
        .map(|&(x, y)| engine.correlate(x, y, max_lag))
        .collect();
    for workers in [1, 2, 3, 8] {
        let batched = engine.correlate_batch(&pairs, max_lag, workers);
        assert_eq!(batched.len(), serial.len());
        for (i, (b, s)) in batched.iter().zip(&serial).enumerate() {
            assert_eq!(
                b.values(),
                s.values(),
                "pair {i} not bitwise identical at workers={workers}"
            );
        }
    }
}
