//! Integration: Section 3.8 — clock-skew estimation between the two ends
//! of an edge, against injected ground truth.

use e2eprof::apps::experiments::skew_estimation;
use e2eprof::timeseries::Nanos;

#[test]
fn skew_recovered_within_one_quantum() {
    // offset = skew + 1 ms link; τ = 1 ms, so tolerance is one tick.
    for skew_ms in [-10i64, -2, 0, 3, 7, 15] {
        let r = skew_estimation(3, skew_ms, Nanos::from_secs(60));
        let expected = skew_ms * 1_000_000 + 1_000_000;
        assert!(
            (r.estimated_offset_ns - expected).abs() <= 1_000_000,
            "skew {skew_ms}ms: estimated {} expected {expected}",
            r.estimated_offset_ns
        );
        assert!(r.strength > 0.8, "weak estimate: {}", r.strength);
    }
}

#[test]
fn estimates_are_deterministic() {
    let a = skew_estimation(4, 5, Nanos::from_secs(30));
    let b = skew_estimation(4, 5, Nanos::from_secs(30));
    assert_eq!(a, b);
}
