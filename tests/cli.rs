//! Integration tests of the `e2eprof` command-line tool, driven through
//! the real binary.

use std::io::Write;
use std::process::Command;

fn e2eprof(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_e2eprof"))
        .args(args)
        .output()
        .expect("binary runs")
}

/// A minimal two-tier log with a 5 ms hop and irregular arrivals,
/// written to a self-cleaning temp path.
fn sample_log() -> TempLog {
    let mut contents = String::from("# timestamp_ns,src,dst\n");
    let mut t: u64 = 0;
    let mut h: u64 = 5;
    for _ in 0..1500 {
        h = h.wrapping_mul(6364136223846793005).wrapping_add(1);
        t += 10_000_000 + h % 40_000_000;
        contents.push_str(&format!("{t},client,web\n"));
        contents.push_str(&format!("{},web,db\n", t + 5_000_000));
        contents.push_str(&format!("{},db,web\n", t + 11_000_000));
    }
    TempLog::new(&contents)
}

/// A temp file removed on drop (std-only stand-in for `tempfile`).
struct TempLog {
    path: std::path::PathBuf,
}

impl TempLog {
    fn new(contents: &str) -> Self {
        let path = std::env::temp_dir().join(format!(
            "e2eprof-cli-test-{}-{:?}.csv",
            std::process::id(),
            std::thread::current().id()
        ));
        let mut f = std::fs::File::create(&path).expect("create temp log");
        f.write_all(contents.as_bytes()).expect("write temp log");
        TempLog { path }
    }

    fn path(&self) -> &std::path::Path {
        &self.path
    }
}

impl Drop for TempLog {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[test]
fn no_arguments_prints_usage() {
    let out = e2eprof(&[]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
}

#[test]
fn analyze_discovers_paths_from_a_log() {
    let log = sample_log();
    let out = e2eprof(&[
        "analyze",
        log.path().to_str().unwrap(),
        "--window",
        "20s",
        "--max-delay",
        "1s",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("web -> db"), "{stdout}");
    assert!(stdout.contains("db -> web"), "{stdout}");
}

#[test]
fn analyze_dot_output_is_graphviz() {
    let log = sample_log();
    let out = e2eprof(&[
        "analyze",
        log.path().to_str().unwrap(),
        "--window",
        "20s",
        "--max-delay",
        "1s",
        "--format",
        "dot",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.starts_with("digraph"), "{stdout}");
    assert!(stdout.contains("\"web\" -> \"db\""), "{stdout}");
}

#[test]
fn analyze_waterfall_output_has_bars() {
    let log = sample_log();
    let out = e2eprof(&[
        "analyze",
        log.path().to_str().unwrap(),
        "--window",
        "20s",
        "--max-delay",
        "1s",
        "--format",
        "waterfall",
    ]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains('#'), "{stdout}");
    assert!(stdout.contains("client client:"), "{stdout}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = e2eprof(&["analyze", "/nonexistent/trace.csv"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot open"));
}

#[test]
fn malformed_duration_is_reported() {
    let out = e2eprof(&["analyze", "x.csv", "--window", "banana"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("duration"));
}

#[test]
fn unknown_flag_is_reported() {
    let out = e2eprof(&["analyze", "x.csv", "--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown option"));
}

#[test]
fn demo_runs_end_to_end() {
    let out = e2eprof(&["demo"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("web -> app"), "{stdout}");
    assert!(stdout.contains("bottleneck: app"), "{stdout}");
}
