//! The activity-gated incremental tier's hard requirement: with
//! `incremental` enabled, the online analyzer's published graphs are
//! **bit-for-bit identical** to the eager run — spike strengths compared
//! via `f64::to_bits`, not a tolerance — at every refresh, on both
//! evaluation applications.
//!
//! The skip paths are proven no-ops (DESIGN.md §6.7): a pair is only
//! skipped when its change epochs and boundary-run checks certify that
//! every append/evict correction term is a sum of zero products, and a
//! root graph is only reused when every pair its exploration touched
//! carried bitwise. Anything short of exact equality here means the
//! proof does not hold and the gate is silently corrupting results.

use crossbeam::channel::unbounded;
use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::net::pipeline::{run_distributed, Endpoint, PipelineBuilder};
use e2eprof::netsim::{NodeId, Simulation};
use e2eprof::timeseries::{Nanos, Quanta};
use std::collections::HashSet;

/// Drives a full online pipeline (tracer agents on every service + one
/// analyzer) over `steps` refresh intervals, returning each refresh's
/// published graphs and the analyzer for counter inspection.
fn run_pipeline(
    sim: &mut Simulation,
    config: &PathmapConfig,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> (Vec<Vec<ServiceGraph>>, OnlineAnalyzer) {
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        sim.run_until(now);
        let drain = config.quanta().tick_of(now.saturating_sub(drain_lag));
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        out.push(analyzer.refresh(now));
        if let Some(hint) = analyzer.take_hints() {
            for a in &mut agents {
                a.apply_hint_state(&hint);
            }
        }
    }
    (out, analyzer)
}

/// Bitwise equality: everything exact, spike strengths via `to_bits`.
fn assert_graphs_identical(eager: &[ServiceGraph], gated: &[ServiceGraph], ctx: &str) {
    assert_eq!(eager.len(), gated.len(), "{ctx}: graph count differs");
    for (ga, gb) in eager.iter().zip(gated) {
        assert_eq!(ga.client_label, gb.client_label, "{ctx}");
        let vertices = |g: &ServiceGraph| {
            let mut v: Vec<_> = g
                .vertices()
                .iter()
                .map(|v| (v.label.clone(), v.bottleneck))
                .collect();
            v.sort();
            v
        };
        assert_eq!(vertices(ga), vertices(gb), "{ctx}: vertex sets differ");
        let edges = |g: &ServiceGraph| {
            let mut e: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.hop_delay,
                        e.spikes
                            .iter()
                            .map(|s| (s.delay, s.strength.to_bits()))
                            .collect::<Vec<_>>(),
                    )
                })
                .collect();
            e.sort();
            e
        };
        assert_eq!(
            edges(ga),
            edges(gb),
            "{ctx}, {}: incremental run diverged bitwise\n{ga}\nvs\n{gb}",
            ga.client_label
        );
    }
}

const SCREENING: ScreeningConfig = ScreeningConfig {
    decimation: 8,
    hysteresis: 0.5,
};

fn rubis_cfg(incremental: bool, screened: bool, reduced: bool) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .incremental(incremental);
    if screened {
        b = b.screening(SCREENING);
    }
    if reduced {
        b = b
            .wire(WireVersion::V2)
            .reduction(ReductionConfig::default());
    }
    b.build()
}

fn delta_cfg(incremental: bool, screened: bool, reduced: bool) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10))
        .incremental(incremental);
    if screened {
        b = b.screening(SCREENING);
    }
    if reduced {
        b = b
            .wire(WireVersion::V2)
            .reduction(ReductionConfig::default());
    }
    b.build()
}

fn rubis_app(seed: u64) -> Rubis {
    Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed,
        ..RubisConfig::default()
    })
}

fn delta_app(seed: u64) -> Delta {
    Delta::build(DeltaConfig {
        queues: 6,
        seed,
        ..DeltaConfig::default()
    })
}

#[test]
fn rubis_incremental_matches_eager_bitwise_across_seeds() {
    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    for seed in [1, 2, 3] {
        let (eager, _) = run_pipeline(
            rubis_app(seed).sim_mut(),
            &rubis_cfg(false, false, false),
            12,
            step,
            lag,
        );
        let (gated, analyzer) = run_pipeline(
            rubis_app(seed).sim_mut(),
            &rubis_cfg(true, false, false),
            12,
            step,
            lag,
        );
        let mut productive = 0;
        for (i, (a, b)) in eager.iter().zip(&gated).enumerate() {
            assert_graphs_identical(a, b, &format!("rubis seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        assert!(
            productive >= 5,
            "rubis seed {seed}: only {productive} productive refreshes"
        );
        let stats = analyzer
            .incremental_stats()
            .expect("incremental tier is on");
        assert!(stats.fine_pairs > 0, "rubis seed {seed}: tier never ran");
    }
}

#[test]
fn delta_incremental_matches_eager_bitwise_across_seeds() {
    let step = Nanos::from_minutes(5);
    let lag = Nanos::from_secs(60);
    for seed in [7, 8, 9] {
        let (eager, _) = run_pipeline(
            delta_app(seed).sim_mut(),
            &delta_cfg(false, false, false),
            12,
            step,
            lag,
        );
        let (gated, _) = run_pipeline(
            delta_app(seed).sim_mut(),
            &delta_cfg(true, false, false),
            12,
            step,
            lag,
        );
        let mut productive = 0;
        for (i, (a, b)) in eager.iter().zip(&gated).enumerate() {
            assert_graphs_identical(a, b, &format!("delta seed {seed}, refresh {}", i + 1));
            if !a.is_empty() {
                productive += 1;
            }
        }
        assert!(
            productive >= 2,
            "delta seed {seed}: only {productive} productive refreshes"
        );
    }
}

/// The gate must also hold when composed with the coarse screening tier
/// (Phase-0 bound caching) and the edge-side reduction loop (demotions
/// rewrite the signal fingerprint and must dirty every root).
#[test]
fn rubis_incremental_matches_eager_under_screening_and_reduction() {
    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    for seed in [1, 2, 3] {
        let (eager, _) = run_pipeline(
            rubis_app(seed).sim_mut(),
            &rubis_cfg(false, true, true),
            12,
            step,
            lag,
        );
        let (gated, _) = run_pipeline(
            rubis_app(seed).sim_mut(),
            &rubis_cfg(true, true, true),
            12,
            step,
            lag,
        );
        for (i, (a, b)) in eager.iter().zip(&gated).enumerate() {
            assert_graphs_identical(
                a,
                b,
                &format!("rubis seed {seed} screened+reduced, refresh {}", i + 1),
            );
        }
    }
}

#[test]
fn delta_incremental_matches_eager_under_screening_and_reduction() {
    let step = Nanos::from_minutes(5);
    let lag = Nanos::from_secs(60);
    for seed in [7, 8, 9] {
        let (eager, _) = run_pipeline(
            delta_app(seed).sim_mut(),
            &delta_cfg(false, true, true),
            12,
            step,
            lag,
        );
        let (gated, _) = run_pipeline(
            delta_app(seed).sim_mut(),
            &delta_cfg(true, true, true),
            12,
            step,
            lag,
        );
        for (i, (a, b)) in eager.iter().zip(&gated).enumerate() {
            assert_graphs_identical(
                a,
                b,
                &format!("delta seed {seed} screened+reduced, refresh {}", i + 1),
            );
        }
    }
}

/// The gate is per-shard state; a 2-shard socket deployment must publish
/// the same bits as the eager 2-shard run. TCP exercises the kernel
/// transport path end to end (falls back to in-memory pipes if loopback
/// sockets are unavailable in the sandbox).
#[test]
fn rubis_incremental_matches_eager_over_two_shard_tcp() {
    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    let endpoint_kind = match Endpoint::Tcp.bind() {
        Ok(_) => Endpoint::Tcp,
        Err(_) => Endpoint::Mem,
    };
    for seed in [1, 2] {
        let run = |incremental: bool| {
            let mut app = rubis_app(seed);
            let endpoint = endpoint_kind.bind().expect("bind endpoint");
            run_distributed(
                app.sim_mut(),
                PipelineBuilder::new(rubis_cfg(incremental, true, true), 2),
                &endpoint,
                12,
                step,
                lag,
            )
        };
        let eager = run(false);
        let gated = run(true);
        for (i, (a, b)) in eager.iter().zip(&gated).enumerate() {
            assert_graphs_identical(
                a,
                b,
                &format!(
                    "rubis seed {seed}, {endpoint_kind:?} x2 screened+reduced, refresh {}",
                    i + 1
                ),
            );
        }
    }
}
