//! The reduction tier's two safety contracts.
//!
//! 1. **Off means off, bitwise.** With `reduction` absent the analyzer,
//!    tracer, and wire paths must be *bit-identical* to the pre-reduction
//!    pipeline: same edges, same spike lags, same strengths to the last
//!    bit, same hop delays, on RUBiS and Delta alike. The
//!    `E2EPROF_REDUCTION=off` environment override must land on that same
//!    path even when a builder explicitly enabled reduction first.
//!
//! 2. **On preserves the strong-edge set.** With reduction enabled, the
//!    published graphs carry the identical strong edges and spike lags;
//!    strengths may drift only by recompute order (≤ 1e-9, same bound the
//!    screening tier is held to) and hop delays stay within the
//!    ground-truth conformance tolerance (35%, 6 ms floor). A fanout
//!    workload with a causally dead noise tier additionally proves the
//!    loop *does* demote — the equivalence is not vacuous.

use crossbeam::channel::unbounded;
use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::netsim::{NodeId, Simulation};
use e2eprof::timeseries::{Nanos, Quanta};
use e2eprof_bench::noise_fanout_sim;
use std::collections::HashSet;

const SCREENING: ScreeningConfig = ScreeningConfig {
    decimation: 8,
    hysteresis: 0.5,
};

/// Drives the full in-process pipeline (tracer agents on every service +
/// one analyzer owning `roots`, screening against `universe`), returning
/// each refresh's published graphs and the analyzer for counter access.
#[allow(clippy::too_many_arguments)]
fn run_pipeline(
    sim: &mut Simulation,
    config: &PathmapConfig,
    roots: Vec<(NodeId, NodeId)>,
    universe: HashSet<NodeId>,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> (Vec<Vec<ServiceGraph>>, OnlineAnalyzer) {
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::with_universe(
        config.clone(),
        roots,
        universe,
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        sim.run_until(now);
        let drain = config.quanta().tick_of(now.saturating_sub(drain_lag));
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        out.push(analyzer.refresh(now));
        if let Some(hint) = analyzer.take_hints() {
            for a in &mut agents {
                a.apply_hint_state(&hint);
            }
        }
    }
    (out, analyzer)
}

/// `run_pipeline` with every topology root owned by the one analyzer —
/// the single-shard shape the RUBiS/Delta suites use.
fn run_all_roots(
    sim: &mut Simulation,
    config: &PathmapConfig,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> Vec<Vec<ServiceGraph>> {
    let roots = roots_from_topology(sim.topology());
    let universe: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
    run_pipeline(sim, config, roots, universe, steps, step, drain_lag).0
}

/// Bitwise structural key: edge set, spike `(delay, strength bits)`, hop
/// delay.
fn bit_key(graphs: &[ServiceGraph]) -> impl PartialEq + std::fmt::Debug {
    let mut v: Vec<_> = graphs
        .iter()
        .map(|g| {
            let mut edges: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.spikes
                            .iter()
                            .map(|s| (s.delay, s.strength.to_bits()))
                            .collect::<Vec<_>>(),
                        e.hop_delay,
                    )
                })
                .collect();
            edges.sort();
            (g.client_label.clone(), edges)
        })
        .collect();
    v.sort();
    v
}

fn assert_bit_identical(a: &[Vec<ServiceGraph>], b: &[Vec<ServiceGraph>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: refresh count differs");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(
            bit_key(ra),
            bit_key(rb),
            "{ctx}: refresh {} not bit-identical",
            i + 1
        );
    }
}

/// Strong-edge equivalence under reduction: identical edge sets and spike
/// lags; strengths within 1e-9 (promote recompute order); hop delays
/// within the ground-truth conformance tolerance (35% with a 6 ms floor).
fn assert_strong_edges_equivalent(plain: &[ServiceGraph], reduced: &[ServiceGraph], ctx: &str) {
    assert_eq!(plain.len(), reduced.len(), "{ctx}: graph count differs");
    let mut pa: Vec<_> = plain.iter().collect();
    let mut pb: Vec<_> = reduced.iter().collect();
    pa.sort_by_key(|g| g.client_label.clone());
    pb.sort_by_key(|g| g.client_label.clone());
    for (ga, gb) in pa.iter().zip(&pb) {
        assert_eq!(ga.client_label, gb.client_label, "{ctx}");
        let key = |g: &ServiceGraph| {
            let mut edges: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.spikes.iter().map(|s| s.delay).collect::<Vec<_>>(),
                    )
                })
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(
            key(ga),
            key(gb),
            "{ctx}, {}: reduction changed the strong-edge set\n{ga}\nvs\n{gb}",
            ga.client_label
        );
        for ea in ga.edges() {
            let eb = gb.edge(ea.from, ea.to).expect("edge sets already equal");
            for (sa, sb) in ea.spikes.iter().zip(&eb.spikes) {
                assert!(
                    (sa.strength - sb.strength).abs() < 1e-9,
                    "{ctx}: strength drift {} vs {}",
                    sa.strength,
                    sb.strength
                );
            }
            let (da, db) = (ea.hop_delay, eb.hop_delay);
            let tol = (da.as_nanos() as f64 * 0.35).max(6e6);
            let diff = (da.as_nanos() as f64 - db.as_nanos() as f64).abs();
            assert!(
                diff <= tol,
                "{ctx}: hop delay {da:?} vs {db:?} beyond tolerance"
            );
        }
    }
}

fn rubis_cfg(reduction: Option<ReductionConfig>) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .wire(WireVersion::V2)
        .screening(SCREENING);
    if let Some(red) = reduction {
        b = b.reduction(red);
    }
    b.build()
}

fn delta_cfg(reduction: Option<ReductionConfig>) -> PathmapConfig {
    // The paper's Delta analysis at a reduced horizon: τ = 1 s, ω = 20·τ,
    // W = 30 min, refresh = 5 min, T_u = 10 min.
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10))
        .wire(WireVersion::V2)
        .screening(SCREENING);
    if let Some(red) = reduction {
        b = b.reduction(red);
    }
    b.build()
}

fn build_rubis(seed: u64) -> Rubis {
    Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed,
        ..RubisConfig::default()
    })
}

fn build_delta(seed: u64) -> Delta {
    Delta::build(DeltaConfig {
        queues: 6,
        seed,
        ..DeltaConfig::default()
    })
}

/// The `E2EPROF_REDUCTION=off` override must erase an explicitly enabled
/// reduction config and land on the exact default path — proven bitwise
/// through the full pipeline, not just on the config struct.
#[test]
fn rubis_reduction_off_is_bit_identical_to_default() {
    // Build the env-overridden config once, up front: no other test in
    // this binary touches process environment, and clearing the variable
    // immediately keeps the window to a single config construction.
    std::env::set_var("E2EPROF_REDUCTION", "off");
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .wire(WireVersion::V2)
        .screening(SCREENING);
    b = b.reduction(ReductionConfig::default()).env_overrides();
    let env_off = b.build();
    std::env::remove_var("E2EPROF_REDUCTION");
    assert!(
        env_off.reduction().is_none(),
        "E2EPROF_REDUCTION=off must clear an explicitly enabled config"
    );

    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    for seed in [1, 2, 3] {
        let mut a = build_rubis(seed);
        let mut b = build_rubis(seed);
        let plain = run_all_roots(a.sim_mut(), &rubis_cfg(None), 12, step, lag);
        let off = run_all_roots(b.sim_mut(), &env_off, 12, step, lag);
        assert_bit_identical(&plain, &off, &format!("rubis seed {seed}"));
        assert!(
            plain.iter().filter(|r| !r.is_empty()).count() >= 5,
            "rubis seed {seed}: equivalence exercised on too few graphs"
        );
    }
}

/// Reduction grew wire v2 a per-series decimation-level tag; with
/// reduction off that tag is always zero and the v2 stream must stay
/// bit-identical to the untouched v1 path — the "default" the off path
/// is measured against on Delta.
#[test]
fn delta_reduction_off_is_bit_identical_to_default() {
    let step = Nanos::from_minutes(5);
    let lag = Nanos::from_secs(60);
    let v1 = PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10))
        .wire(WireVersion::V1)
        .screening(SCREENING)
        .build();
    for seed in [7, 8, 9] {
        let mut a = build_delta(seed);
        let mut b = build_delta(seed);
        let plain = run_all_roots(a.sim_mut(), &v1, 12, step, lag);
        let off = run_all_roots(b.sim_mut(), &delta_cfg(None), 12, step, lag);
        assert_bit_identical(&plain, &off, &format!("delta seed {seed}"));
        assert!(
            plain.iter().filter(|r| !r.is_empty()).count() >= 2,
            "delta seed {seed}: equivalence exercised on too few graphs"
        );
    }
}

#[test]
fn rubis_reduction_on_preserves_strong_edges() {
    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    for seed in [1, 2, 3] {
        let mut a = build_rubis(seed);
        let mut b = build_rubis(seed);
        let plain = run_all_roots(a.sim_mut(), &rubis_cfg(None), 12, step, lag);
        let reduced = run_all_roots(
            b.sim_mut(),
            &rubis_cfg(Some(ReductionConfig::default())),
            12,
            step,
            lag,
        );
        for (i, (pa, pb)) in plain.iter().zip(&reduced).enumerate() {
            assert_strong_edges_equivalent(
                pa,
                pb,
                &format!("rubis seed {seed}, refresh {}", i + 1),
            );
        }
    }
}

#[test]
fn delta_reduction_on_preserves_strong_edges() {
    let step = Nanos::from_minutes(5);
    let lag = Nanos::from_secs(60);
    for seed in [7, 8, 9] {
        let mut a = build_delta(seed);
        let mut b = build_delta(seed);
        let plain = run_all_roots(a.sim_mut(), &delta_cfg(None), 12, step, lag);
        let reduced = run_all_roots(
            b.sim_mut(),
            &delta_cfg(Some(ReductionConfig::default())),
            12,
            step,
            lag,
        );
        for (i, (pa, pb)) in plain.iter().zip(&reduced).enumerate() {
            assert_strong_edges_equivalent(
                pa,
                pb,
                &format!("delta seed {seed}, refresh {}", i + 1),
            );
        }
    }
}

/// On the noise-tier fanout workload (analyzer owning only `cli`), the
/// loop demotes the dead backends — the strong-edge equivalence above is
/// exercised on a run where reduction actually changed the wire.
#[test]
fn fanout_reduction_demotes_with_identical_strong_edges() {
    let cfg = |reduction: Option<ReductionConfig>| {
        let mut b = PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_millis(500))
            .wire(WireVersion::V2)
            .screening(SCREENING);
        if let Some(red) = reduction {
            b = b.reduction(red);
        }
        b.build()
    };
    let run = |reduction: Option<ReductionConfig>| {
        let mut sim = noise_fanout_sim(4, 20, 5, 5, 60.0);
        let mut roots = roots_from_topology(sim.topology());
        roots.sort_unstable();
        let universe: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        roots.truncate(1);
        let config = cfg(reduction);
        run_pipeline(
            &mut sim,
            &config,
            roots,
            universe,
            30,
            Nanos::from_secs(2),
            Nanos::from_secs(1),
        )
    };
    let (plain, _) = run(None);
    let (reduced, analyzer) = run(Some(ReductionConfig::default()));
    let mut productive = 0;
    for (i, (pa, pb)) in plain.iter().zip(&reduced).enumerate() {
        assert_strong_edges_equivalent(pa, pb, &format!("fanout refresh {}", i + 1));
        if !pa.is_empty() {
            productive += 1;
        }
    }
    assert!(productive >= 5, "only {productive} productive refreshes");
    let stats = analyzer.reduction_stats().expect("reduction enabled");
    assert!(
        stats.demotions >= 4,
        "the dead backend tier never demoted: {stats:?}"
    );
    assert!(stats.reduced_now > 0, "stats: {stats:?}");
}
