//! The network transport is a delivery mechanism, not a semantic change:
//! running the online pipeline over loopback sockets — with the analyzer
//! tier sharded 1, 2, or 4 ways and the per-shard graphs merged in shard
//! order — must publish graphs **identical** to the in-process channel
//! run at every refresh, on both evaluation applications.
//!
//! The in-memory transport (deterministic pipes, same framing and broker
//! code) runs unconditionally. The kernel transports run when selected:
//! `E2EPROF_TRANSPORT=tcp` or `E2EPROF_TRANSPORT=unix` — the CI matrix
//! sets one per job, so every transport gets the full seed × shard grid
//! without tripling the default suite's wall time.

use crossbeam::channel::unbounded;
use e2eprof::apps::delta::{Delta, DeltaConfig};
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::prelude::*;
use e2eprof::net::pipeline::{run_distributed, Endpoint, PipelineBuilder};
use e2eprof::netsim::{NodeId, Simulation};
use e2eprof::timeseries::{Nanos, Quanta};
use std::collections::HashSet;

/// The in-process anchor: same loop as the wire-equivalence suite.
fn run_inproc(
    sim: &mut Simulation,
    config: &PathmapConfig,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> Vec<Vec<ServiceGraph>> {
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        sim.run_until(now);
        let drain = config.quanta().tick_of(now.saturating_sub(drain_lag));
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        out.push(analyzer.refresh(now));
    }
    out
}

/// Structural equality: edge sets, spike lags, hop delays, and bottleneck
/// flags exact; spike strengths within 1e-9.
fn assert_graphs_equivalent(a: &[ServiceGraph], b: &[ServiceGraph], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: graph count differs");
    for (ga, gb) in a.iter().zip(b) {
        assert_eq!(ga.client_label, gb.client_label, "{ctx}");
        let key = |g: &ServiceGraph| {
            let mut edges: Vec<_> = g
                .edges()
                .iter()
                .map(|e| {
                    (
                        (e.from, e.to),
                        e.spikes.iter().map(|s| s.delay).collect::<Vec<_>>(),
                        e.hop_delay,
                    )
                })
                .collect();
            edges.sort();
            edges
        };
        assert_eq!(
            key(ga),
            key(gb),
            "{ctx}, {}: transport changed the graph\n{ga}\nvs\n{gb}",
            ga.client_label
        );
        let flags = |g: &ServiceGraph| {
            let mut v: Vec<_> = g
                .vertices()
                .iter()
                .map(|v| (v.label.clone(), v.bottleneck))
                .collect();
            v.sort();
            v
        };
        assert_eq!(flags(ga), flags(gb), "{ctx}: bottleneck flags differ");
        for ea in ga.edges() {
            let eb = gb.edge(ea.from, ea.to).expect("edge sets already equal");
            for (sa, sb) in ea.spikes.iter().zip(&eb.spikes) {
                assert!(
                    (sa.strength - sb.strength).abs() < 1e-9,
                    "{ctx}: strength drift {} vs {}",
                    sa.strength,
                    sb.strength
                );
            }
        }
    }
}

/// The transports this process should exercise. In-memory pipes always;
/// a kernel transport when `E2EPROF_TRANSPORT` selects it.
fn transports_under_test() -> Vec<Endpoint> {
    match std::env::var("E2EPROF_TRANSPORT").as_deref() {
        Ok("tcp") => vec![Endpoint::Tcp],
        Ok("unix") => vec![Endpoint::Unix],
        _ => vec![Endpoint::Mem],
    }
}

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];

fn rubis_cfg() -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .wire(WireVersion::V2)
        .build()
}

#[test]
fn rubis_distributed_matches_in_process_at_every_shard_count() {
    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    for seed in [1, 2, 3] {
        let build = || {
            Rubis::build(RubisConfig {
                dispatch: Dispatch::Affinity,
                seed,
                ..RubisConfig::default()
            })
        };
        let mut anchor_app = build();
        let anchor = run_inproc(anchor_app.sim_mut(), &rubis_cfg(), 12, step, lag);
        let productive = anchor.iter().filter(|g| !g.is_empty()).count();
        assert!(
            productive >= 5,
            "rubis seed {seed}: only {productive} productive refreshes"
        );
        for transport in transports_under_test() {
            for shards in SHARD_COUNTS {
                let mut app = build();
                let endpoint = transport.bind().expect("bind endpoint");
                let dist = run_distributed(
                    app.sim_mut(),
                    PipelineBuilder::new(rubis_cfg(), shards),
                    &endpoint,
                    12,
                    step,
                    lag,
                );
                for (i, (a, b)) in anchor.iter().zip(&dist).enumerate() {
                    assert_graphs_equivalent(
                        a,
                        b,
                        &format!(
                            "rubis seed {seed}, {transport:?} x{shards}, refresh {}",
                            i + 1
                        ),
                    );
                }
            }
        }
    }
}

fn delta_cfg() -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(30))
        .refresh(Nanos::from_minutes(5))
        .max_delay(Nanos::from_minutes(10))
        .wire(WireVersion::V2)
        .build()
}

#[test]
fn delta_distributed_matches_in_process_at_every_shard_count() {
    let step = Nanos::from_minutes(5);
    let lag = Nanos::from_secs(60);
    for seed in [7, 8, 9] {
        let build = || {
            Delta::build(DeltaConfig {
                queues: 6,
                seed,
                ..DeltaConfig::default()
            })
        };
        let mut anchor_app = build();
        let anchor = run_inproc(anchor_app.sim_mut(), &delta_cfg(), 12, step, lag);
        let productive = anchor.iter().filter(|g| !g.is_empty()).count();
        assert!(
            productive >= 2,
            "delta seed {seed}: only {productive} productive refreshes"
        );
        for transport in transports_under_test() {
            for shards in SHARD_COUNTS {
                let mut app = build();
                let endpoint = transport.bind().expect("bind endpoint");
                let dist = run_distributed(
                    app.sim_mut(),
                    PipelineBuilder::new(delta_cfg(), shards),
                    &endpoint,
                    12,
                    step,
                    lag,
                );
                for (i, (a, b)) in anchor.iter().zip(&dist).enumerate() {
                    assert_graphs_equivalent(
                        a,
                        b,
                        &format!(
                            "delta seed {seed}, {transport:?} x{shards}, refresh {}",
                            i + 1
                        ),
                    );
                }
            }
        }
    }
}

/// Sharding must also hold under wire v1 (one frame per edge instead of
/// one batch per flush) — the sequence/dedup machinery is per frame, so
/// the per-edge stream is the harder case for exactly-once delivery.
#[test]
fn rubis_v1_wire_distributed_matches_in_process() {
    let cfg = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .wire(WireVersion::V1)
        .build();
    let build = || {
        Rubis::build(RubisConfig {
            dispatch: Dispatch::Affinity,
            seed: 1,
            ..RubisConfig::default()
        })
    };
    let step = Nanos::from_secs(5);
    let lag = Nanos::from_secs(1);
    let mut anchor_app = build();
    let anchor = run_inproc(anchor_app.sim_mut(), &cfg, 12, step, lag);
    for transport in transports_under_test() {
        let mut app = build();
        let endpoint = transport.bind().expect("bind endpoint");
        let dist = run_distributed(
            app.sim_mut(),
            PipelineBuilder::new(cfg.clone(), 2),
            &endpoint,
            12,
            step,
            lag,
        );
        for (i, (a, b)) in anchor.iter().zip(&dist).enumerate() {
            assert_graphs_equivalent(
                a,
                b,
                &format!("rubis v1 wire, {transport:?} x2, refresh {}", i + 1),
            );
        }
    }
}
