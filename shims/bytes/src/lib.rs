//! Offline stand-in for the `bytes` crate.
//!
//! Provides the subset the wire codec uses: [`BytesMut`] with big-endian
//! `put_*` writers, the cheaply-clonable frozen [`Bytes`], and a [`Buf`]
//! reader implementation for `&[u8]` whose `get_*` accessors advance the
//! slice.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer — a shared allocation
/// plus a window into it, so sub-slices (`slice`) never copy.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::from_arc(Arc::from(&[][..]))
    }

    /// Copies `data` into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from_arc(Arc::from(data))
    }

    /// Wraps a shared allocation without copying; the view covers all of
    /// it. (Stands in for the real crate's `from_owner`.)
    pub fn from_arc(data: Arc<[u8]>) -> Self {
        let end = data.len();
        Bytes {
            data,
            start: 0,
            end,
        }
    }

    /// A zero-copy sub-view of this buffer: shares the allocation,
    /// narrows the window. Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Self {
        assert!(
            range.start <= range.end && self.start + range.end <= self.end,
            "slice out of bounds"
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// Copies the contents into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes::from_arc(Arc::from(v.into_boxed_slice()))
    }
}

/// A growable byte buffer with big-endian writers.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut(Vec::new())
    }

    /// Creates an empty buffer with `cap` bytes preallocated.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut(Vec::with_capacity(cap))
    }

    /// The buffer length in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Freezes the buffer into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.0)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Big-endian buffer writers.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Big-endian buffer readers over a consumable cursor.
///
/// # Panics
///
/// The `get_*`/`copy_to_slice` methods panic if fewer than the required
/// bytes remain; check [`Buf::remaining`] first, as the wire decoder does.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out, advancing the cursor.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Reads a big-endian `f64`.
    fn get_f64(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_read_round_trip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"E2EP");
        buf.put_u8(1);
        buf.put_u64(0xdead_beef_cafe_f00d);
        buf.put_u32(7);
        buf.put_f64(1.5);
        let frozen = buf.freeze();
        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 4 + 1 + 8 + 4 + 8);
        let mut magic = [0u8; 4];
        cursor.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"E2EP");
        assert_eq!(cursor.get_u8(), 1);
        assert_eq!(cursor.get_u64(), 0xdead_beef_cafe_f00d);
        assert_eq!(cursor.get_u32(), 7);
        assert_eq!(cursor.get_f64(), 1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn big_endian_layout() {
        let mut buf = BytesMut::new();
        buf.put_u32(0x0102_0304);
        assert_eq!(&buf[..], &[1, 2, 3, 4]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut cursor: &[u8] = &[1, 2];
        let _ = cursor.get_u32();
    }

    #[test]
    fn bytes_clone_is_shallow() {
        let b = Bytes::copy_from_slice(&[1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
    }
}
