//! Offline stand-in for `serde_derive`.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations (no runtime serialization is performed anywhere), so the
//! derives expand to nothing. If a future change starts serializing
//! values, replace this shim with the real crate.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
