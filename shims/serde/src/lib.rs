//! Offline stand-in for `serde`.
//!
//! The workspace annotates types with `#[derive(Serialize, Deserialize)]`
//! but never serializes at runtime, so the traits are inert markers and
//! the derives (re-exported from the sibling `serde_derive` shim) expand
//! to nothing.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}
