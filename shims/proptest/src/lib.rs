//! Offline stand-in for `proptest`.
//!
//! Implements the macro and strategy surface this workspace's property
//! tests use — `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `prop_oneof!`, `Just`, `prop_map`, `prop::collection::vec`, `any::<T>()`
//! and range strategies — over a deterministic per-test RNG. No shrinking
//! is performed: on failure the generated case is reported verbatim, which
//! is reproducible because the RNG seed derives from the test's name.

use std::ops::{Range, RangeInclusive};

/// Test-case control flow used by the `proptest!` harness.
pub mod test_runner {
    /// Outcome of one generated case's body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the case; generate another.
        Reject,
        /// A `prop_assert!` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic xoshiro256++ RNG for case generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seeds the RNG from an arbitrary string (the test's full path).
        pub fn from_name(name: &str) -> Self {
            // FNV-1a, then SplitMix64 to fill the state.
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
            let mut s = [0u64; 4];
            for slot in &mut s {
                h = h.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = h;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                *slot = z ^ (z >> 31);
            }
            if s == [0; 4] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Next raw 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `u64` in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "empty sample space");
            self.next_u64() % bound
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of accepted cases to run.
        pub cases: u32,
        /// Give up after this many consecutive `prop_assume!` rejections.
        pub max_global_rejects: u32,
    }

    impl Default for Config {
        fn default() -> Self {
            Config {
                cases: 256,
                max_global_rejects: 65_536,
            }
        }
    }

    impl Config {
        /// A configuration running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Config {
                cases,
                ..Config::default()
            }
        }
    }
}

pub use test_runner::Config as ProptestConfig;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates values from `self`, regenerating through a dependent
    /// strategy produced by `f`.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(move |rng| self.generate(rng)))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn Fn(&mut test_runner::TestRng) -> T>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        (self.0)(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut test_runner::TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut test_runner::TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut test_runner::TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

impl_int_strategies!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_strategies {
    ($($t:ty => $u:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as $u).wrapping_sub(self.start as $u) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_strategies!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

macro_rules! impl_float_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut test_runner::TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

impl_float_strategies!(f32, f64);

macro_rules! impl_tuple_strategies {
    ($(($($s:ident),+)),*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut test_runner::TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategies!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Types with a canonical "generate anything" strategy ([`any`]).
pub trait Arbitrary: Sized {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut test_runner::TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut test_runner::TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut test_runner::TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut test_runner::TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy for an [`Arbitrary`] type.
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The "anything of type `T`" strategy.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// One weighted `prop_oneof!` arm: `(weight, boxed generator)`.
pub type UnionArm<T> = (u32, Box<dyn Fn(&mut test_runner::TestRng) -> T>);

/// Weighted union of strategies producing a common value type
/// (the engine behind `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<UnionArm<T>>,
}

impl<T> Union<T> {
    /// Builds a union from `(weight, generator)` arms.
    pub fn new(arms: Vec<UnionArm<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

/// Boxes one `prop_oneof!` arm, pinning the union's value type to the
/// strategy's `Value` (an `as Box<dyn Fn(..) -> _>` cast leaves the
/// return type an unconstrained inference variable).
#[doc(hidden)]
pub fn union_arm<S>(weight: u32, s: S) -> UnionArm<S::Value>
where
    S: Strategy + 'static,
{
    (weight, Box::new(move |rng| s.generate(rng)))
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut test_runner::TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| *w as u64).sum();
        let mut pick = rng.below(total.max(1));
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm(rng);
            }
            pick -= *w as u64;
        }
        (self.arms.last().expect("non-empty").1)(rng)
    }
}

/// Mirrors proptest's `prop::` namespace.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{test_runner::TestRng, Strategy};
        use std::ops::{Range, RangeInclusive};

        /// A size specification for generated collections.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize, // inclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end - 1,
                }
            }
        }

        impl From<RangeInclusive<usize>> for SizeRange {
            fn from(r: RangeInclusive<usize>) -> Self {
                SizeRange {
                    lo: *r.start(),
                    hi: *r.end(),
                }
            }
        }

        /// Strategy producing `Vec`s of `element` with a length drawn from
        /// `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.below(span + 1) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// `prop::collection::vec(element, size)`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Just, ProptestConfig, Strategy,
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Discards the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Weighted (or unweighted) choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::union_arm($weight as u32, $strategy)),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $($crate::union_arm(1u32, $strategy)),+
        ])
    };
}

/// Declares property tests: each `#[test] fn name(bindings) { body }` runs
/// the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@harness ($config); $($rest)*);
    };
    // Attributes (including the conventional `#[test]`) are carried
    // through verbatim: a literal `#[test]` in the matcher would be
    // ambiguous with the attribute repetition.
    (@harness ($config:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_runner::TestRng::from_name(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut rejected: u32 = 0;
            while accepted < config.cases {
                $(let $pat = $crate::Strategy::generate(&($strategy), &mut rng);)+
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    Ok(()) => accepted += 1,
                    Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                        if rejected > config.max_global_rejects {
                            panic!(
                                "{}: too many prop_assume! rejections ({} accepted)",
                                stringify!($name), accepted
                            );
                        }
                    }
                    Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{} (case {}): {}", stringify!($name), accepted, msg);
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@harness ($crate::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vec_strategies_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..200 {
            let v = Strategy::generate(&(3u64..10), &mut rng);
            assert!((3..10).contains(&v));
            let xs = Strategy::generate(&prop::collection::vec(0.0f64..1.0, 2..5), &mut rng);
            assert!(xs.len() >= 2 && xs.len() < 5);
            assert!(xs.iter().all(|x| (0.0..1.0).contains(x)));
        }
    }

    #[test]
    fn oneof_respects_zero_probability_arm_weights() {
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let s = prop_oneof![
            1 => Just(1u8),
            3 => Just(2u8),
        ];
        let mut ones = 0;
        for _ in 0..1000 {
            match Strategy::generate(&s, &mut rng) {
                1 => ones += 1,
                2 => {}
                other => panic!("impossible arm {other}"),
            }
        }
        assert!((150..350).contains(&ones), "ones = {ones}");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn harness_runs_and_asserts(x in 0u64..100, ys in prop::collection::vec(0u32..5, 0..8)) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(ys.len(), ys.iter().filter(|&&y| y < 5).count());
        }
    }

    proptest! {
        #[test]
        fn mapped_and_tupled((a, b) in (0u64..10, (1u32..4).prop_map(|v| v * 2))) {
            prop_assert!(a < 10);
            prop_assert!(b % 2 == 0 && (2..=6).contains(&b));
        }
    }
}
