//! Offline stand-in for `parking_lot`.
//!
//! Wraps `std::sync` locks behind parking_lot's panic-free guard-returning
//! API (`lock()`/`read()`/`write()` return guards directly). Poisoning is
//! transparently ignored, matching parking_lot's no-poisoning semantics.

use std::fmt;
use std::sync::{self, PoisonError};

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Mutual exclusion lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

/// Reader-writer lock with parking_lot's non-poisoning interface.
#[derive(Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Mutable access without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_shared_and_exclusive() {
        let l = Arc::new(RwLock::new(vec![1, 2]));
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn rwlock_across_threads() {
        let l = Arc::new(RwLock::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let l = Arc::clone(&l);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*l.read(), 400);
    }
}
