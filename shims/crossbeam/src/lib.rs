//! Offline stand-in for `crossbeam`.
//!
//! Only the `channel` module is provided (the workspace's sole crossbeam
//! use); it wraps `std::sync::mpsc` behind crossbeam's naming. Scoped
//! threads come from `std::thread::scope` elsewhere in the workspace.

pub mod channel {
    use std::fmt;
    use std::sync::mpsc;

    pub use std::sync::mpsc::{RecvError, TryRecvError};

    /// Error returned by [`Sender::send`] when the receiver is gone.
    #[derive(PartialEq, Eq, Clone, Copy)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    impl<T> std::error::Error for SendError<T> {}

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(mpsc::Sender<T>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender(self.0.clone())
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends a message, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.0.send(msg).map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(mpsc::Receiver<T>);

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or all senders
        /// are dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.0.recv()
        }

        /// Receives a message without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            self.0.try_recv()
        }

        /// Iterates over currently-queued messages without blocking.
        pub fn try_iter(&self) -> mpsc::TryIter<'_, T> {
            self.0.try_iter()
        }

        /// Iterates, blocking per message, until all senders are dropped.
        pub fn iter(&self) -> mpsc::Iter<'_, T> {
            self.0.iter()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender(tx), Receiver(rx))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn send_receive_order() {
            let (tx, rx) = unbounded();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            let got: Vec<i32> = rx.try_iter().collect();
            assert_eq!(got, vec![0, 1, 2, 3, 4]);
            assert!(matches!(rx.try_recv(), Err(TryRecvError::Empty)));
        }

        #[test]
        fn dropped_receiver_fails_send() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }

        #[test]
        fn cloned_senders_feed_one_receiver() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(1).unwrap())
                .join()
                .unwrap();
            tx.send(2).unwrap();
            drop(tx);
            let mut got: Vec<i32> = rx.iter().collect();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2]);
        }
    }
}
