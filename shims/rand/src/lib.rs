//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors
//! the small slice of rand 0.8's API it actually uses: [`Rng`] with
//! `gen`/`gen_range`/`gen_bool`, [`SeedableRng::seed_from_u64`], and
//! [`rngs::StdRng`]. The generator is xoshiro256** seeded via SplitMix64 —
//! high-quality and fully deterministic, which is all the simulator needs
//! (it never claims cryptographic strength).

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Types that can be drawn uniformly from an RNG (the shim's analogue of
/// sampling from rand's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u8 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges a uniform value can be drawn from.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as $u).wrapping_sub(self.start as $u);
                self.start.wrapping_add((rng.next_u64() % span as u64) as $t)
            }
        }
    )*};
}

impl_signed_range!(i32 => u32, i64 => u64);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::draw(rng);
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates the RNG from a `u64`, expanded via SplitMix64 (matches
    /// rand's documented behaviour of seeding the full state from the
    /// integer deterministically).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (the shim's `StdRng`).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(b);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9e3779b97f4a7c15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.gen::<u64>() == b.gen::<u64>()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_interval_bounds_and_spread() {
        let mut r = StdRng::seed_from_u64(7);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = r.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1_000 {
            let v = r.gen_range(10u64..=20);
            assert!((10..=20).contains(&v));
            let w = r.gen_range(5usize..8);
            assert!((5..8).contains(&w));
            let f = r.gen_range(1.5f64..2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }
}
