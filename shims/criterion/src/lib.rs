//! Offline stand-in for `criterion`.
//!
//! Implements the group/bench/iter API surface the bench crate uses and
//! measures with plain `Instant` timing: per benchmark it warms up
//! briefly, then takes `sample_size` samples (each a batch of iterations
//! sized to ~5 ms) and reports the median, mean, and min per-iteration
//! time. No statistical regression analysis — just honest wall-clock
//! numbers suitable for comparing configurations in one run.
//!
//! Set `E2EPROF_BENCH_FAST=1` to shrink warmup and sample counts (used by
//! CI smoke runs).

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation (recorded, displayed per benchmark).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark's identifier within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `function_name/parameter` id.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// How much setup output `iter_batched` keeps alive per batch. The shim
/// times one routine call per setup call regardless, so the variants
/// only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state; setup dominates memory.
    LargeInput,
    /// One setup per measured iteration.
    PerIteration,
}

/// Passed to benchmark closures; runs and times the measured routine.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
    warm_up: Duration,
}

impl Bencher<'_> {
    /// Measures `routine`, collecting per-iteration timings.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
        // Size each sample batch to roughly 5 ms, at least one iteration.
        let batch = ((0.005 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    /// Measures `routine` over fresh input from `setup`, timing only the
    /// routine. Unlike upstream criterion the shim always pairs one setup
    /// call with one measured call.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm_start = Instant::now();
        let mut warm = Duration::ZERO;
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up {
            let input = setup();
            let t0 = Instant::now();
            black_box(routine(input));
            warm += t0.elapsed();
            warm_iters += 1;
        }
        let per_iter = warm.as_secs_f64() / warm_iters.max(1) as f64;
        let batch = ((0.005 / per_iter.max(1e-9)).ceil() as u64).clamp(1, 1_000_000);
        for _ in 0..self.sample_count {
            let mut elapsed = Duration::ZERO;
            for _ in 0..batch {
                let input = setup();
                let t0 = Instant::now();
                black_box(routine(input));
                elapsed += t0.elapsed();
            }
            self.samples.push(elapsed / batch as u32);
        }
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the measurement time budget (accepted for API compatibility).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
            warm_up: self.criterion.warm_up,
        };
        f(&mut bencher);
        self.report(&id.to_string(), &samples);
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>, &I),
    {
        let mut samples = Vec::with_capacity(self.sample_size);
        let mut bencher = Bencher {
            samples: &mut samples,
            sample_count: self.sample_size,
            warm_up: self.criterion.warm_up,
        };
        f(&mut bencher, input);
        self.report(&id.to_string(), &samples);
        self
    }

    fn report(&self, id: &str, samples: &[Duration]) {
        if samples.is_empty() {
            println!("{}/{}: no samples", self.name, id);
            return;
        }
        let mut sorted: Vec<Duration> = samples.to_vec();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let min = sorted[0];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let tp = match self.throughput {
            Some(Throughput::Elements(n)) => {
                let rate = n as f64 / median.as_secs_f64();
                format!("  ({rate:.0} elem/s)")
            }
            Some(Throughput::Bytes(n)) => {
                let rate = n as f64 / median.as_secs_f64() / 1e6;
                format!("  ({rate:.1} MB/s)")
            }
            None => String::new(),
        };
        println!(
            "{}/{}: median {}  mean {}  min {}  [{} samples]{}",
            self.name,
            id,
            fmt_duration(median),
            fmt_duration(mean),
            fmt_duration(min),
            sorted.len(),
            tp,
        );
    }

    /// Ends the group (prints a separator).
    pub fn finish(&mut self) {
        println!();
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// The benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let fast = std::env::var_os("E2EPROF_BENCH_FAST").is_some();
        Criterion {
            warm_up: if fast {
                Duration::from_millis(20)
            } else {
                Duration::from_millis(300)
            },
            default_sample_size: if fast { 5 } else { 30 },
        }
    }
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name} ==");
        BenchmarkGroup {
            name,
            sample_size: self.default_sample_size,
            throughput: None,
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher<'_>),
    {
        let id = id.to_string();
        self.benchmark_group(id.clone()).bench_function(id, f);
        self
    }
}

/// Declares a benchmark group function calling each target.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $($target(c);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::default();
            $($group(&mut c);)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        group.throughput(Throughput::Elements(64));
        group.bench_function("sum", |b| {
            b.iter(|| (0..64u64).sum::<u64>());
        });
        group.bench_with_input(BenchmarkId::new("scaled", 2), &2u64, |b, &k| {
            b.iter(|| (0..64u64).map(|v| v * k).sum::<u64>());
        });
        group.finish();
    }

    #[test]
    fn harness_runs_and_samples() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            default_sample_size: 3,
        };
        sample_bench(&mut c);
    }

    #[test]
    fn id_formats() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("rle").to_string(), "rle");
    }
}
