//! Analyzing an external application-level transaction log — the way the
//! paper's Delta study consumed access logs instead of packet captures.
//!
//! Generates a synthetic CSV log (`timestamp_ns,src,dst`), then runs the
//! full pathmap pipeline on it: ingestion, root inference, discovery.
//!
//! ```sh
//! cargo run --release --example analyze_log
//! ```

use e2eprof::core::ingest::TraceIngest;
use e2eprof::core::prelude::*;
use e2eprof::timeseries::Nanos;
use std::fmt::Write as _;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A log some other system produced: a ticketing front end fanning
    //    out to an inventory service and a payment service, which shares
    //    a settlement backend. Irregular inter-arrival times (hashed),
    //    fixed processing delays.
    let mut log = String::from("# timestamp_ns,src,dst\n");
    let ms = |x: u64| x * 1_000_000;
    // Two *independent* arrival streams (separate hash chains).
    let mut t1: u64 = 0;
    let mut h1: u64 = 99;
    for _ in 0..2000 {
        h1 = h1
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        t1 += 15_000_000 + h1 % 60_000_000; // 15–75 ms gaps
        writeln!(log, "{t1},booking-app,ticketing")?;
        writeln!(log, "{},ticketing,inventory", t1 + ms(4))?;
        writeln!(log, "{},inventory,ticketing", t1 + ms(12))?;
    }
    let mut t2: u64 = 0;
    let mut h2: u64 = 7_777;
    for _ in 0..2000 {
        h2 = h2
            .wrapping_mul(2862933555777941757)
            .wrapping_add(3037000493);
        t2 += 15_000_000 + h2 % 60_000_000;
        writeln!(log, "{t2},payments-app,ticketing")?;
        writeln!(log, "{},ticketing,payment", t2 + ms(5))?;
        writeln!(log, "{},payment,settlement", t2 + ms(15))?;
        writeln!(log, "{},settlement,payment", t2 + ms(40))?;
        writeln!(log, "{},payment,ticketing", t2 + ms(45))?;
    }

    // 2. Ingest and analyze.
    let mut ingest = TraceIngest::new();
    let records = ingest.read_csv(log.as_bytes())?;
    println!(
        "ingested {records} records, {} components, horizon {:.1}s",
        ingest.num_components(),
        ingest.horizon().as_secs_f64()
    );
    let roots = ingest.infer_roots();
    let labels = ingest.labels();
    println!(
        "inferred clients: {:?}\n",
        roots
            .iter()
            .map(|&(c, _)| labels.label(c))
            .collect::<Vec<_>>()
    );

    let cfg = PathmapConfig::builder()
        .window(Nanos::from_secs(30))
        .refresh(Nanos::from_secs(10))
        .max_delay(Nanos::from_secs(1))
        .build();
    let signals = ingest.build_signals(&cfg, ingest.horizon());
    let graphs = Pathmap::new(cfg).discover(&signals, &roots, &labels);
    for g in &graphs {
        println!("{g}");
    }
    println!("(the two request classes take disjoint branches below the");
    println!(" shared ticketing front end; delays match the log's timing)");
    Ok(())
}
