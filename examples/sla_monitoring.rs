//! Continuous SLA monitoring on the live pipeline — the paper's
//! motivating scenario, automated end to end: tracer agents stream
//! signals, the analyzer republishes service graphs every ΔW, an SLA
//! monitor flags violations *and names the suspect component*, and graph
//! diffs show exactly what changed between refreshes.
//!
//! A fault is injected at EJB1 three minutes in; watch the violation
//! appear with `EJB1` attributed, then study the per-edge diff.
//!
//! ```sh
//! cargo run --release --example sla_monitoring
//! ```

use crossbeam::channel::unbounded;
use e2eprof::apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof::core::diff::diff;
use e2eprof::core::prelude::*;
use e2eprof::core::sla::{SlaMonitor, SlaTarget};
use e2eprof::netsim::perturb::DelaySchedule;
use e2eprof::netsim::NodeId;
use e2eprof::timeseries::{Nanos, Quanta, Tick};
use std::collections::HashSet;

fn main() {
    // EJB1 degrades by 60 ms from minute 3 onward.
    let fault = DelaySchedule::Piecewise(vec![(Nanos::from_minutes(3), Nanos::from_millis(60))]);
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed: 17,
        ejb1_perturb: fault,
        ..RubisConfig::default()
    });
    let config = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(30))
        .refresh(Nanos::from_secs(15))
        .max_delay(Nanos::from_secs(2))
        .build();

    // Wire up tracers and the analyzer.
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = rubis.sim().topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = rubis
        .sim()
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config.clone(),
        roots_from_topology(rubis.sim().topology()),
        NodeLabels::from_topology(rubis.sim().topology()),
        rx,
    );

    // The bidding class has a 90 ms end-to-end SLA.
    let n = rubis.nodes();
    let mut monitor = SlaMonitor::new(vec![SlaTarget {
        client: n.c1,
        max_latency: Nanos::from_millis(90),
    }]);

    println!("bidding SLA: 90 ms end-to-end; fault (+60 ms at EJB1) from minute 3\n");
    let mut previous: Option<ServiceGraph> = None;
    for step in 1..=24u64 {
        let now = Nanos::from_secs(step * 15);
        rubis.sim_mut().run_until(now);
        let drain = Tick::new(step * 15_000 - 1_000);
        for a in &mut agents {
            a.poll(rubis.sim().captures(), drain);
        }
        analyzer.ingest();
        let graphs = analyzer.refresh(now);
        if graphs.is_empty() {
            continue;
        }
        let bid = graphs
            .iter()
            .find(|g| g.client == n.c1)
            .expect("bidding graph")
            .clone();

        let estimate = bid
            .end_to_end_delay()
            .map(|d| format!("{:.0}ms", d.as_millis_f64()))
            .unwrap_or_else(|| "n/a".into());
        let violations = monitor.check(now, &graphs);
        let status = if violations.is_empty() {
            "ok"
        } else {
            "SLA VIOLATION"
        };
        print!(
            "t={:>4.0}s  e2e={estimate:>6}  {status:<14}",
            now.as_secs_f64()
        );
        for v in &violations {
            print!(" suspect: {}", v.suspect.as_deref().unwrap_or("(unknown)"));
        }
        // What changed since the previous refresh?
        if let Some(prev) = &previous {
            let d = diff(prev, &bid, Nanos::from_millis(20));
            for s in &d.shifted {
                print!(
                    "  [{} -> {}: {:.0}ms -> {:.0}ms]",
                    bid.label_of(s.from),
                    bid.label_of(s.to),
                    s.before.as_millis_f64(),
                    s.after.as_millis_f64()
                );
            }
        }
        println!();
        previous = Some(bid);
    }

    println!("\nviolations recorded: {}", monitor.history().len());
    if let Some(g) = previous {
        println!("\nfinal bidding request waterfall:\n{}", g.to_waterfall(48));
    }
}
