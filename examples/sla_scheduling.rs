//! Table 1: automated path selection. Both EJB servers suffer random
//! 0–100 ms delays that change every minute. Round-robin dispatch eats the
//! average; the E2EProf-driven scheduler routes deadline-sensitive bidding
//! requests onto the currently faster branch (penalizing comments), using
//! nothing but live pathmap branch latencies.
//!
//! ```sh
//! cargo run --release --example sla_scheduling
//! ```

use e2eprof::apps::experiments::{table1, Table1Policy};
use e2eprof::timeseries::Nanos;

fn main() {
    let duration = Nanos::from_minutes(10);
    println!("measuring 10 minutes per policy (1 minute warm-up)...\n");
    println!("{:<34} {:>10} {:>10}", "policy", "bidding", "comment");
    for policy in [
        Table1Policy::RoundRobinBaseline,
        Table1Policy::RoundRobinPerturbed,
        Table1Policy::E2EProfPerturbed,
    ] {
        let row = table1(policy, 42, duration);
        let label = match policy {
            Table1Policy::RoundRobinBaseline => "Round-Robin (no perturbation)",
            Table1Policy::RoundRobinPerturbed => "Round-Robin (with perturbation)",
            Table1Policy::E2EProfPerturbed => "E2EProf (with perturbation)",
        };
        println!(
            "{:<34} {:>8.0}ms {:>8.0}ms",
            label,
            row.bidding.as_millis_f64(),
            row.comment.as_millis_f64()
        );
    }
    println!("\npaper's Table 1 for comparison:   bidding   comment");
    println!("  Round-Robin (no perturbation)      72ms      64ms");
    println!("  Round-Robin (with perturbation)   121ms     109ms");
    println!("  E2EProf (with perturbation)        97ms     139ms");
}
