//! Section 4.3: the Delta Air Lines Revenue Pipeline. ~40 K events/hour
//! arrive in 25 front-end queues and flow through hub → parser →
//! validator → revenue DB. Demonstrates:
//!
//! * service-path discovery from application-level event logs at τ = 1 s
//!   (paths correct, sub-second delays invisible — the paper's documented
//!   accuracy limitation at this resolution);
//! * the 4 AM paper-ticket batch flooding the hub queue (steady-state
//!   violation);
//! * diagnosing the slow-database connection by service-path delay
//!   decomposition.
//!
//! ```sh
//! cargo run --release --example delta_pipeline
//! ```

use e2eprof::apps::delta::DeltaConfig;
use e2eprof::apps::experiments::{delta_analysis, delta_paper_config, diagnose_delta};
use e2eprof::timeseries::Nanos;

fn main() {
    // A scaled run (8 queues, same total event rate) keeps this example
    // under a minute; pass --full for the 25-queue configuration.
    let full = std::env::args().any(|a| a == "--full");
    let queues = if full { 25 } else { 8 };
    let run_for = Nanos::from_minutes(135); // W = 2 h plus margin

    println!("=== path discovery ({queues} queues, {} min) ===\n", 135);
    let (delta, graphs) = delta_analysis(
        DeltaConfig {
            queues,
            ..DeltaConfig::default()
        },
        &delta_paper_config(),
        run_for,
    );
    let complete = graphs
        .iter()
        .filter(|g| {
            g.has_edge_between("hub", "parser")
                && g.has_edge_between("parser", "validator")
                && g.has_edge_between("validator", "revenue_db")
        })
        .count();
    println!(
        "full pipeline path recovered for {complete}/{} bursty feeds",
        queues - 1
    );
    if let Some(g) = graphs.iter().find(|g| g.client_label == "feed_01") {
        println!("\n{g}");
    }
    println!("(per-hop delays read 0 ms: at τ = 1 s, sub-second processing is");
    println!(" invisible — exactly the accuracy limitation the paper reports)\n");
    drop(delta);

    println!("=== the 4 AM batch surge ===\n");
    let mut surged = e2eprof::apps::delta::Delta::build(DeltaConfig {
        queues,
        batch_at: Some(Nanos::from_minutes(10)),
        batch_size: 4_000,
        ..DeltaConfig::default()
    });
    surged.sim_mut().run_until(Nanos::from_minutes(20));
    let hub = surged.nodes().hub;
    println!(
        "hub queue high-water mark after the batch: {} (paper: ~4000)\n",
        surged.sim().max_queue_len(hub)
    );

    println!("=== slow-database diagnosis ===\n");
    for slow in [false, true] {
        let (_, graphs) = delta_analysis(
            DeltaConfig {
                queues,
                slow_db: slow,
                ..DeltaConfig::default()
            },
            &delta_paper_config(),
            run_for,
        );
        let d = diagnose_delta(&graphs);
        println!(
            "slow_db={slow}: e2e {:.1}s, deepest forward arrival {:.1}s, tail gap {:.1}s -> suspect {:?}",
            d.e2e.as_secs_f64(),
            d.last_forward.as_secs_f64(),
            d.tail_gap.as_secs_f64(),
            d.suspect
        );
    }
    println!("\n(the tail gap localizes the multi-second slowdown at the");
    println!(" revenue database, despite per-hop delays being unreliable");
    println!(" under deep queueing — the paper's production diagnosis)");
}
