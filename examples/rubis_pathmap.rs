//! Figures 5 and 6: service-path detection in the RUBiS multi-tier
//! auction deployment, under affinity-based and round-robin dispatch.
//!
//! ```sh
//! cargo run --release --example rubis_pathmap
//! ```

use e2eprof::apps::experiments::{fig5_affinity, fig6_round_robin};
use e2eprof::timeseries::Nanos;

fn main() {
    let run_for = Nanos::from_minutes(2);

    println!("=== Fig. 5: affinity-based server selection ===\n");
    let (_, graphs) = fig5_affinity(42, run_for);
    for g in &graphs {
        println!("{g}");
    }
    println!("(bidding stays on TS1/EJB1; comment on TS2/EJB2; the EJB");
    println!(" servers are automatically marked as the major delay source)\n");

    println!("=== Fig. 6: round-robin server selection ===\n");
    let (_, graphs) = fig6_round_robin(42, run_for);
    for g in &graphs {
        println!("{g}");
    }
    println!("(each class now takes both paths: two branches per graph)");
}
