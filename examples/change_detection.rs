//! Figure 7: online change detection. An artificial delay staircase is
//! injected at EJB2 (one 20 ms step every 3 minutes); pathmap's per-edge
//! delay tracks it — offset by EJB2's real processing time — while the
//! front-end average moves by only about half (most requests take the
//! low-latency path via EJB1).
//!
//! ```sh
//! cargo run --release --example change_detection
//! ```

use e2eprof::apps::experiments::fig7_change_detection;
use e2eprof::timeseries::Nanos;

fn main() {
    let minutes = 15;
    println!("running RUBiS round-robin for {minutes} minutes with a delay");
    println!("staircase at EJB2 (W = 1 min, refresh every minute)...\n");
    let (points, tracker) = fig7_change_detection(42, minutes);

    println!(
        "{:>6}  {:>10}  {:>16}  {:>14}",
        "time", "injected", "E2EProf @ EJB2", "frontend avg"
    );
    for p in &points {
        println!(
            "{:>5.0}s  {:>8.1}ms  {:>14.1}ms  {:>12.1}ms",
            p.at.as_secs_f64(),
            p.injected.as_millis_f64(),
            p.detected.map(|d| d.as_millis_f64()).unwrap_or(f64::NAN),
            p.frontend_avg
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN),
        );
    }

    // The change tracker flags each staircase step as a change point.
    println!("\nchange points on the EJB2 -> DB edge (threshold 10 ms):");
    for (client, from, to) in tracker.keys().collect::<Vec<_>>() {
        let changes = tracker.changes(client, from, to, Nanos::from_millis(10));
        if changes.is_empty() {
            continue;
        }
        for c in changes {
            println!(
                "  client {client}: edge {from}->{to} jumped {:.1}ms -> {:.1}ms at {:.0}s",
                c.before.as_millis_f64(),
                c.after.as_millis_f64(),
                c.at.as_secs_f64()
            );
        }
    }
    println!("\n(the observed-vs-injected offset is EJB2's actual processing");
    println!(" time, which the injected delay sits on top of — paper Sec. 4.1.2)");
}
