//! Quickstart: simulate a small three-tier system, then recover its
//! service path — structure, per-hop delays, and the bottleneck — from
//! packet timestamps alone.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use e2eprof::core::prelude::*;
use e2eprof::netsim::prelude::*;
use e2eprof::netsim::Route;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe a topology: client -> web -> app -> db, 1 ms links.
    let mut t = TopologyBuilder::new();
    let class = t.service_class("browse");
    let web = t.service("web", ServiceConfig::new(DelayDist::normal_millis(3, 1)));
    let app = t.service("app", ServiceConfig::new(DelayDist::normal_millis(15, 3)));
    let db = t.service("db", ServiceConfig::new(DelayDist::normal_millis(6, 1)));
    let client = t.client("client", class, web, Workload::poisson(25.0));
    t.connect(client, web, DelayDist::constant_millis(1));
    t.connect(web, app, DelayDist::constant_millis(1));
    t.connect(app, db, DelayDist::constant_millis(1));
    t.route(web, class, Route::fixed(app));
    t.route(app, class, Route::fixed(db));
    t.route(db, class, Route::terminal());

    // 2. Run it. Every message crossing a link is recorded by the passive
    //    capture taps at the sending and receiving service nodes — that
    //    trace is ALL the analysis gets to see.
    let mut sim = Simulation::new(t.build()?, 7);
    sim.run_until(Nanos::from_minutes(2));
    println!(
        "simulated 2 minutes: {} requests completed, {} packets captured\n",
        sim.truth().completed_count(),
        sim.captures().total_packets()
    );

    // 3. Run pathmap over the trailing one-minute window.
    let cfg = PathmapConfig::builder()
        .window(Nanos::from_minutes(1))
        .refresh(Nanos::from_secs(30))
        .max_delay(Nanos::from_secs(2))
        .build();
    let pm = Pathmap::new(cfg.clone());
    let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
    let graphs = pm.discover(
        &signals,
        &roots_from_topology(sim.topology()),
        &NodeLabels::from_topology(sim.topology()),
    );

    // 4. Inspect the result: the request path, the return path, per-hop
    //    delays, and the inferred bottleneck (app, by construction).
    for g in &graphs {
        println!("{g}");
        println!("end-to-end estimate: {:?}", g.end_to_end_delay());
        println!("\nGraphviz DOT:\n{}", g.to_dot());
    }
    Ok(())
}
