//! Section 3.8: clock-skew estimation. The same messages observed at both
//! ends of one edge yield two copies of one signal offset by
//! `skew + network delay`; cross-correlating them recovers the offset.
//!
//! ```sh
//! cargo run --release --example clock_skew
//! ```

use e2eprof::apps::experiments::skew_estimation;
use e2eprof::timeseries::Nanos;

fn main() {
    println!("estimating clock skew between the two ends of an edge");
    println!("(1 ms link; offset = skew + network delay)\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "configured", "estimated", "minus link", "corr"
    );
    for skew_ms in [-8i64, -3, 0, 2, 5, 12] {
        let r = skew_estimation(9, skew_ms, Nanos::from_secs(60));
        println!(
            "{:>10}ms {:>12.1}ms {:>12.1}ms {:>10.2}",
            skew_ms,
            r.estimated_offset_ns as f64 / 1e6,
            (r.estimated_offset_ns - 1_000_000) as f64 / 1e6,
            r.strength
        );
    }
    println!("\n(subtracting the known 1 ms network delay recovers the skew;");
    println!(" in production the network delay comes from passive measurement)");
}
