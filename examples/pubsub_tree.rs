//! Publish-subscribe dissemination analysis — the paper's future-work
//! domain (Section 5: "network overlays and publish-subscribe systems").
//!
//! Two publishers fan out through a broker to three subscribers. Traffic
//! is strictly one-way; pathmap recovers each topic's dissemination tree
//! and the per-subscriber delivery delays from the message timestamps.
//!
//! ```sh
//! cargo run --release --example pubsub_tree
//! ```

use e2eprof::apps::pubsub::{PubSub, PubSubConfig};
use e2eprof::core::prelude::*;
use e2eprof::timeseries::Nanos;

fn main() {
    let mut p = PubSub::build(PubSubConfig {
        publishers: 2,
        subscribers: 3,
        publish_rate: 25.0,
        ..PubSubConfig::default()
    });
    p.sim_mut().run_until(Nanos::from_secs(60));
    println!(
        "simulated 60s of pub-sub traffic: {} publications, {} packets\n",
        p.sim().truth().started_count(),
        p.sim().captures().total_packets()
    );

    let cfg = PathmapConfig::builder()
        .window(Nanos::from_secs(30))
        .refresh(Nanos::from_secs(10))
        .max_delay(Nanos::from_secs(2))
        .build();
    let graphs = Pathmap::new(cfg.clone()).discover(
        &EdgeSignals::from_capture(p.sim().captures(), &cfg, p.sim().now()),
        &roots_from_topology(p.sim().topology()),
        &NodeLabels::from_topology(p.sim().topology()),
    );
    for g in &graphs {
        println!("{g}");
        println!("delivery waterfall:\n{}", g.to_waterfall(40));
    }
    println!("(one-way multicast: no responses exist anywhere, yet the");
    println!(" dissemination tree and per-subscriber delays are recovered —");
    println!(" call-return techniques see nothing on this traffic)");
}
