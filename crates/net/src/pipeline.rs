//! The distributed pathmap pipeline: tracer agents on socket-backed
//! links, a broker, and a horizontally sharded analyzer tier whose merged
//! output is — by construction — bit identical to the single in-process
//! analyzer.
//!
//! # Determinism
//!
//! The run loop contains no sleeps and no timing assumptions. Each step:
//!
//! 1. advances the simulation and polls every agent (the link flushes
//!    synchronously inside the poll, so by the time `poll` returns the
//!    step's frames are either fully written to the broker or still
//!    queued behind a fault);
//! 2. reads how many frames were *fully written* since the last step
//!    (each [`TracerLink`] counts them);
//! 3. blocks each shard's analyzer with
//!    [`ingest_expected`](OnlineAnalyzer::ingest_expected) until exactly
//!    that many frames arrive — every shard subscribes to every edge
//!    stream, so the count is the same for all of them;
//! 4. refreshes every shard and concatenates the per-shard graphs in
//!    shard order.
//!
//! # Why the merge is exact
//!
//! Shards are assigned *contiguous chunks* of the global root order
//! ([`shard_ranges`]), each shard ingests the complete edge-stream set
//! (identical sliding windows everywhere), and each discovers only its
//! own roots against the full client universe
//! ([`OnlineAnalyzer::with_universe`]). Discovery output is a function of
//! (windows, root) alone, so concatenating shard outputs in shard order
//! reproduces the single-analyzer refresh bit for bit.

use crate::broker::{BrokerConfig, BrokerHandle};
use crate::fault::{FaultPlan, FaultyDialer};
use crate::link::{AnalyzerConn, ConnStats, HintConn, HintSender, LinkConfig, TracerLink};
use crate::mem::MemListener;
use crate::stream::{Acceptor, Dialer, TcpDialer, UnixDialer};
use crossbeam::channel::Receiver;
use e2eprof_core::analyzer::OnlineAnalyzer;
use e2eprof_core::config::PathmapConfig;
use e2eprof_core::graph::NodeLabels;
use e2eprof_core::graph::ServiceGraph;
use e2eprof_core::parallel::shard_ranges;
use e2eprof_core::pathmap::roots_from_topology;
use e2eprof_core::reduction::HintState;
use e2eprof_core::tracer::TracerAgent;
use e2eprof_netsim::{NodeId, Simulation, Topology};
use e2eprof_timeseries::Nanos;
use std::collections::{BTreeMap, HashSet};
use std::net::{SocketAddr, TcpListener};
use std::os::unix::net::UnixListener;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A transport endpoint the pipeline can bind a broker on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Endpoint {
    /// In-memory pipes — deterministic, used by the fault harness.
    Mem,
    /// Loopback TCP on an OS-assigned port.
    Tcp,
    /// A Unix-domain socket on a unique temp path.
    Unix,
}

/// Monotonic suffix so concurrent tests never collide on a socket path.
static UNIX_PATH_SEQ: AtomicU64 = AtomicU64::new(0);

enum BoundInner {
    Mem(Arc<MemListener>),
    Tcp(Arc<TcpListener>, SocketAddr),
    Unix(Arc<UnixListener>, PathBuf),
}

/// A bound [`Endpoint`]: hands the acceptor to a broker and mints dialers
/// for links. Dropping a Unix endpoint removes its socket file.
pub struct BoundEndpoint {
    inner: BoundInner,
}

impl Endpoint {
    /// Binds the endpoint (for kernel transports: to an ephemeral
    /// address).
    pub fn bind(self) -> std::io::Result<BoundEndpoint> {
        let inner = match self {
            Endpoint::Mem => BoundInner::Mem(Arc::new(MemListener::new())),
            Endpoint::Tcp => {
                let listener = TcpListener::bind(("127.0.0.1", 0))?;
                let addr = listener.local_addr()?;
                BoundInner::Tcp(Arc::new(listener), addr)
            }
            Endpoint::Unix => {
                let path = std::env::temp_dir().join(format!(
                    "e2eprof-{}-{}.sock",
                    std::process::id(),
                    UNIX_PATH_SEQ.fetch_add(1, Ordering::Relaxed)
                ));
                let _ = std::fs::remove_file(&path);
                BoundInner::Unix(Arc::new(UnixListener::bind(&path)?), path)
            }
        };
        Ok(BoundEndpoint { inner })
    }
}

impl BoundEndpoint {
    /// The acceptor a broker runs on.
    pub fn acceptor(&self) -> Arc<dyn Acceptor> {
        match &self.inner {
            BoundInner::Mem(l) => Arc::clone(l) as Arc<dyn Acceptor>,
            BoundInner::Tcp(l, _) => Arc::clone(l) as Arc<dyn Acceptor>,
            BoundInner::Unix(l, _) => Arc::clone(l) as Arc<dyn Acceptor>,
        }
    }

    /// A fresh dialer to this endpoint.
    pub fn dialer(&self) -> Box<dyn Dialer> {
        match &self.inner {
            BoundInner::Mem(l) => Box::new(l.dialer()),
            BoundInner::Tcp(_, addr) => Box::new(TcpDialer(*addr)),
            BoundInner::Unix(_, path) => Box::new(UnixDialer(path.clone())),
        }
    }
}

impl Drop for BoundEndpoint {
    fn drop(&mut self) {
        if let BoundInner::Unix(_, path) = &self.inner {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl std::fmt::Debug for BoundEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.inner {
            BoundInner::Mem(_) => f.write_str("BoundEndpoint::Mem"),
            BoundInner::Tcp(_, a) => write!(f, "BoundEndpoint::Tcp({a})"),
            BoundInner::Unix(_, p) => write!(f, "BoundEndpoint::Unix({})", p.display()),
        }
    }
}

/// Configures a [`DistributedPipeline`] before it is built against a
/// topology.
pub struct PipelineBuilder {
    config: PathmapConfig,
    shards: usize,
    link: LinkConfig,
    broker: BrokerConfig,
    tracer_faults: BTreeMap<u32, Vec<FaultPlan>>,
    analyzer_faults: BTreeMap<usize, Vec<FaultPlan>>,
    hint_faults: BTreeMap<u32, Vec<FaultPlan>>,
}

impl PipelineBuilder {
    /// Starts a builder for `shards` analyzer shards under `config`.
    pub fn new(config: PathmapConfig, shards: usize) -> Self {
        PipelineBuilder {
            config,
            shards: shards.max(1),
            link: LinkConfig::immediate(),
            // Generous replay retention: fault tests disconnect
            // subscribers mid-run and everything published meanwhile must
            // still be replayable.
            broker: BrokerConfig {
                ring_capacity: 1 << 16,
            },
            tracer_faults: BTreeMap::new(),
            analyzer_faults: BTreeMap::new(),
            hint_faults: BTreeMap::new(),
        }
    }

    /// Overrides the link configuration (queue capacity, redial budget,
    /// backoff) used by every tracer link and analyzer connection.
    pub fn link_config(mut self, link: LinkConfig) -> Self {
        self.link = link;
        self
    }

    /// Overrides the broker configuration.
    pub fn broker_config(mut self, broker: BrokerConfig) -> Self {
        self.broker = broker;
        self
    }

    /// Scripts connection faults for the tracer on node index `node`:
    /// `plans[i]` shapes that tracer's `i`-th connection (cuts at byte
    /// offsets, jitter, stalls); connections past the script run clean.
    pub fn tracer_faults(mut self, node: u32, plans: Vec<FaultPlan>) -> Self {
        self.tracer_faults.insert(node, plans);
        self
    }

    /// Scripts connection faults for analyzer shard `shard`, like
    /// [`tracer_faults`](Self::tracer_faults).
    pub fn analyzer_faults(mut self, shard: usize, plans: Vec<FaultPlan>) -> Self {
        self.analyzer_faults.insert(shard, plans);
        self
    }

    /// Scripts connection faults for the *hint subscription* of the
    /// tracer on node `node` (the analyzer→tracer feedback channel),
    /// like [`tracer_faults`](Self::tracer_faults). Only meaningful when
    /// the config enables reduction.
    pub fn hint_faults(mut self, node: u32, plans: Vec<FaultPlan>) -> Self {
        self.hint_faults.insert(node, plans);
        self
    }

    /// Builds the full distributed tier against `topo`, bound to
    /// `endpoint`: broker, one agent-with-link per service node, and one
    /// subscribed analyzer per shard owning a contiguous chunk of the
    /// global root order.
    pub fn build(self, topo: &Topology, endpoint: &BoundEndpoint) -> DistributedPipeline {
        let broker = BrokerHandle::spawn(endpoint.acceptor(), self.broker.clone());
        let clients: HashSet<NodeId> = topo.clients().into_iter().collect();
        let roots = roots_from_topology(topo);
        let universe: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        let labels = NodeLabels::from_topology(topo);
        let ranges = shard_ranges(roots.len(), self.shards);
        let of = ranges.len().max(1) as u32;
        let reduction_on = self.config.reduction().is_some();

        let mut agents = Vec::new();
        let mut delivered = Vec::new();
        let mut link_redials = Vec::new();
        let mut hint_conns = Vec::new();
        let mut hint_rxs = Vec::new();
        for node in topo.services() {
            let origin = node.index() as u32;
            let dialer: Box<dyn Dialer> = match self.tracer_faults.get(&origin) {
                Some(plans) => Box::new(FaultyDialer::new(endpoint.dialer(), plans.clone())),
                None => endpoint.dialer(),
            };
            let link = TracerLink::new(origin, dialer, self.link.clone());
            delivered.push(link.delivered_handle());
            link_redials.push((origin, link.redials_handle()));
            if reduction_on {
                let dialer: Box<dyn Dialer> = match self.hint_faults.get(&origin) {
                    Some(plans) => Box::new(FaultyDialer::new(endpoint.dialer(), plans.clone())),
                    None => endpoint.dialer(),
                };
                let (conn, rx) = HintConn::spawn(dialer, origin, of, self.link.clone());
                hint_conns.push((origin, conn));
                hint_rxs.push(rx);
            }
            agents.push(TracerAgent::with_sink(
                node,
                clients.clone(),
                self.config.clone(),
                Box::new(link),
            ));
        }

        let mut shards = Vec::new();
        let mut hint_senders = Vec::new();
        for (i, range) in ranges.into_iter().enumerate() {
            let dialer: Box<dyn Dialer> = match self.analyzer_faults.get(&i) {
                Some(plans) => Box::new(FaultyDialer::new(endpoint.dialer(), plans.clone())),
                None => endpoint.dialer(),
            };
            let (conn, rx) = AnalyzerConn::spawn(dialer, i as u32, of, self.link.clone());
            let mut analyzer = OnlineAnalyzer::with_universe(
                self.config.clone(),
                roots[range].to_vec(),
                universe.clone(),
                labels.clone(),
                rx,
            );
            if reduction_on {
                analyzer.set_reduction_shard(i as u32, of);
                hint_senders.push(HintSender::new(
                    i as u32,
                    of,
                    endpoint.dialer(),
                    self.link.clone(),
                ));
            }
            shards.push(ShardAnalyzer { analyzer, conn });
        }

        let hint_seqs = vec![0u64; hint_senders.len()];
        DistributedPipeline {
            config: self.config,
            broker,
            agents,
            delivered,
            link_redials,
            shards,
            hint_conns,
            hint_rxs,
            hint_senders,
            hint_seqs,
            expected: 0,
        }
    }
}

/// One analyzer shard: the analyzer plus the subscribing connection
/// feeding it.
pub struct ShardAnalyzer {
    /// The shard's analyzer (owns a contiguous chunk of the roots).
    pub analyzer: OnlineAnalyzer,
    /// The broker connection delivering every edge stream to it.
    pub conn: AnalyzerConn,
}

/// The assembled distributed tier. Drive it with
/// [`step`](DistributedPipeline::step); tear it down with
/// [`shutdown`](DistributedPipeline::shutdown).
pub struct DistributedPipeline {
    config: PathmapConfig,
    broker: BrokerHandle,
    agents: Vec<TracerAgent>,
    delivered: Vec<Arc<AtomicU64>>,
    /// `(node, reconnect counter)` per tracer data link.
    link_redials: Vec<(u32, Arc<AtomicU64>)>,
    shards: Vec<ShardAnalyzer>,
    /// `(node, hint subscription)` per tracer — empty when reduction is
    /// off. Parallel to `agents`, as is `hint_rxs`.
    hint_conns: Vec<(u32, HintConn)>,
    hint_rxs: Vec<Receiver<HintState>>,
    /// One hint publisher per analyzer shard (empty when reduction off).
    hint_senders: Vec<HintSender>,
    /// Highest hint seq each shard has published — what every tracer's
    /// hint connection must reach before the step completes.
    hint_seqs: Vec<u64>,
    expected: u64,
}

impl DistributedPipeline {
    /// Runs one refresh step at simulated time `now`, draining agent
    /// streams up to `now - drain_lag`, and returns the merged service
    /// graphs (per-shard outputs concatenated in shard order — the
    /// aggregator).
    pub fn step(
        &mut self,
        sim: &mut Simulation,
        now: Nanos,
        drain_lag: Nanos,
    ) -> Vec<ServiceGraph> {
        sim.run_until(now);
        // Apply reduction hints delivered since the last step *before*
        // polling: a promote hint makes the agent emit its retained fine
        // window (Backfill) through the sink, and whatever it flushes
        // here is counted in this step's `written` total below.
        for (agent, rx) in self.agents.iter_mut().zip(self.hint_rxs.iter()) {
            while let Ok(hint) = rx.try_recv() {
                agent.apply_hint_state(&hint);
            }
        }
        let drain = self.config.quanta().tick_of(now.saturating_sub(drain_lag));
        for agent in &mut self.agents {
            agent.poll(sim.captures(), drain);
        }
        // Frames fully written to the broker since the last step — what
        // every All-subscribed shard must wait for. Frames still queued
        // behind a fault are *not* counted; they surface in a later step
        // once a flush lands them.
        let written: u64 = self
            .delivered
            .iter()
            .map(|d| d.load(Ordering::Relaxed))
            .sum();
        let arriving = (written - self.expected) as usize;
        self.expected = written;
        let mut merged = Vec::new();
        for shard in &mut self.shards {
            shard.analyzer.ingest_expected(arriving);
            merged.extend(shard.analyzer.refresh(now));
        }
        // Publish any changed reduction verdicts and wait until every
        // tracer's hint connection has enqueued them — a sleep-free
        // barrier that keeps the feedback loop deterministic: the hints
        // take effect at the next step's drain on every agent alike.
        for (i, sender) in self.hint_senders.iter_mut().enumerate() {
            if let Some(hint) = self.shards[i].analyzer.take_hints() {
                if let Some(seq) = sender.send(&hint) {
                    self.hint_seqs[i] = seq;
                }
            }
        }
        for (_, conn) in &self.hint_conns {
            for (s, &seq) in self.hint_seqs.iter().enumerate() {
                while conn.hint_seq(s as u32) < seq {
                    std::thread::yield_now();
                }
            }
        }
        merged
    }

    /// Total frames the agents' sinks evicted under backpressure.
    pub fn frames_dropped(&self) -> u64 {
        self.agents.iter().map(TracerAgent::frames_dropped).sum()
    }

    /// Total frames the agents handed to their sinks.
    pub fn frames_emitted(&self) -> u64 {
        self.agents.iter().map(TracerAgent::frames_emitted).sum()
    }

    /// Total backfill frames the agents emitted on promote hints.
    pub fn backfills_emitted(&self) -> u64 {
        self.agents.iter().map(TracerAgent::backfills_emitted).sum()
    }

    /// Per-tracer data-link reconnect counts, `(node, reconnects)` in
    /// node order.
    pub fn link_redials(&self) -> Vec<(u32, u64)> {
        self.link_redials
            .iter()
            .map(|(node, c)| (*node, c.load(Ordering::Relaxed)))
            .collect()
    }

    /// Per-tracer hint-subscription reconnect counts, `(node,
    /// reconnects)` in node order. Empty when reduction is off.
    pub fn hint_reconnects(&self) -> Vec<(u32, u64)> {
        self.hint_conns
            .iter()
            .map(|(node, c)| (*node, c.reconnects()))
            .collect()
    }

    /// The broker handle (counters: dedup rejections, ring drops,
    /// deliveries).
    pub fn broker(&self) -> &BrokerHandle {
        &self.broker
    }

    /// Per-shard analyzers and connections.
    pub fn shards(&self) -> &[ShardAnalyzer] {
        &self.shards
    }

    /// Connection counters of shard `i`.
    pub fn shard_conn_stats(&self, i: usize) -> &ConnStats {
        self.shards[i].conn.stats()
    }

    /// Tears the tier down: hint readers get their stop flag first (so
    /// the broker closing their streams wakes them into exit rather than
    /// a redial), then the broker (wakes blocked readers), then the
    /// analyzer connections, then the hint reader joins.
    pub fn shutdown(mut self) {
        for (_, conn) in &self.hint_conns {
            conn.signal_stop();
        }
        self.broker.shutdown();
        for shard in &mut self.shards {
            shard.conn.stop();
        }
        for (_, conn) in &mut self.hint_conns {
            conn.stop();
        }
    }
}

/// Drives a distributed pipeline over `steps` refresh intervals —
/// the socket-backed analogue of the in-process `run_pipeline` helper the
/// equivalence suites use — returning each refresh's merged graphs.
#[allow(clippy::too_many_arguments)]
pub fn run_distributed(
    sim: &mut Simulation,
    builder: PipelineBuilder,
    endpoint: &BoundEndpoint,
    steps: u64,
    step: Nanos,
    drain_lag: Nanos,
) -> Vec<Vec<ServiceGraph>> {
    let mut pipeline = builder.build(sim.topology(), endpoint);
    let mut out = Vec::new();
    for i in 1..=steps {
        let now = Nanos::from_nanos(step.as_nanos() * i);
        out.push(pipeline.step(sim, now, drain_lag));
    }
    pipeline.shutdown();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoints_bind_and_dial() {
        for ep in [Endpoint::Mem, Endpoint::Tcp, Endpoint::Unix] {
            let bound = ep.bind().expect("bind");
            let broker = BrokerHandle::spawn(bound.acceptor(), BrokerConfig::default());
            let mut conn = bound.dialer().dial().expect("dial");
            use std::io::Write;
            conn.write_all(b"x").expect("write");
            broker.shutdown();
        }
    }

    #[test]
    fn unix_endpoint_cleans_up_its_socket_file() {
        let bound = Endpoint::Unix.bind().expect("bind");
        let path = match &bound.inner {
            BoundInner::Unix(_, p) => p.clone(),
            _ => unreachable!(),
        };
        assert!(path.exists());
        drop(bound);
        assert!(!path.exists());
    }
}
