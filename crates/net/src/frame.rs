//! Transport framing: length-prefixed, checksummed envelopes around the
//! `E2EP` wire frames of [`e2eprof_timeseries::wire`].
//!
//! The socket layer never interprets series payloads — it moves opaque,
//! self-delimiting envelopes:
//!
//! ```text
//! magic  "E2EN"          4 bytes
//! version = 1            1 byte
//! kind                   1 byte   (control or data, see [`FrameKind`])
//! origin                 4 bytes  BE u32 — sending tracer's node index
//! seq                    8 bytes  BE u64 — per-origin sequence number
//! len                    4 bytes  BE u32 — payload length, capped
//! crc                    4 bytes  BE u32 — CRC-32 over version..len + payload
//! payload                len bytes
//! ```
//!
//! Every declared length is capped against [`MAX_PAYLOAD_LEN`] *before*
//! any allocation, and the CRC covers both the header fields and the
//! payload, so any single-bit flip anywhere in the envelope — including
//! the sequence number — surfaces as a typed [`FrameError`], never as a
//! silently different frame.
//!
//! Decoding is *sans-io*: [`FrameDecoder`] is fed raw bytes and yields
//! complete frames, so the same code path runs under blocking sockets,
//! in-memory pipes, and the deterministic fault-injection harness.

use bytes::Bytes;
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// Magic prefix of every transport envelope.
pub const NET_MAGIC: &[u8; 4] = b"E2EN";
/// Transport framing version.
pub const NET_VERSION: u8 = 1;
/// Fixed envelope header size in bytes.
pub const HEADER_LEN: usize = 26;
/// Upper bound on a payload's declared length (64 MiB). A tracer flush is
/// a few KiB; anything near this cap is corruption, not data.
pub const MAX_PAYLOAD_LEN: u32 = 64 << 20;

/// What an envelope carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameKind {
    /// Peer introduction (first frame on every connection).
    Hello = 1,
    /// Tracer announcing the set of edges it owns.
    Announce = 2,
    /// Analyzer subscribing to edge streams.
    Subscribe = 3,
    /// A wire-v2 `E2EP` batch frame (all series of one tracer flush).
    DataBatch = 4,
    /// A wire-v1 `E2EP` series frame, prefixed by its 8-byte edge key.
    DataSeries = 5,
    /// An analyzer shard's full-state reduction snapshot, routed
    /// broker→tracer (the feedback direction). Origin is the shard's
    /// synthetic hint origin; seq is per-shard monotonic so stale
    /// snapshots can never overwrite fresher ones.
    Hint = 6,
    /// A promoted edge's retained fine window, resent by a tracer on a
    /// promote hint. Data-kinded: it rides the same replay ring, dedup,
    /// and resume machinery as ordinary batches.
    Backfill = 7,
}

impl FrameKind {
    fn from_byte(b: u8) -> Option<FrameKind> {
        match b {
            1 => Some(FrameKind::Hello),
            2 => Some(FrameKind::Announce),
            3 => Some(FrameKind::Subscribe),
            4 => Some(FrameKind::DataBatch),
            5 => Some(FrameKind::DataSeries),
            6 => Some(FrameKind::Hint),
            7 => Some(FrameKind::Backfill),
            _ => None,
        }
    }

    /// Whether this kind carries tracer series data (vs. control).
    pub fn is_data(self) -> bool {
        matches!(
            self,
            FrameKind::DataBatch | FrameKind::DataSeries | FrameKind::Backfill
        )
    }
}

/// One decoded transport envelope.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Node index of the originating tracer (0 for analyzer control).
    pub origin: u32,
    /// Per-origin sequence number (data frames; 0 for control).
    pub seq: u64,
    /// The opaque payload.
    pub payload: Bytes,
}

/// Errors surfaced by the transport decoder. Every corruption mode the
/// fault corpus injects maps to one of these — the decoder never panics
/// and never allocates from an attacker-controlled length.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The stream does not begin with the `E2EN` magic (garbage between
    /// frames, or a desynchronized peer).
    BadMagic,
    /// Unknown transport framing version.
    UnsupportedVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized(u32),
    /// CRC mismatch: the envelope was damaged in transit.
    ChecksumMismatch,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::BadMagic => write!(f, "stream does not start with E2EN magic"),
            FrameError::UnsupportedVersion(v) => write!(f, "unsupported transport version {v}"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            FrameError::Oversized(n) => write!(f, "declared payload of {n} bytes exceeds cap"),
            FrameError::ChecksumMismatch => write!(f, "frame checksum mismatch"),
        }
    }
}

impl Error for FrameError {}

/// Byte-indexed CRC-32 lookup table for the reflected IEEE polynomial,
/// built at compile time. One table lookup per byte replaces the eight
/// conditional shifts of the bitwise form — the checksum is the only
/// per-byte work left on the broker's pass-through path, so it is worth
/// keeping cheap.
/// Slice-by-8 lookup tables: `TABLES[0]` is the classic byte-at-a-time
/// table; `TABLES[n][i]` extends `TABLES[n-1][i]` by one more zero byte,
/// letting the hot loop fold eight input bytes per iteration with eight
/// independent loads instead of eight dependent shift-xor steps.
const CRC32_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[n - 1][i];
            tables[n][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        n += 1;
    }
    tables
};

/// CRC-32 (IEEE, reflected polynomial 0xEDB88320) over `bytes`, continuing
/// from `crc` (start with `0`).
pub fn crc32(crc: u32, bytes: &[u8]) -> u32 {
    let mut crc = !crc;
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = CRC32_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC32_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[4][(lo >> 24) as usize]
            ^ CRC32_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC32_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC32_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC32_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC32_TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// Encodes one envelope into `out`, appending (callers batch several
/// frames into one write).
pub fn encode_frame(kind: FrameKind, origin: u32, seq: u64, payload: &[u8], out: &mut Vec<u8>) {
    assert!(
        payload.len() as u64 <= u64::from(MAX_PAYLOAD_LEN),
        "payload exceeds transport cap"
    );
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(NET_MAGIC);
    let body_start = out.len();
    out.push(NET_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&origin.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    let crc = crc32(crc32(0, &out[body_start..]), payload);
    out.extend_from_slice(&crc.to_be_bytes());
    out.extend_from_slice(payload);
}

/// Encodes one envelope into a fresh buffer.
pub fn encode_frame_to_vec(kind: FrameKind, origin: u32, seq: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    encode_frame(kind, origin, seq, payload, &mut out);
    out
}

/// Encodes the envelope *head* — header plus an optional payload prefix —
/// for a frame whose logical payload is `prefix ++ tail`, without copying
/// `tail`. The returned buffer concatenated with `tail` is byte-identical
/// to `encode_frame_to_vec(kind, origin, seq, prefix ++ tail)`.
///
/// This is the zero-copy send-queue primitive: the tracer link keeps the
/// (small, owned) head and the (shared, refcounted) tail as separate
/// gather segments and hands both to a vectored write.
pub fn encode_frame_head(
    kind: FrameKind,
    origin: u32,
    seq: u64,
    prefix: &[u8],
    tail: &[u8],
) -> Vec<u8> {
    let len = prefix.len() as u64 + tail.len() as u64;
    assert!(
        len <= u64::from(MAX_PAYLOAD_LEN),
        "payload exceeds transport cap"
    );
    let mut out = Vec::with_capacity(HEADER_LEN + prefix.len());
    out.extend_from_slice(NET_MAGIC);
    let body_start = out.len();
    out.push(NET_VERSION);
    out.push(kind as u8);
    out.extend_from_slice(&origin.to_be_bytes());
    out.extend_from_slice(&seq.to_be_bytes());
    out.extend_from_slice(&(len as u32).to_be_bytes());
    let crc = crc32(crc32(crc32(0, &out[body_start..]), prefix), tail);
    out.extend_from_slice(&crc.to_be_bytes());
    out.extend_from_slice(prefix);
    out
}

/// One *validated but undecoded* transport envelope: the header fields the
/// relay needs for routing plus the complete envelope bytes (header and
/// payload) as a shared, refcounted slice.
///
/// This is the broker's pass-through currency. The CRC in the header
/// covers everything after the magic, so a frame that passed
/// [`FrameDecoder::next_raw`] validation can be forwarded byte-for-byte —
/// re-encoding it would reproduce exactly these bytes (see the
/// `passthrough` proptests) — and any damage introduced *after* relay is
/// still caught by the receiving decoder's own CRC check.
#[derive(Debug, Clone)]
pub struct RawFrame {
    /// What the payload is.
    pub kind: FrameKind,
    /// Node index of the originating tracer (0 for analyzer control).
    pub origin: u32,
    /// Per-origin sequence number (data frames; 0 for control).
    pub seq: u64,
    /// The complete envelope: header followed by payload.
    pub bytes: Arc<[u8]>,
}

impl RawFrame {
    /// The payload bytes (everything after the fixed header).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[HEADER_LEN..]
    }
}

/// Incremental, sans-io transport decoder.
///
/// Feed it raw bytes as they arrive; [`next_frame`](Self::next_frame)
/// yields complete envelopes. A framing error poisons the decoder (the
/// stream position is no longer trustworthy) — the connection must be
/// dropped and re-established.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
    /// Consumed prefix of `buf` (compacted opportunistically).
    pos: usize,
    poisoned: Option<FrameError>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        FrameDecoder::default()
    }

    /// Appends raw stream bytes.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.pos > 0 && (self.pos >= self.buf.len() || self.pos > 4096) {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed by a complete frame.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Attempts to decode the next complete envelope.
    ///
    /// Returns `Ok(None)` when more bytes are needed. Any framing error is
    /// sticky: once returned, every later call returns it again.
    pub fn next_frame(&mut self) -> Result<Option<Frame>, FrameError> {
        match self.next_validated()? {
            None => Ok(None),
            Some(v) => {
                let avail = &self.buf[self.pos..];
                let frame = Frame {
                    kind: v.kind,
                    origin: v.origin,
                    seq: v.seq,
                    payload: Bytes::copy_from_slice(&avail[HEADER_LEN..v.total]),
                };
                self.pos += v.total;
                Ok(Some(frame))
            }
        }
    }

    /// Attempts to validate the next complete envelope *without decoding
    /// it*: header fields and CRC are checked exactly as in
    /// [`next_frame`](Self::next_frame), but the payload is never parsed or
    /// re-encoded — the whole envelope is copied once out of the stream
    /// buffer into a shared `Arc<[u8]>` ready for byte-for-byte relay.
    ///
    /// Same contract otherwise: `Ok(None)` means more bytes are needed,
    /// and any framing error is sticky.
    pub fn next_raw(&mut self) -> Result<Option<RawFrame>, FrameError> {
        match self.next_validated()? {
            None => Ok(None),
            Some(v) => {
                let avail = &self.buf[self.pos..];
                let frame = RawFrame {
                    kind: v.kind,
                    origin: v.origin,
                    seq: v.seq,
                    bytes: Arc::from(&avail[..v.total]),
                };
                self.pos += v.total;
                Ok(Some(frame))
            }
        }
    }

    /// Shared validation: header bounds, kind, length cap, and CRC over
    /// header-after-magic plus payload. Does not consume bytes — callers
    /// advance `pos` by `total` after materializing their frame view.
    fn next_validated(&mut self) -> Result<Option<Validated>, FrameError> {
        if let Some(err) = &self.poisoned {
            return Err(err.clone());
        }
        match self.validate() {
            Ok(v) => Ok(v),
            Err(err) => {
                self.poisoned = Some(err.clone());
                Err(err)
            }
        }
    }

    fn validate(&self) -> Result<Option<Validated>, FrameError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < HEADER_LEN {
            // Header incomplete — but reject a provably bad magic early so
            // garbage shorter than a header still errors out.
            let n = avail.len().min(4);
            if avail[..n] != NET_MAGIC[..n] {
                return Err(FrameError::BadMagic);
            }
            return Ok(None);
        }
        if &avail[..4] != NET_MAGIC {
            return Err(FrameError::BadMagic);
        }
        if avail[4] != NET_VERSION {
            return Err(FrameError::UnsupportedVersion(avail[4]));
        }
        let kind = FrameKind::from_byte(avail[5]).ok_or(FrameError::BadKind(avail[5]))?;
        let origin = u32::from_be_bytes(avail[6..10].try_into().expect("4 bytes"));
        let seq = u64::from_be_bytes(avail[10..18].try_into().expect("8 bytes"));
        let len = u32::from_be_bytes(avail[18..22].try_into().expect("4 bytes"));
        // The length cap guards the buffer growth below: a flipped length
        // bit cannot make us wait for (or allocate) gigabytes.
        if len > MAX_PAYLOAD_LEN {
            return Err(FrameError::Oversized(len));
        }
        let declared_crc = u32::from_be_bytes(avail[22..26].try_into().expect("4 bytes"));
        let total = HEADER_LEN + len as usize;
        if avail.len() < total {
            return Ok(None);
        }
        let payload = &avail[HEADER_LEN..total];
        let actual = crc32(crc32(0, &avail[4..22]), payload);
        if actual != declared_crc {
            return Err(FrameError::ChecksumMismatch);
        }
        Ok(Some(Validated {
            kind,
            origin,
            seq,
            total,
        }))
    }
}

/// Routing fields of a validated-but-unconsumed envelope.
struct Validated {
    kind: FrameKind,
    origin: u32,
    seq: u64,
    total: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_single_frame() {
        let payload = b"hello world".as_slice();
        let bytes = encode_frame_to_vec(FrameKind::DataBatch, 7, 42, payload);
        assert_eq!(bytes.len(), HEADER_LEN + payload.len());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        assert_eq!(frame.kind, FrameKind::DataBatch);
        assert_eq!(frame.origin, 7);
        assert_eq!(frame.seq, 42);
        assert_eq!(frame.payload.as_ref(), payload);
        assert_eq!(dec.next_frame().unwrap(), None);
    }

    #[test]
    fn byte_at_a_time_reassembly() {
        let mut stream = Vec::new();
        for i in 0..5u64 {
            encode_frame(FrameKind::DataBatch, 1, i, &[i as u8; 3], &mut stream);
        }
        let mut dec = FrameDecoder::new();
        let mut seqs = Vec::new();
        for b in &stream {
            dec.feed(std::slice::from_ref(b));
            while let Some(f) = dec.next_frame().unwrap() {
                seqs.push(f.seq);
            }
        }
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(dec.pending(), 0);
    }

    #[test]
    fn empty_payload_is_fine() {
        let bytes = encode_frame_to_vec(FrameKind::Hello, 0, 0, &[]);
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let frame = dec.next_frame().unwrap().unwrap();
        assert!(frame.payload.is_empty());
    }

    #[test]
    fn garbage_prefix_is_bad_magic_and_sticky() {
        let mut dec = FrameDecoder::new();
        dec.feed(b"zz");
        assert_eq!(dec.next_frame(), Err(FrameError::BadMagic));
        // Poisoned: even after valid bytes arrive the error persists.
        dec.feed(&encode_frame_to_vec(FrameKind::Hello, 0, 0, &[]));
        assert_eq!(dec.next_frame(), Err(FrameError::BadMagic));
    }

    #[test]
    fn oversized_length_is_rejected_before_buffering() {
        let mut bytes = encode_frame_to_vec(FrameKind::DataBatch, 1, 1, &[0; 8]);
        bytes[18..22].copy_from_slice(&u32::MAX.to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        assert_eq!(dec.next_frame(), Err(FrameError::Oversized(u32::MAX)));
    }

    #[test]
    fn crc_detects_payload_and_header_damage() {
        let good = encode_frame_to_vec(FrameKind::DataBatch, 3, 9, b"payload");
        // Flip one payload bit.
        let mut bad = good.clone();
        *bad.last_mut().unwrap() ^= 0x10;
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        assert_eq!(dec.next_frame(), Err(FrameError::ChecksumMismatch));
        // Flip one sequence-number bit (structurally still a valid frame).
        let mut bad = good;
        bad[12] ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&bad);
        assert_eq!(dec.next_frame(), Err(FrameError::ChecksumMismatch));
    }

    #[test]
    fn crc32_known_vector() {
        // IEEE CRC-32 of "123456789".
        assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn crc32_streaming_matches_oneshot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let oneshot = crc32(0, data);
        for split in 0..data.len() {
            let (a, b) = data.split_at(split);
            assert_eq!(crc32(crc32(0, a), b), oneshot);
        }
    }

    #[test]
    fn raw_frame_bytes_are_identical_to_encoded_input() {
        let payload = b"opaque relay payload".as_slice();
        let encoded = encode_frame_to_vec(FrameKind::Backfill, 9, 77, payload);
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        let raw = dec.next_raw().unwrap().unwrap();
        assert_eq!(raw.kind, FrameKind::Backfill);
        assert_eq!(raw.origin, 9);
        assert_eq!(raw.seq, 77);
        assert_eq!(raw.bytes.as_ref(), encoded.as_slice());
        assert_eq!(raw.payload(), payload);
        assert!(dec.next_raw().unwrap().is_none());
    }

    #[test]
    fn next_raw_is_sticky_on_corruption() {
        let mut encoded = encode_frame_to_vec(FrameKind::DataBatch, 1, 1, b"x");
        *encoded.last_mut().unwrap() ^= 0x01;
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        assert_eq!(dec.next_raw().unwrap_err(), FrameError::ChecksumMismatch);
        dec.feed(&encode_frame_to_vec(FrameKind::DataBatch, 1, 2, b"y"));
        assert_eq!(dec.next_raw().unwrap_err(), FrameError::ChecksumMismatch);
        assert_eq!(dec.next_frame().unwrap_err(), FrameError::ChecksumMismatch);
    }

    #[test]
    fn encode_frame_head_matches_contiguous_encoding() {
        let prefix = 0xDEAD_BEEF_0BAD_CAFE_u64.to_be_bytes();
        let tail = b"series bytes".as_slice();
        let mut whole = prefix.to_vec();
        whole.extend_from_slice(tail);
        let reference = encode_frame_to_vec(FrameKind::DataSeries, 3, 12, &whole);
        let head = encode_frame_head(FrameKind::DataSeries, 3, 12, &prefix, tail);
        let mut gathered = head.clone();
        gathered.extend_from_slice(tail);
        assert_eq!(gathered, reference);
        // Empty prefix (the batch/backfill shape).
        let head = encode_frame_head(FrameKind::DataBatch, 3, 13, &[], tail);
        let mut gathered = head;
        gathered.extend_from_slice(tail);
        assert_eq!(
            gathered,
            encode_frame_to_vec(FrameKind::DataBatch, 3, 13, tail)
        );
    }
}
