//! Network transport for the E2EProf pipeline: wire v2 on real sockets.
//!
//! This crate puts the tracer→analyzer stream onto TCP and Unix-domain
//! sockets (plus deterministic in-memory pipes for testing), and shards
//! the analyzer tier horizontally:
//!
//! - [`frame`] — the length-prefixed, CRC-checked transport envelope
//!   carrying wire-v1/v2 payloads, with a sans-io incremental decoder;
//! - [`msg`] — control-plane payloads (Hello, Announce, Subscribe);
//! - [`stream`] / [`mem`] — the byte-stream abstraction and its kernel
//!   (TCP, Unix) and in-memory implementations;
//! - [`fault`] — seeded, byte-offset-scripted fault injection (cuts,
//!   jitter, stalls) for the deterministic fault harness;
//! - [`queue`] — bounded send queues (drop-oldest backpressure) and the
//!   broker's replay ring;
//! - [`registry`] — the broker's pure routing/dedup state machine;
//! - [`broker`] — the socket-facing broker: tracers announce and
//!   publish, analyzers subscribe with resume positions;
//! - [`link`] — client endpoints: the tracer's socket-backed `FrameSink`
//!   and the analyzer's reconnecting subscription;
//! - [`pipeline`] — the assembled distributed tier with a deterministic,
//!   sleep-free run loop whose sharded output merges bit-identically to
//!   the in-process analyzer.
//!
//! The design invariant throughout: transports and faults may reorder
//! *when* work happens, never *what* is computed. Any run that reaches
//! the same drain ticks produces the same graphs, whether frames crossed
//! a channel, a socket, or a scripted sequence of dying connections.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod broker;
pub mod fault;
pub mod frame;
pub mod link;
pub mod mem;
pub mod msg;
pub mod pipeline;
pub mod queue;
pub mod registry;
pub mod stream;

pub use broker::{BrokerConfig, BrokerHandle};
pub use fault::{FaultPlan, FaultyDialer, FaultyStream};
pub use frame::{Frame, FrameDecoder, FrameError, FrameKind, RawFrame};
pub use link::{
    AnalyzerConn, HintConn, HintSender, LinkConfig, LinkStats, TracerLink, HINT_ORIGIN_BIT,
};
pub use pipeline::{BoundEndpoint, DistributedPipeline, Endpoint, PipelineBuilder};
pub use stream::{
    Acceptor, CountingAcceptor, CountingStream, Dialer, IoCounters, NetStream, TcpDialer,
    UnixDialer, COALESCE_MAX_BYTES, COALESCE_MAX_FRAMES,
};
