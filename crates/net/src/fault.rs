//! Deterministic fault injection for transport streams.
//!
//! [`FaultyStream`] wraps any [`NetStream`] and scripts failures at exact
//! byte offsets: mid-frame disconnects, short reads/writes, and stalls —
//! no sleeps, no timing, no real-network flakiness. Combined with the
//! in-memory pipes of [`mem`](crate::mem), an entire tracer → broker →
//! analyzer pipeline can be driven through injected faults and still
//! produce a bit-reproducible outcome.
//!
//! Offsets count bytes *through this wrapper* (per direction), so a
//! scripted cut lands on the same frame byte on every run regardless of
//! thread scheduling.

use crate::stream::{Dialer, NetStream};
use std::collections::VecDeque;
use std::io::{self, Read, Write};

/// The classic xorshift64 generator — tiny, seedable, and good enough to
/// scatter fault offsets and chunk sizes reproducibly.
#[derive(Debug, Clone)]
pub struct XorShift(u64);

impl XorShift {
    /// Seeds the generator (zero is mapped to a fixed odd constant).
    pub fn new(seed: u64) -> Self {
        XorShift(if seed == 0 {
            0x9E37_79B9_7F4A_7C15
        } else {
            seed
        })
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }

    /// Uniform-ish value in `1..=max`.
    pub fn chunk(&mut self, max: usize) -> usize {
        1 + (self.next_u64() as usize) % max.max(1)
    }
}

/// A scripted failure plan for one connection.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Tear the connection down once this many bytes have been written
    /// through the wrapper (the write reaching the offset fails).
    pub cut_after_writes: Option<u64>,
    /// Tear the connection down once this many bytes have been read.
    pub cut_after_reads: Option<u64>,
    /// Chunk every read/write to `1..=max` bytes using the seeded
    /// generator — forces partial-IO handling on every code path.
    pub jitter: Option<Jitter>,
    /// From write offset `at`, hold written bytes back from the peer until
    /// `ops` further write calls have occurred, then release them in
    /// order — a stall that resolves without wall-clock time.
    pub stall: Option<Stall>,
}

/// Seeded short-read/short-write chunking.
#[derive(Debug, Clone)]
pub struct Jitter {
    /// Generator seed.
    pub seed: u64,
    /// Largest chunk a single read/write may move.
    pub max_chunk: usize,
}

/// A scripted write-side stall.
#[derive(Debug, Clone)]
pub struct Stall {
    /// Write offset at which the stall begins.
    pub at: u64,
    /// Number of subsequent write calls the bytes are held for.
    pub ops: u32,
}

impl FaultPlan {
    /// A plan that injects nothing (the identity wrapper).
    pub fn clean() -> Self {
        FaultPlan::default()
    }

    /// Cuts the connection after `at` written bytes.
    pub fn cut_write_at(at: u64) -> Self {
        FaultPlan {
            cut_after_writes: Some(at),
            ..FaultPlan::default()
        }
    }

    /// Cuts the connection after `at` read bytes.
    pub fn cut_read_at(at: u64) -> Self {
        FaultPlan {
            cut_after_reads: Some(at),
            ..FaultPlan::default()
        }
    }

    /// Chunks all IO with the given seed (short reads and writes).
    pub fn jitter(seed: u64, max_chunk: usize) -> Self {
        FaultPlan {
            jitter: Some(Jitter { seed, max_chunk }),
            ..FaultPlan::default()
        }
    }
}

/// A [`NetStream`] wrapper executing a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultyStream<S> {
    inner: S,
    plan: FaultPlan,
    rng: Option<XorShift>,
    written: u64,
    read: u64,
    cut: bool,
    held: VecDeque<u8>,
    stall_ops_left: u32,
    stall_done: bool,
}

impl<S: NetStream> FaultyStream<S> {
    /// Wraps `inner` under `plan`.
    pub fn new(inner: S, plan: FaultPlan) -> Self {
        let rng = plan.jitter.as_ref().map(|j| XorShift::new(j.seed));
        let stall_ops_left = plan.stall.as_ref().map_or(0, |s| s.ops);
        FaultyStream {
            inner,
            plan,
            rng,
            written: 0,
            read: 0,
            cut: false,
            held: VecDeque::new(),
            stall_ops_left,
            stall_done: false,
        }
    }

    /// Bytes written through the wrapper so far.
    pub fn bytes_written(&self) -> u64 {
        self.written
    }

    /// Bytes read through the wrapper so far.
    pub fn bytes_read(&self) -> u64 {
        self.read
    }

    fn trip(&mut self) -> io::Error {
        self.cut = true;
        self.inner.shutdown_stream();
        io::Error::new(io::ErrorKind::ConnectionReset, "injected cut")
    }

    fn release_stall(&mut self) -> io::Result<()> {
        while let Some(&b) = self.held.front() {
            match self.inner.write(&[b]) {
                Ok(0) => {
                    return Err(io::Error::new(
                        io::ErrorKind::WriteZero,
                        "stalled byte refused",
                    ))
                }
                Ok(_) => {
                    self.held.pop_front();
                }
                Err(e) => return Err(e),
            }
        }
        self.stall_done = true;
        Ok(())
    }
}

impl<S: NetStream> Read for FaultyStream<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        if self.cut {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected cut",
            ));
        }
        if let Some(cut_at) = self.plan.cut_after_reads {
            if self.read >= cut_at {
                return Err(self.trip());
            }
        }
        let mut allowed = buf.len();
        if let Some(rng) = &mut self.rng {
            let max = self
                .plan
                .jitter
                .as_ref()
                .expect("rng implies jitter")
                .max_chunk;
            allowed = allowed.min(rng.chunk(max));
        }
        if let Some(cut_at) = self.plan.cut_after_reads {
            allowed = allowed.min((cut_at - self.read) as usize);
        }
        let take = allowed.max(1).min(buf.len());
        let n = self.inner.read(&mut buf[..take])?;
        self.read += n as u64;
        Ok(n)
    }
}

impl<S: NetStream> Write for FaultyStream<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        if self.cut {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "injected cut",
            ));
        }
        if buf.is_empty() {
            return Ok(0);
        }
        if let Some(cut_at) = self.plan.cut_after_writes {
            if self.written >= cut_at {
                return Err(self.trip());
            }
        }
        let mut allowed = buf.len();
        if let Some(rng) = &mut self.rng {
            let max = self
                .plan
                .jitter
                .as_ref()
                .expect("rng implies jitter")
                .max_chunk;
            allowed = allowed.min(rng.chunk(max));
        }
        if let Some(cut_at) = self.plan.cut_after_writes {
            allowed = allowed.min((cut_at - self.written) as usize).max(1);
        }
        // Stall window: accept bytes but hold them back from the peer.
        let stalling = !self.stall_done
            && self
                .plan
                .stall
                .as_ref()
                .is_some_and(|s| self.written >= s.at);
        if stalling {
            self.held.extend(&buf[..allowed]);
            self.written += allowed as u64;
            self.stall_ops_left = self.stall_ops_left.saturating_sub(1);
            if self.stall_ops_left == 0 {
                self.release_stall()?;
            }
            return Ok(allowed);
        }
        if !self.held.is_empty() {
            self.release_stall()?;
        }
        let n = self.inner.write(&buf[..allowed])?;
        self.written += n as u64;
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl<S: NetStream> NetStream for FaultyStream<S> {
    fn shutdown_stream(&mut self) {
        self.inner.shutdown_stream();
    }

    /// Deliberately `false` (the trait default): a coalesced flush over a
    /// faulty stream must take the staging path so every byte funnels
    /// through [`write`](Self::write)'s cut/jitter/stall accounting —
    /// which is also what lets scripted cuts land *inside* a coalesced
    /// batch at exact byte offsets.
    fn vectored_writes(&self) -> bool {
        false
    }
}

/// A [`Dialer`] handing out connections wrapped under a queue of fault
/// plans: the first dial gets the first plan, the second the second, and
/// dials past the script run clean. This is how a test scripts "the
/// connection dies mid-frame, the retry succeeds".
pub struct FaultyDialer<D> {
    inner: D,
    plans: std::sync::Mutex<VecDeque<FaultPlan>>,
}

impl<D: Dialer> FaultyDialer<D> {
    /// Wraps `inner`; successive dials consume `plans` in order.
    pub fn new(inner: D, plans: Vec<FaultPlan>) -> Self {
        FaultyDialer {
            inner,
            plans: std::sync::Mutex::new(plans.into()),
        }
    }
}

impl<D: Dialer> Dialer for FaultyDialer<D> {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        let stream = self.inner.dial()?;
        let plan = self
            .plans
            .lock()
            .expect("plans lock")
            .pop_front()
            .unwrap_or_default();
        Ok(Box::new(FaultyStream::new(stream, plan)))
    }
}

impl NetStream for Box<dyn NetStream> {
    fn shutdown_stream(&mut self) {
        (**self).shutdown_stream();
    }

    fn vectored_writes(&self) -> bool {
        (**self).vectored_writes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::mem_pair;

    #[test]
    fn clean_plan_is_transparent() {
        let (a, mut b) = mem_pair();
        let mut faulty = FaultyStream::new(a, FaultPlan::clean());
        faulty.write_all(b"hello").unwrap();
        let mut buf = [0u8; 5];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"hello");
    }

    #[test]
    fn cut_fails_the_write_spanning_the_offset() {
        let (a, mut b) = mem_pair();
        let mut faulty = FaultyStream::new(a, FaultPlan::cut_write_at(3));
        assert_eq!(faulty.write(b"abc").unwrap(), 3);
        let err = faulty.write(b"d").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        // Peer drains pre-cut bytes, then sees EOF.
        let mut out = Vec::new();
        b.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abc");
    }

    #[test]
    fn cut_lands_mid_buffer() {
        let (a, _b) = mem_pair();
        let mut faulty = FaultyStream::new(a, FaultPlan::cut_write_at(2));
        // A 5-byte write is truncated at the cut offset, then fails.
        assert_eq!(faulty.write(b"abcde").unwrap(), 2);
        assert!(faulty.write(b"cde").is_err());
        assert!(faulty.write(b"x").is_err(), "cut is permanent");
    }

    #[test]
    fn jitter_forces_short_writes_deterministically() {
        let run = |seed| {
            let (a, mut b) = mem_pair();
            let mut faulty = FaultyStream::new(a, FaultPlan::jitter(seed, 3));
            let mut sizes = Vec::new();
            let mut remaining: &[u8] = b"some longer payload crossing chunks";
            while !remaining.is_empty() {
                let n = faulty.write(remaining).unwrap();
                sizes.push(n);
                remaining = &remaining[n..];
            }
            let mut buf = vec![0u8; 35];
            b.read_exact(&mut buf).unwrap();
            assert_eq!(buf, b"some longer payload crossing chunks");
            sizes
        };
        let first = run(42);
        assert!(first.iter().all(|&n| n <= 3));
        assert!(first.len() > 11, "chunking actually happened: {first:?}");
        assert_eq!(first, run(42), "same seed, same schedule");
        assert_ne!(first, run(43), "different seed, different schedule");
    }

    #[test]
    fn stall_holds_bytes_then_releases_in_order() {
        let (a, mut b) = mem_pair();
        let mut faulty = FaultyStream::new(
            a,
            FaultPlan {
                stall: Some(Stall { at: 2, ops: 2 }),
                ..FaultPlan::default()
            },
        );
        faulty.write_all(b"ab").unwrap(); // before the stall window
        faulty.write_all(b"cd").unwrap(); // held (op 1)
        let mut buf = [0u8; 2];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ab");
        faulty.write_all(b"ef").unwrap(); // held, then released (op 2)
        let mut rest = [0u8; 4];
        b.read_exact(&mut rest).unwrap();
        assert_eq!(&rest, b"cdef", "held bytes arrive in order");
    }

    #[test]
    fn read_cut_trips_at_offset() {
        let (mut a, b) = mem_pair();
        a.write_all(b"0123456789").unwrap();
        let mut faulty = FaultyStream::new(b, FaultPlan::cut_read_at(4));
        let mut buf = [0u8; 10];
        let mut got = 0;
        loop {
            match faulty.read(&mut buf[got..]) {
                Ok(n) => got += n,
                Err(e) => {
                    assert_eq!(e.kind(), io::ErrorKind::ConnectionReset);
                    break;
                }
            }
        }
        assert_eq!(got, 4, "exactly the scripted bytes arrive before the cut");
    }

    #[test]
    fn faulty_dialer_scripts_successive_connections() {
        let listener = crate::mem::MemListener::new();
        let dialer = FaultyDialer::new(listener.dialer(), vec![FaultPlan::cut_write_at(0)]);
        let mut first = dialer.dial().unwrap();
        assert!(first.write(b"x").is_err(), "first connection cut at byte 0");
        let mut second = dialer.dial().unwrap();
        assert_eq!(second.write(b"x").unwrap(), 1, "second connection clean");
    }
}
