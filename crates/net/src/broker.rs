//! The threaded broker: tracers announce and publish, analyzers
//! subscribe, the broker fans data frames out through a bounded replay
//! ring.
//!
//! Threading model: one accept thread; one reader thread per connection;
//! one writer thread per subscriber walking its own [`RingCursor`]. The
//! routing/dedup brain is the pure [`Registry`]/[`SeqDedup`] pair from
//! [`registry`](crate::registry) — the threads only move bytes.
//!
//! Delivery guarantees (the reconnect invariant):
//!
//! - The broker dedups inbound data frames per origin, so a tracer
//!   resending its queue after a reconnect cannot duplicate a frame in
//!   the ring.
//! - A subscriber's `Subscribe` carries resume positions; its writer
//!   replays retained frames strictly *after* those positions, so a
//!   reconnecting analyzer receives exactly the frames it missed.
//! - Data sequence numbers start at 1; 0 means "nothing received yet".

use crate::frame::{FrameDecoder, FrameKind, RawFrame};
use crate::msg::{decode_announce, decode_hello, decode_subscribe, Role, SubscribeSpec};
use crate::queue::{ReplayFrame, ReplayRing, RingCursor};
use crate::registry::{Freshness, PeerId, Registry, SeqDedup};
use crate::stream::{
    write_coalesced, Acceptor, SplitStream, COALESCE_MAX_BYTES, COALESCE_MAX_FRAMES,
};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Broker tuning knobs.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Frames retained for replay to late or reconnecting subscribers.
    /// When full the oldest frame is evicted (drop-oldest, counted).
    pub ring_capacity: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            ring_capacity: 4096,
        }
    }
}

/// The broker's hint-routing state: the latest full-state reduction
/// snapshot per analyzer shard (keyed by the shard's synthetic hint
/// origin) plus the live tracer-side hint subscribers.
///
/// Because snapshots are full-state and idempotent, retaining only the
/// latest per shard suffices: a late or reconnecting subscriber replayed
/// just the latest snapshots converges to exactly the state an
/// uninterrupted subscriber holds.
#[derive(Default)]
struct HintHub {
    /// Hint origin → (seq, fully encoded `Hint` envelope).
    latest: BTreeMap<u32, (u64, Arc<[u8]>)>,
    /// Live hint subscribers. The hub lock guards only this list and
    /// `latest`; actual socket writes happen under each subscriber's own
    /// writer mutex, so one stalled tracer cannot freeze fan-out to the
    /// others or block new `HintSub` handshakes (head-of-line fix).
    subs: Vec<HintSub>,
    /// Set on broker shutdown. A hint subscription arriving afterwards is
    /// rejected (its connection closed) instead of registered: the accept
    /// thread may outlive shutdown on kernel listeners, and a sub
    /// registered after the shutdown sweep would block its reader on a
    /// stream nobody will ever write to or close.
    closed: bool,
}

/// A hint subscriber's shareable write half: publishers lock this
/// per-subscriber mutex — never the hub lock — while writing, so writes
/// to independent subscribers proceed concurrently and a stall affects
/// only its own connection.
type HintWriter = Arc<Mutex<Box<dyn SplitStream>>>;

/// One live hint subscriber.
struct HintSub {
    peer: PeerId,
    /// Write half; see [`HintWriter`].
    writer: HintWriter,
    /// A second handle to the same connection used by shutdown: closing
    /// via the kernel/pipe layer needs no writer mutex, so it unwedges a
    /// publisher blocked mid-write on this subscriber.
    closer: Box<dyn SplitStream>,
}

struct Shared {
    registry: Mutex<Registry>,
    /// Bumped (under the registry lock) whenever the origin → edges map
    /// changes — announcements and tracer disconnects. Subscriber writers
    /// compare it against their cached fan-out filter's generation and
    /// rebuild the cache lazily, so the steady-state data path never
    /// takes the registry lock.
    registry_gen: AtomicU64,
    ring: ReplayRing,
    dedup: Mutex<SeqDedup>,
    hints: Mutex<HintHub>,
    /// Data frames written to subscriber connections.
    delivered: AtomicU64,
    next_peer: AtomicU64,
}

/// A handle to a running broker. Dropping it shuts the broker down.
pub struct BrokerHandle {
    shared: Arc<Shared>,
    acceptor: Arc<dyn Acceptor>,
}

impl BrokerHandle {
    /// Spawns a broker serving connections from `acceptor`.
    pub fn spawn(acceptor: Arc<dyn Acceptor>, config: BrokerConfig) -> BrokerHandle {
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry::new()),
            registry_gen: AtomicU64::new(0),
            ring: ReplayRing::new(config.ring_capacity),
            dedup: Mutex::new(SeqDedup::new()),
            hints: Mutex::new(HintHub::default()),
            delivered: AtomicU64::new(0),
            next_peer: AtomicU64::new(1),
        });
        {
            let shared = Arc::clone(&shared);
            let acceptor = Arc::clone(&acceptor);
            thread::spawn(move || accept_loop(&*acceptor, &shared));
        }
        BrokerHandle { shared, acceptor }
    }

    /// Stops accepting and wakes every subscriber writer so their threads
    /// exit. Live reader threads exit as their peers disconnect.
    pub fn shutdown(&self) {
        self.acceptor.close_acceptor();
        self.shared.ring.close();
        let subs = {
            let mut hub = self.shared.hints.lock().expect("hint lock");
            hub.closed = true;
            std::mem::take(&mut hub.subs)
        };
        // Close via the dedicated closer handles, outside the hub lock and
        // without touching the writer mutexes — a publisher blocked
        // mid-write on a stalled subscriber is unwedged by the close.
        for mut sub in subs {
            sub.closer.shutdown_stream();
        }
    }

    /// Frames evicted from the replay ring under backpressure.
    pub fn ring_dropped(&self) -> u64 {
        self.shared.ring.dropped()
    }

    /// Inbound data frames rejected as per-origin duplicates.
    pub fn duplicates_rejected(&self) -> u64 {
        self.shared.dedup.lock().expect("dedup lock").duplicates
    }

    /// Data frames written to subscriber connections.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::Relaxed)
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .registry
            .lock()
            .expect("registry lock")
            .subscriber_count()
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(acceptor: &dyn Acceptor, shared: &Arc<Shared>) {
    while let Ok(conn) = acceptor.accept_conn() {
        let peer = shared.next_peer.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        thread::spawn(move || serve_conn(conn, peer, &shared));
    }
}

/// Per-connection reader loop: validate envelopes, dispatch, clean up on
/// any exit path (EOF, IO error, framing error, protocol misuse).
///
/// Decoding is via [`FrameDecoder::next_raw`]: every frame is validated
/// (header bounds + CRC over header and payload) but *not* decoded —
/// data frames relay their original bytes, only control frames parse
/// their payloads.
fn serve_conn(mut conn: Box<dyn SplitStream>, peer: PeerId, shared: &Arc<Shared>) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut role: Option<Role> = None;
    'conn: loop {
        loop {
            match dec.next_raw() {
                Ok(Some(frame)) => {
                    if handle_frame(&frame, &mut conn, peer, &mut role, shared).is_err() {
                        conn.shutdown_stream();
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing/corruption error: the stream position is
                    // untrustworthy — drop the connection; the peer
                    // reconnects and resumes.
                    conn.shutdown_stream();
                    break 'conn;
                }
            }
        }
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => dec.feed(&buf[..n]),
            Err(_) => break,
        }
    }
    match role {
        Some(Role::Tracer { node }) => {
            let mut registry = shared.registry.lock().expect("registry lock");
            registry.tracer_disconnected(node);
            // Origin → edges changed; invalidate cached fan-out filters.
            shared.registry_gen.fetch_add(1, Ordering::Release);
        }
        Some(Role::Analyzer { .. }) => shared
            .registry
            .lock()
            .expect("registry lock")
            .subscriber_disconnected(peer),
        Some(Role::HintSub { .. }) => shared
            .hints
            .lock()
            .expect("hint lock")
            .subs
            .retain(|s| s.peer != peer),
        None => {}
    }
    // Wake a writer blocked on this connection, if any.
    conn.shutdown_stream();
}

fn handle_frame(
    frame: &RawFrame,
    conn: &mut Box<dyn SplitStream>,
    peer: PeerId,
    role: &mut Option<Role>,
    shared: &Arc<Shared>,
) -> Result<(), ()> {
    match frame.kind {
        FrameKind::Hello => {
            *role = Some(decode_hello(frame.payload()).map_err(|_| ())?);
            Ok(())
        }
        FrameKind::Announce => {
            let Some(Role::Tracer { node }) = *role else {
                return Err(());
            };
            let edges = decode_announce(frame.payload()).map_err(|_| ())?;
            let mut registry = shared.registry.lock().expect("registry lock");
            registry.announce(node, &edges);
            // Origin → edges changed; invalidate cached fan-out filters.
            shared.registry_gen.fetch_add(1, Ordering::Release);
            Ok(())
        }
        FrameKind::Subscribe => match *role {
            Some(Role::Analyzer { .. }) => {
                let sub = decode_subscribe(frame.payload()).map_err(|_| ())?;
                shared
                    .registry
                    .lock()
                    .expect("registry lock")
                    .subscribe(peer, sub.spec.clone());
                let cursor = shared.ring.cursor_resuming(&sub.resume);
                let writer = conn.try_clone_stream().map_err(|_| ())?;
                let resume: BTreeMap<u32, u64> = sub.resume.iter().copied().collect();
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    subscriber_writer(writer, cursor, resume, sub.spec, &shared);
                });
                Ok(())
            }
            Some(Role::HintSub { .. }) => {
                // A tracer subscribing to reduction hints: replay the
                // latest stored snapshot per shard (skipping what the
                // subscriber already holds), then keep the write half for
                // live fan-out. Replay writes happen *outside* the hub
                // lock; the loop re-checks for snapshots that arrived
                // while writing and registers only once caught up, so no
                // snapshot is missed and no other subscriber stalls
                // behind this handshake.
                let sub = decode_subscribe(frame.payload()).map_err(|_| ())?;
                let mut have: BTreeMap<u32, u64> = sub.resume.iter().copied().collect();
                let writer = Arc::new(Mutex::new(conn.try_clone_stream().map_err(|_| ())?));
                let mut closer = Some(conn.try_clone_stream().map_err(|_| ())?);
                loop {
                    let pending: Vec<(u32, u64, Arc<[u8]>)> = {
                        let mut hub = shared.hints.lock().expect("hint lock");
                        if hub.closed {
                            return Err(());
                        }
                        let pending: Vec<_> = hub
                            .latest
                            .iter()
                            .filter(|(origin, (seq, _))| {
                                *seq > have.get(origin).copied().unwrap_or(0)
                            })
                            .map(|(origin, (seq, bytes))| (*origin, *seq, Arc::clone(bytes)))
                            .collect();
                        if pending.is_empty() {
                            hub.subs.push(HintSub {
                                peer,
                                writer: Arc::clone(&writer),
                                closer: closer.take().expect("closer consumed once"),
                            });
                            return Ok(());
                        }
                        pending
                    };
                    for (origin, seq, bytes) in pending {
                        let mut w = writer.lock().expect("hint writer lock");
                        w.write_all(&bytes).map_err(|_| ())?;
                        drop(w);
                        have.insert(origin, seq);
                    }
                }
            }
            _ => Err(()),
        },
        FrameKind::DataBatch | FrameKind::DataSeries | FrameKind::Backfill => {
            let Some(Role::Tracer { .. }) = *role else {
                return Err(());
            };
            let fresh = shared
                .dedup
                .lock()
                .expect("dedup lock")
                .offer(frame.origin, frame.seq);
            if fresh == Freshness::Fresh {
                // Pass-through relay: the envelope already carries a CRC
                // over header and payload that this decoder verified, so
                // the validated receive bytes are pushed to the ring
                // as-is — no payload decode, no re-encode, no copy.
                shared.ring.push(ReplayFrame {
                    origin: frame.origin,
                    seq: frame.seq,
                    bytes: Arc::clone(&frame.bytes),
                });
            }
            Ok(())
        }
        FrameKind::Hint => {
            let Some(Role::Analyzer { .. }) = *role else {
                return Err(());
            };
            let fresh = shared
                .dedup
                .lock()
                .expect("dedup lock")
                .offer(frame.origin, frame.seq);
            if fresh == Freshness::Fresh {
                // Pass-through for hints too: store and fan out the
                // validated receive bytes.
                let bytes = Arc::clone(&frame.bytes);
                let targets: Vec<(PeerId, HintWriter)> = {
                    let mut hub = shared.hints.lock().expect("hint lock");
                    hub.latest
                        .insert(frame.origin, (frame.seq, Arc::clone(&bytes)));
                    hub.subs
                        .iter()
                        .map(|s| (s.peer, Arc::clone(&s.writer)))
                        .collect()
                };
                // Writes go through each subscriber's own mutex with the
                // hub lock released: a stalled subscriber delays only
                // itself. Dead subscribers are swept afterwards; they
                // re-subscribe with resume positions and get the latest
                // snapshot back.
                let mut dead = Vec::new();
                for (peer, sub_writer) in targets {
                    let mut w = sub_writer.lock().expect("hint writer lock");
                    if w.write_all(&bytes).is_err() {
                        dead.push(peer);
                    }
                }
                if !dead.is_empty() {
                    let mut hub = shared.hints.lock().expect("hint lock");
                    hub.subs.retain(|s| !dead.contains(&s.peer));
                }
            }
            Ok(())
        }
    }
}

/// A subscriber's fan-out filter with a generation-validated cache.
///
/// `Edges` subscriptions need the registry's origin → edges map to decide
/// whether a frame is wanted. Taking the registry lock per frame would
/// serialize every subscriber writer against announce traffic, so each
/// writer memoizes `origin → wanted` and only falls back to the lock on a
/// cache miss. The cache is invalidated wholesale whenever
/// `Shared::registry_gen` moves — announcements and tracer disconnects
/// bump it under the registry lock, so any mutation after the generation
/// was sampled forces a rebuild on the next frame.
struct FanoutFilter {
    spec: SubscribeSpec,
    cache: BTreeMap<u32, bool>,
    generation: u64,
}

impl FanoutFilter {
    fn new(spec: SubscribeSpec) -> Self {
        FanoutFilter {
            spec,
            cache: BTreeMap::new(),
            generation: u64::MAX,
        }
    }

    fn wanted(&mut self, origin: u32, shared: &Shared) -> bool {
        let want = match &self.spec {
            SubscribeSpec::All => return true,
            SubscribeSpec::Edges(want) => want,
        };
        let generation = shared.registry_gen.load(Ordering::Acquire);
        if generation != self.generation {
            self.cache.clear();
            self.generation = generation;
        }
        if let Some(&wanted) = self.cache.get(&origin) {
            return wanted;
        }
        let wanted = {
            let registry = shared.registry.lock().expect("registry lock");
            let have = registry.edges_of(origin);
            want.iter().any(|e| have.contains(e))
        };
        self.cache.insert(origin, wanted);
        wanted
    }
}

/// Fan-out loop for one subscriber: walk the ring, skip frames the
/// subscriber already holds (resume positions) or did not ask for (spec),
/// write the rest. Exits when the ring closes or the connection dies.
///
/// Frames are drained in coalesced batches: one blocking read, then
/// non-blocking reads extend the batch until the ring runs dry or the
/// batch reaches [`COALESCE_MAX_BYTES`]/[`COALESCE_MAX_FRAMES`], and the
/// whole batch is flushed with one vectored write (or one staged write on
/// streams without genuine vectored support). Batches never wait for
/// more data — a lone frame flushes immediately — so coalescing trades
/// zero latency for fewer syscalls.
fn subscriber_writer(
    mut stream: Box<dyn SplitStream>,
    mut cursor: RingCursor,
    resume: BTreeMap<u32, u64>,
    spec: SubscribeSpec,
    shared: &Arc<Shared>,
) {
    let vectored = stream.vectored_writes();
    let mut filter = FanoutFilter::new(spec);
    let mut batch: Vec<ReplayFrame> = Vec::new();
    let mut staging: Vec<u8> = Vec::new();
    'conn: while let Some(first) = cursor.next_blocking() {
        batch.clear();
        let mut bytes = 0usize;
        let mut next = Some(first);
        loop {
            if let Some(frame) = next.take() {
                let skip = frame.seq <= resume.get(&frame.origin).copied().unwrap_or(0)
                    || !filter.wanted(frame.origin, shared);
                if !skip {
                    bytes += frame.bytes.len();
                    batch.push(frame);
                }
            }
            if bytes >= COALESCE_MAX_BYTES || batch.len() >= COALESCE_MAX_FRAMES {
                break;
            }
            match cursor.try_next() {
                Some(frame) => next = Some(frame),
                None => break,
            }
        }
        if batch.is_empty() {
            continue;
        }
        let bufs: Vec<&[u8]> = batch.iter().map(|f| f.bytes.as_ref()).collect();
        let (written, err) = write_coalesced(&mut stream, vectored, &bufs, &mut staging);
        // Count exactly the frames that were *fully* written — the
        // delivery counter feeds the pipeline's deterministic barrier, so
        // a frame cut mid-envelope (discarded by the peer's decoder and
        // replayed on resubscribe) must not be counted here.
        let mut delivered = 0u64;
        let mut acc = 0usize;
        for frame in &batch {
            acc += frame.bytes.len();
            if acc > written {
                break;
            }
            delivered += 1;
        }
        if delivered > 0 {
            shared.delivered.fetch_add(delivered, Ordering::Relaxed);
        }
        if err.is_some() {
            break 'conn;
        }
    }
    stream.shutdown_stream();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{encode_frame, encode_frame_to_vec, Frame};
    use crate::mem::MemListener;
    use crate::msg::{encode_announce, encode_hello, encode_subscribe, Subscribe};
    use crate::stream::{Dialer, NetStream};

    fn data_frame(origin: u32, seq: u64, byte: u8) -> Vec<u8> {
        encode_frame_to_vec(FrameKind::DataBatch, origin, seq, &[byte])
    }

    fn tracer_hello(node: u32) -> Vec<u8> {
        encode_frame_to_vec(
            FrameKind::Hello,
            node,
            0,
            &encode_hello(Role::Tracer { node }),
        )
    }

    fn subscribe_all(resume: Vec<(u32, u64)>) -> Vec<u8> {
        let mut out = encode_frame_to_vec(
            FrameKind::Hello,
            0,
            0,
            &encode_hello(Role::Analyzer { shard: 0, of: 1 }),
        );
        encode_frame(
            FrameKind::Subscribe,
            0,
            0,
            &encode_subscribe(&Subscribe {
                spec: SubscribeSpec::All,
                resume,
            }),
            &mut out,
        );
        out
    }

    fn read_data(conn: &mut Box<dyn NetStream>, n: usize) -> Vec<Frame> {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        while out.len() < n {
            let got = conn.read(&mut buf).expect("subscriber read");
            assert!(got > 0, "unexpected EOF from broker");
            dec.feed(&buf[..got]);
            while let Some(frame) = dec.next_frame().expect("valid frame") {
                out.push(frame);
            }
        }
        out
    }

    #[test]
    fn publishes_reach_subscriber() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(7);
        bytes.extend(encode_frame_to_vec(
            FrameKind::Announce,
            7,
            0,
            &encode_announce(&[(7, 8)]),
        ));
        bytes.extend(data_frame(7, 1, 0xAA));
        bytes.extend(data_frame(7, 2, 0xBB));
        tracer.write_all(&bytes).unwrap();

        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![])).unwrap();
        let frames = read_data(&mut sub, 2);
        assert_eq!(frames[0].seq, 1);
        assert_eq!(frames[0].payload.as_ref(), &[0xAA]);
        assert_eq!(frames[1].seq, 2);
        assert_eq!(broker.delivered(), 2);
        broker.shutdown();
    }

    #[test]
    fn resume_positions_suppress_replay() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(3);
        for seq in 1..=3 {
            bytes.extend(data_frame(3, seq, seq as u8));
        }
        tracer.write_all(&bytes).unwrap();

        // Subscriber already holds seq 1 and 2 of origin 3.
        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![(3, 2)])).unwrap();
        let frames = read_data(&mut sub, 1);
        assert_eq!(frames[0].seq, 3, "only the missed frame is replayed");
        broker.shutdown();
    }

    #[test]
    fn tracer_resend_is_not_double_delivered() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![])).unwrap();

        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(5);
        bytes.extend(data_frame(5, 1, 1));
        bytes.extend(data_frame(5, 2, 2));
        tracer.write_all(&bytes).unwrap();
        tracer.shutdown_stream();

        // Reconnect and conservatively resend everything plus one new.
        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(5);
        for seq in 1..=3 {
            bytes.extend(data_frame(5, seq, seq as u8));
        }
        tracer.write_all(&bytes).unwrap();

        let frames = read_data(&mut sub, 3);
        let seqs: Vec<u64> = frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "each frame delivered exactly once");
        assert_eq!(broker.duplicates_rejected(), 2);
        broker.shutdown();
    }

    #[test]
    fn corrupt_stream_drops_connection_not_broker() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut bad = dialer.dial().unwrap();
        bad.write_all(b"not a frame at all").unwrap();
        // The broker shuts the corrupt connection; our next read sees EOF.
        let mut buf = [0u8; 16];
        loop {
            match bad.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }

        // The broker still serves fresh connections.
        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(1);
        bytes.extend(data_frame(1, 1, 9));
        tracer.write_all(&bytes).unwrap();
        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![])).unwrap();
        let frames = read_data(&mut sub, 1);
        assert_eq!(frames[0].payload.as_ref(), &[9]);
        broker.shutdown();
    }
}
