//! The threaded broker: tracers announce and publish, analyzers
//! subscribe, the broker fans data frames out through a bounded replay
//! ring.
//!
//! Threading model: one accept thread; one reader thread per connection;
//! one writer thread per subscriber walking its own [`RingCursor`]. The
//! routing/dedup brain is the pure [`Registry`]/[`SeqDedup`] pair from
//! [`registry`](crate::registry) — the threads only move bytes.
//!
//! Delivery guarantees (the reconnect invariant):
//!
//! - The broker dedups inbound data frames per origin, so a tracer
//!   resending its queue after a reconnect cannot duplicate a frame in
//!   the ring.
//! - A subscriber's `Subscribe` carries resume positions; its writer
//!   replays retained frames strictly *after* those positions, so a
//!   reconnecting analyzer receives exactly the frames it missed.
//! - Data sequence numbers start at 1; 0 means "nothing received yet".

use crate::frame::{encode_frame_to_vec, Frame, FrameDecoder, FrameKind};
use crate::msg::{decode_announce, decode_hello, decode_subscribe, Role, SubscribeSpec};
use crate::queue::{ReplayFrame, ReplayRing, RingCursor};
use crate::registry::{Freshness, PeerId, Registry, SeqDedup};
use crate::stream::{Acceptor, SplitStream};
use std::collections::BTreeMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread;

/// Broker tuning knobs.
#[derive(Debug, Clone)]
pub struct BrokerConfig {
    /// Frames retained for replay to late or reconnecting subscribers.
    /// When full the oldest frame is evicted (drop-oldest, counted).
    pub ring_capacity: usize,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        BrokerConfig {
            ring_capacity: 4096,
        }
    }
}

/// The broker's hint-routing state: the latest full-state reduction
/// snapshot per analyzer shard (keyed by the shard's synthetic hint
/// origin) plus the live tracer-side hint subscribers.
///
/// Because snapshots are full-state and idempotent, retaining only the
/// latest per shard suffices: a late or reconnecting subscriber replayed
/// just the latest snapshots converges to exactly the state an
/// uninterrupted subscriber holds.
#[derive(Default)]
struct HintHub {
    /// Hint origin → (seq, fully encoded `Hint` envelope).
    latest: BTreeMap<u32, (u64, Arc<Vec<u8>>)>,
    /// Live hint subscribers (write halves), keyed by peer.
    subs: Vec<(PeerId, Box<dyn SplitStream>)>,
    /// Set on broker shutdown. A hint subscription arriving afterwards is
    /// rejected (its connection closed) instead of registered: the accept
    /// thread may outlive shutdown on kernel listeners, and a sub
    /// registered after the shutdown sweep would block its reader on a
    /// stream nobody will ever write to or close.
    closed: bool,
}

struct Shared {
    registry: Mutex<Registry>,
    ring: ReplayRing,
    dedup: Mutex<SeqDedup>,
    hints: Mutex<HintHub>,
    /// Data frames written to subscriber connections.
    delivered: AtomicU64,
    next_peer: AtomicU64,
}

/// A handle to a running broker. Dropping it shuts the broker down.
pub struct BrokerHandle {
    shared: Arc<Shared>,
    acceptor: Arc<dyn Acceptor>,
}

impl BrokerHandle {
    /// Spawns a broker serving connections from `acceptor`.
    pub fn spawn(acceptor: Arc<dyn Acceptor>, config: BrokerConfig) -> BrokerHandle {
        let shared = Arc::new(Shared {
            registry: Mutex::new(Registry::new()),
            ring: ReplayRing::new(config.ring_capacity),
            dedup: Mutex::new(SeqDedup::new()),
            hints: Mutex::new(HintHub::default()),
            delivered: AtomicU64::new(0),
            next_peer: AtomicU64::new(1),
        });
        {
            let shared = Arc::clone(&shared);
            let acceptor = Arc::clone(&acceptor);
            thread::spawn(move || accept_loop(&*acceptor, &shared));
        }
        BrokerHandle { shared, acceptor }
    }

    /// Stops accepting and wakes every subscriber writer so their threads
    /// exit. Live reader threads exit as their peers disconnect.
    pub fn shutdown(&self) {
        self.acceptor.close_acceptor();
        self.shared.ring.close();
        let mut hub = self.shared.hints.lock().expect("hint lock");
        hub.closed = true;
        for (_, sub) in hub.subs.iter_mut() {
            sub.shutdown_stream();
        }
        hub.subs.clear();
    }

    /// Frames evicted from the replay ring under backpressure.
    pub fn ring_dropped(&self) -> u64 {
        self.shared.ring.dropped()
    }

    /// Inbound data frames rejected as per-origin duplicates.
    pub fn duplicates_rejected(&self) -> u64 {
        self.shared.dedup.lock().expect("dedup lock").duplicates
    }

    /// Data frames written to subscriber connections.
    pub fn delivered(&self) -> u64 {
        self.shared.delivered.load(Ordering::Relaxed)
    }

    /// Live subscriber count.
    pub fn subscriber_count(&self) -> usize {
        self.shared
            .registry
            .lock()
            .expect("registry lock")
            .subscriber_count()
    }
}

impl Drop for BrokerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(acceptor: &dyn Acceptor, shared: &Arc<Shared>) {
    while let Ok(conn) = acceptor.accept_conn() {
        let peer = shared.next_peer.fetch_add(1, Ordering::Relaxed);
        let shared = Arc::clone(shared);
        thread::spawn(move || serve_conn(conn, peer, &shared));
    }
}

/// Per-connection reader loop: decode frames, dispatch, clean up on any
/// exit path (EOF, IO error, framing error, protocol misuse).
fn serve_conn(mut conn: Box<dyn SplitStream>, peer: PeerId, shared: &Arc<Shared>) {
    let mut dec = FrameDecoder::new();
    let mut buf = vec![0u8; 16 * 1024];
    let mut role: Option<Role> = None;
    'conn: loop {
        loop {
            match dec.next_frame() {
                Ok(Some(frame)) => {
                    if handle_frame(&frame, &mut conn, peer, &mut role, shared).is_err() {
                        conn.shutdown_stream();
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing/corruption error: the stream position is
                    // untrustworthy — drop the connection; the peer
                    // reconnects and resumes.
                    conn.shutdown_stream();
                    break 'conn;
                }
            }
        }
        match conn.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => dec.feed(&buf[..n]),
            Err(_) => break,
        }
    }
    match role {
        Some(Role::Tracer { node }) => shared
            .registry
            .lock()
            .expect("registry lock")
            .tracer_disconnected(node),
        Some(Role::Analyzer { .. }) => shared
            .registry
            .lock()
            .expect("registry lock")
            .subscriber_disconnected(peer),
        Some(Role::HintSub { .. }) => shared
            .hints
            .lock()
            .expect("hint lock")
            .subs
            .retain(|(p, _)| *p != peer),
        None => {}
    }
    // Wake a writer blocked on this connection, if any.
    conn.shutdown_stream();
}

fn handle_frame(
    frame: &Frame,
    conn: &mut Box<dyn SplitStream>,
    peer: PeerId,
    role: &mut Option<Role>,
    shared: &Arc<Shared>,
) -> Result<(), ()> {
    match frame.kind {
        FrameKind::Hello => {
            *role = Some(decode_hello(&frame.payload).map_err(|_| ())?);
            Ok(())
        }
        FrameKind::Announce => {
            let Some(Role::Tracer { node }) = *role else {
                return Err(());
            };
            let edges = decode_announce(&frame.payload).map_err(|_| ())?;
            shared
                .registry
                .lock()
                .expect("registry lock")
                .announce(node, &edges);
            Ok(())
        }
        FrameKind::Subscribe => match *role {
            Some(Role::Analyzer { .. }) => {
                let sub = decode_subscribe(&frame.payload).map_err(|_| ())?;
                shared
                    .registry
                    .lock()
                    .expect("registry lock")
                    .subscribe(peer, sub.spec.clone());
                let cursor = shared.ring.cursor_resuming(&sub.resume);
                let writer = conn.try_clone_stream().map_err(|_| ())?;
                let resume: BTreeMap<u32, u64> = sub.resume.iter().copied().collect();
                let shared = Arc::clone(shared);
                thread::spawn(move || {
                    subscriber_writer(writer, cursor, resume, sub.spec, &shared);
                });
                Ok(())
            }
            Some(Role::HintSub { .. }) => {
                // A tracer subscribing to reduction hints: replay the
                // latest stored snapshot per shard (skipping what the
                // subscriber already holds), then keep the write half for
                // live fan-out.
                let sub = decode_subscribe(&frame.payload).map_err(|_| ())?;
                let resume: BTreeMap<u32, u64> = sub.resume.iter().copied().collect();
                let mut writer = conn.try_clone_stream().map_err(|_| ())?;
                let mut hub = shared.hints.lock().expect("hint lock");
                if hub.closed {
                    return Err(());
                }
                for (origin, (seq, bytes)) in &hub.latest {
                    if *seq <= resume.get(origin).copied().unwrap_or(0) {
                        continue;
                    }
                    writer.write_all(bytes).map_err(|_| ())?;
                }
                hub.subs.push((peer, writer));
                Ok(())
            }
            _ => Err(()),
        },
        FrameKind::DataBatch | FrameKind::DataSeries | FrameKind::Backfill => {
            let Some(Role::Tracer { .. }) = *role else {
                return Err(());
            };
            let fresh = shared
                .dedup
                .lock()
                .expect("dedup lock")
                .offer(frame.origin, frame.seq);
            if fresh == Freshness::Fresh {
                let bytes =
                    encode_frame_to_vec(frame.kind, frame.origin, frame.seq, &frame.payload);
                shared.ring.push(ReplayFrame {
                    origin: frame.origin,
                    seq: frame.seq,
                    bytes: Arc::new(bytes),
                });
            }
            Ok(())
        }
        FrameKind::Hint => {
            let Some(Role::Analyzer { .. }) = *role else {
                return Err(());
            };
            let fresh = shared
                .dedup
                .lock()
                .expect("dedup lock")
                .offer(frame.origin, frame.seq);
            if fresh == Freshness::Fresh {
                let bytes = Arc::new(encode_frame_to_vec(
                    FrameKind::Hint,
                    frame.origin,
                    frame.seq,
                    &frame.payload,
                ));
                let mut hub = shared.hints.lock().expect("hint lock");
                hub.latest
                    .insert(frame.origin, (frame.seq, Arc::clone(&bytes)));
                // Dead subscribers are dropped here; they re-subscribe
                // with resume positions and get the latest snapshot back.
                hub.subs
                    .retain_mut(|(_, sub)| sub.write_all(&bytes).is_ok());
            }
            Ok(())
        }
    }
}

/// Fan-out loop for one subscriber: walk the ring, skip frames the
/// subscriber already holds (resume positions) or did not ask for (spec),
/// write the rest. Exits when the ring closes or the connection dies.
fn subscriber_writer(
    mut stream: Box<dyn SplitStream>,
    mut cursor: RingCursor,
    resume: BTreeMap<u32, u64>,
    spec: SubscribeSpec,
    shared: &Arc<Shared>,
) {
    while let Some(frame) = cursor.next_blocking() {
        if frame.seq <= resume.get(&frame.origin).copied().unwrap_or(0) {
            continue;
        }
        let wanted = match &spec {
            SubscribeSpec::All => true,
            SubscribeSpec::Edges(want) => {
                let registry = shared.registry.lock().expect("registry lock");
                let have = registry.edges_of(frame.origin);
                want.iter().any(|e| have.contains(e))
            }
        };
        if !wanted {
            continue;
        }
        if stream.write_all(&frame.bytes).is_err() {
            break;
        }
        shared.delivered.fetch_add(1, Ordering::Relaxed);
    }
    stream.shutdown_stream();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::encode_frame;
    use crate::mem::MemListener;
    use crate::msg::{encode_announce, encode_hello, encode_subscribe, Subscribe};
    use crate::stream::{Dialer, NetStream};

    fn data_frame(origin: u32, seq: u64, byte: u8) -> Vec<u8> {
        encode_frame_to_vec(FrameKind::DataBatch, origin, seq, &[byte])
    }

    fn tracer_hello(node: u32) -> Vec<u8> {
        encode_frame_to_vec(
            FrameKind::Hello,
            node,
            0,
            &encode_hello(Role::Tracer { node }),
        )
    }

    fn subscribe_all(resume: Vec<(u32, u64)>) -> Vec<u8> {
        let mut out = encode_frame_to_vec(
            FrameKind::Hello,
            0,
            0,
            &encode_hello(Role::Analyzer { shard: 0, of: 1 }),
        );
        encode_frame(
            FrameKind::Subscribe,
            0,
            0,
            &encode_subscribe(&Subscribe {
                spec: SubscribeSpec::All,
                resume,
            }),
            &mut out,
        );
        out
    }

    fn read_data(conn: &mut Box<dyn NetStream>, n: usize) -> Vec<Frame> {
        let mut dec = FrameDecoder::new();
        let mut buf = [0u8; 4096];
        let mut out = Vec::new();
        while out.len() < n {
            let got = conn.read(&mut buf).expect("subscriber read");
            assert!(got > 0, "unexpected EOF from broker");
            dec.feed(&buf[..got]);
            while let Some(frame) = dec.next_frame().expect("valid frame") {
                out.push(frame);
            }
        }
        out
    }

    #[test]
    fn publishes_reach_subscriber() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(7);
        bytes.extend(encode_frame_to_vec(
            FrameKind::Announce,
            7,
            0,
            &encode_announce(&[(7, 8)]),
        ));
        bytes.extend(data_frame(7, 1, 0xAA));
        bytes.extend(data_frame(7, 2, 0xBB));
        tracer.write_all(&bytes).unwrap();

        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![])).unwrap();
        let frames = read_data(&mut sub, 2);
        assert_eq!(frames[0].seq, 1);
        assert_eq!(frames[0].payload.as_ref(), &[0xAA]);
        assert_eq!(frames[1].seq, 2);
        assert_eq!(broker.delivered(), 2);
        broker.shutdown();
    }

    #[test]
    fn resume_positions_suppress_replay() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(3);
        for seq in 1..=3 {
            bytes.extend(data_frame(3, seq, seq as u8));
        }
        tracer.write_all(&bytes).unwrap();

        // Subscriber already holds seq 1 and 2 of origin 3.
        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![(3, 2)])).unwrap();
        let frames = read_data(&mut sub, 1);
        assert_eq!(frames[0].seq, 3, "only the missed frame is replayed");
        broker.shutdown();
    }

    #[test]
    fn tracer_resend_is_not_double_delivered() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![])).unwrap();

        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(5);
        bytes.extend(data_frame(5, 1, 1));
        bytes.extend(data_frame(5, 2, 2));
        tracer.write_all(&bytes).unwrap();
        tracer.shutdown_stream();

        // Reconnect and conservatively resend everything plus one new.
        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(5);
        for seq in 1..=3 {
            bytes.extend(data_frame(5, seq, seq as u8));
        }
        tracer.write_all(&bytes).unwrap();

        let frames = read_data(&mut sub, 3);
        let seqs: Vec<u64> = frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3], "each frame delivered exactly once");
        assert_eq!(broker.duplicates_rejected(), 2);
        broker.shutdown();
    }

    #[test]
    fn corrupt_stream_drops_connection_not_broker() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let dialer = listener.dialer();

        let mut bad = dialer.dial().unwrap();
        bad.write_all(b"not a frame at all").unwrap();
        // The broker shuts the corrupt connection; our next read sees EOF.
        let mut buf = [0u8; 16];
        loop {
            match bad.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => continue,
                Err(_) => break,
            }
        }

        // The broker still serves fresh connections.
        let mut tracer = dialer.dial().unwrap();
        let mut bytes = tracer_hello(1);
        bytes.extend(data_frame(1, 1, 9));
        tracer.write_all(&bytes).unwrap();
        let mut sub = dialer.dial().unwrap();
        sub.write_all(&subscribe_all(vec![])).unwrap();
        let frames = read_data(&mut sub, 1);
        assert_eq!(frames[0].payload.as_ref(), &[9]);
        broker.shutdown();
    }
}
