//! Blocking in-memory duplex streams with socket-like semantics.
//!
//! The fault-injection suite must exercise mid-frame disconnects, short
//! reads/writes, and stalls *deterministically* — real loopback sockets
//! add scheduler- and kernel-buffer-dependent timing. These pipes behave
//! like sockets (blocking reads, EOF after close, broken-pipe writes)
//! while keeping every byte movement a plain in-process operation.
//!
//! Close semantics mirror a graceful FIN: bytes written before the close
//! remain readable; readers observe EOF only after draining them. This is
//! the property the reconnect invariant leans on — a frame fully written
//! before a cut is delivered, a partially written frame is discarded with
//! the connection.

use crate::stream::{Acceptor, Dialer, NetStream, SplitStream};
use std::collections::VecDeque;
use std::io::{self, Read, Write};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug, Default)]
struct PipeState {
    buf: VecDeque<u8>,
    closed: bool,
}

/// One direction of a duplex in-memory connection.
#[derive(Debug, Clone, Default)]
struct Pipe(Arc<(Mutex<PipeState>, Condvar)>);

impl Pipe {
    fn write(&self, bytes: &[u8]) -> io::Result<usize> {
        let (lock, cvar) = &*self.0;
        let mut state = lock.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        state.buf.extend(bytes);
        cvar.notify_all();
        Ok(bytes.len())
    }

    /// Appends every buffer under one lock acquisition — the in-memory
    /// analogue of `writev`, so coalesced flushes over mem transport are
    /// genuinely one "syscall".
    fn write_vectored(&self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        let (lock, cvar) = &*self.0;
        let mut state = lock.lock().expect("pipe lock");
        if state.closed {
            return Err(io::Error::new(io::ErrorKind::BrokenPipe, "pipe closed"));
        }
        let mut n = 0;
        for buf in bufs {
            state.buf.extend(buf.iter().copied());
            n += buf.len();
        }
        cvar.notify_all();
        Ok(n)
    }

    fn read(&self, out: &mut [u8]) -> io::Result<usize> {
        if out.is_empty() {
            return Ok(0);
        }
        let (lock, cvar) = &*self.0;
        let mut state = lock.lock().expect("pipe lock");
        while state.buf.is_empty() && !state.closed {
            state = cvar.wait(state).expect("pipe lock");
        }
        if state.buf.is_empty() {
            return Ok(0); // closed and drained: EOF
        }
        let n = out.len().min(state.buf.len());
        for slot in out.iter_mut().take(n) {
            *slot = state.buf.pop_front().expect("len checked");
        }
        Ok(n)
    }

    fn close(&self) {
        let (lock, cvar) = &*self.0;
        lock.lock().expect("pipe lock").closed = true;
        cvar.notify_all();
    }
}

/// One end of an in-memory duplex connection.
#[derive(Debug, Clone)]
pub struct MemStream {
    rx: Pipe,
    tx: Pipe,
}

/// Creates a connected pair of in-memory streams.
pub fn mem_pair() -> (MemStream, MemStream) {
    let a_to_b = Pipe::default();
    let b_to_a = Pipe::default();
    (
        MemStream {
            rx: b_to_a.clone(),
            tx: a_to_b.clone(),
        },
        MemStream {
            rx: a_to_b,
            tx: b_to_a,
        },
    )
}

impl Read for MemStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.rx.read(buf)
    }
}

impl Write for MemStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.tx.write(buf)
    }

    fn write_vectored(&mut self, bufs: &[io::IoSlice<'_>]) -> io::Result<usize> {
        self.tx.write_vectored(bufs)
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl NetStream for MemStream {
    fn shutdown_stream(&mut self) {
        self.tx.close();
        self.rx.close();
    }

    fn vectored_writes(&self) -> bool {
        true
    }
}

impl SplitStream for MemStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>> {
        Ok(Box::new(self.clone()))
    }
}

#[derive(Debug, Default)]
struct ListenerState {
    pending: VecDeque<MemStream>,
    closed: bool,
}

/// An in-memory connection acceptor (the loopback analogue of a bound
/// listening socket).
#[derive(Debug, Clone, Default)]
pub struct MemListener(Arc<(Mutex<ListenerState>, Condvar)>);

impl MemListener {
    /// Creates an open listener.
    pub fn new() -> Self {
        MemListener::default()
    }

    /// A dialer that connects to this listener.
    pub fn dialer(&self) -> MemDialer {
        MemDialer(self.clone())
    }

    /// Stops accepting; pending and future dials fail.
    pub fn close(&self) {
        let (lock, cvar) = &*self.0;
        lock.lock().expect("listener lock").closed = true;
        cvar.notify_all();
    }

    fn connect(&self) -> io::Result<MemStream> {
        let (client, server) = mem_pair();
        let (lock, cvar) = &*self.0;
        let mut state = lock.lock().expect("listener lock");
        if state.closed {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionRefused,
                "listener closed",
            ));
        }
        state.pending.push_back(server);
        cvar.notify_all();
        Ok(client)
    }
}

impl Acceptor for MemListener {
    fn close_acceptor(&self) {
        self.close();
    }

    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>> {
        let (lock, cvar) = &*self.0;
        let mut state = lock.lock().expect("listener lock");
        loop {
            if let Some(conn) = state.pending.pop_front() {
                return Ok(Box::new(conn));
            }
            if state.closed {
                return Err(io::Error::new(
                    io::ErrorKind::NotConnected,
                    "listener closed",
                ));
            }
            state = cvar.wait(state).expect("listener lock");
        }
    }
}

/// Dials a [`MemListener`].
#[derive(Debug, Clone)]
pub struct MemDialer(MemListener);

impl Dialer for MemDialer {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(self.0.connect()?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_carries_bytes_both_ways() {
        let (mut a, mut b) = mem_pair();
        a.write_all(b"ping").unwrap();
        let mut buf = [0u8; 4];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"ping");
        b.write_all(b"pong").unwrap();
        a.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"pong");
    }

    #[test]
    fn vectored_write_is_one_contiguous_append() {
        let (mut a, mut b) = mem_pair();
        let bufs = [
            io::IoSlice::new(b"head"),
            io::IoSlice::new(b""),
            io::IoSlice::new(b"payload"),
        ];
        assert_eq!(a.write_vectored(&bufs).unwrap(), 11);
        let mut buf = [0u8; 11];
        b.read_exact(&mut buf).unwrap();
        assert_eq!(&buf, b"headpayload");
    }

    #[test]
    fn close_drains_then_eofs() {
        let (mut a, mut b) = mem_pair();
        a.write_all(b"tail").unwrap();
        a.shutdown_stream();
        assert!(a.write_all(b"x").is_err(), "write after close fails");
        let mut buf = Vec::new();
        b.read_to_end(&mut buf).unwrap();
        assert_eq!(buf, b"tail", "pre-close bytes survive the close");
    }

    #[test]
    fn blocking_read_wakes_on_write() {
        let (mut a, mut b) = mem_pair();
        let t = std::thread::spawn(move || {
            let mut buf = [0u8; 3];
            b.read_exact(&mut buf).unwrap();
            buf
        });
        a.write_all(b"abc").unwrap();
        assert_eq!(&t.join().unwrap(), b"abc");
    }

    #[test]
    fn listener_accepts_dialed_connections() {
        let listener = MemListener::new();
        let dialer = listener.dialer();
        let t = {
            let listener = listener.clone();
            std::thread::spawn(move || {
                let mut conn = listener.accept_conn().unwrap();
                let mut buf = [0u8; 2];
                conn.read_exact(&mut buf).unwrap();
                buf
            })
        };
        let mut client = dialer.dial().unwrap();
        client.write_all(b"hi").unwrap();
        assert_eq!(&t.join().unwrap(), b"hi");
        listener.close();
        assert!(dialer.dial().is_err(), "closed listener refuses dials");
    }
}
