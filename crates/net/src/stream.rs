//! Stream and listener abstractions the transport runs over.
//!
//! The broker and links are generic over byte streams so the same code
//! serves TCP sockets, Unix-domain sockets, and the in-memory pipes the
//! deterministic fault harness uses ([`mem`](crate::mem)).

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;

/// A bidirectional byte stream a link or broker connection runs over.
pub trait NetStream: Read + Write + Send {
    /// Tears the connection down so the peer observes EOF (after draining
    /// any bytes already in flight) — used on framing errors and injected
    /// cuts.
    fn shutdown_stream(&mut self);
}

/// A [`NetStream`] that can be cloned into a second handle sharing the
/// underlying connection — the broker reads and writes a subscriber
/// connection from different threads.
pub trait SplitStream: NetStream {
    /// Clones a handle to the same connection.
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>>;
}

impl NetStream for TcpStream {
    fn shutdown_stream(&mut self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }
}

impl SplitStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl NetStream for UnixStream {
    fn shutdown_stream(&mut self) {
        let _ = UnixStream::shutdown(self, std::net::Shutdown::Both);
    }
}

impl SplitStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// Something that can open fresh connections to a peer — the reconnect
/// loop's dependency, kept abstract so tests can hand out faulty or
/// in-memory connections.
pub trait Dialer: Send {
    /// Opens a new connection.
    fn dial(&self) -> io::Result<Box<dyn NetStream>>;
}

impl Dialer for Box<dyn Dialer> {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        (**self).dial()
    }
}

/// Dials a TCP address.
#[derive(Debug, Clone)]
pub struct TcpDialer(pub SocketAddr);

impl Dialer for TcpDialer {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        let stream = TcpStream::connect(self.0)?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }
}

/// Dials a Unix-domain socket path.
#[derive(Debug, Clone)]
pub struct UnixDialer(pub PathBuf);

impl Dialer for UnixDialer {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(UnixStream::connect(&self.0)?))
    }
}

/// A connection acceptor the broker runs on.
pub trait Acceptor: Send + Sync {
    /// Blocks for the next inbound connection.
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>>;

    /// Stops accepting, unblocking a pending [`accept_conn`](Self::accept_conn)
    /// where the platform allows it. The default is a
    /// no-op: kernel TCP/Unix listeners cannot be interrupted portably, so
    /// a broker on a real socket parks its accept thread until process
    /// exit.
    fn close_acceptor(&self) {}
}

impl Acceptor for TcpListener {
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>> {
        let (stream, _) = self.accept()?;
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }
}

impl Acceptor for UnixListener {
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>> {
        let (stream, _) = self.accept()?;
        Ok(Box::new(stream))
    }
}
