//! Stream and listener abstractions the transport runs over.
//!
//! The broker and links are generic over byte streams so the same code
//! serves TCP sockets, Unix-domain sockets, and the in-memory pipes the
//! deterministic fault harness uses ([`mem`](crate::mem)).

use std::io::{self, IoSlice, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Per-flush coalescing cap in bytes: a batched flush stops growing once
/// it would exceed this many bytes, bounding both the vectored submission
/// and the staging copy on the fallback path.
pub const COALESCE_MAX_BYTES: usize = 64 << 10;
/// Per-flush coalescing cap in frames, bounding the iovec count handed to
/// one `write_vectored` call well under any platform `IOV_MAX`.
pub const COALESCE_MAX_FRAMES: usize = 64;

/// A bidirectional byte stream a link or broker connection runs over.
pub trait NetStream: Read + Write + Send {
    /// Tears the connection down so the peer observes EOF (after draining
    /// any bytes already in flight) — used on framing errors and injected
    /// cuts.
    fn shutdown_stream(&mut self);

    /// Whether this stream's `write_vectored` genuinely submits multiple
    /// buffers at once (kernel sockets, the in-memory pipe). Streams that
    /// inherit the default one-buffer `write_vectored` — notably the
    /// fault-injection wrapper, which must see every byte pass through its
    /// cut/jitter accounting — return `false`, steering coalesced flushes
    /// onto the staging-buffer path.
    fn vectored_writes(&self) -> bool {
        false
    }
}

/// Flushes `bufs` — one coalesced batch of already-framed envelopes — to
/// `stream`, returning the number of bytes written and the error that
/// stopped the flush, if any.
///
/// With `vectored` set, remaining buffers are submitted together via
/// `write_vectored` (one syscall per call on kernel sockets), re-sliced
/// after partial writes. Otherwise the batch is copied once into
/// `staging` and written with plain `write` calls, so wrappers that
/// intercept `write` (fault injection) observe the identical byte stream.
/// A zero-length write is reported as [`io::ErrorKind::WriteZero`]; on any
/// error, bytes written so far are still reported so callers can retire
/// fully-flushed frames and rewind the partial one.
pub fn write_coalesced<S: Write + ?Sized>(
    stream: &mut S,
    vectored: bool,
    bufs: &[&[u8]],
    staging: &mut Vec<u8>,
) -> (usize, Option<io::Error>) {
    let total: usize = bufs.iter().map(|b| b.len()).sum();
    let mut written = 0usize;
    if vectored {
        let mut slices: Vec<IoSlice<'_>> = Vec::with_capacity(bufs.len());
        while written < total {
            slices.clear();
            let mut skip = written;
            for buf in bufs {
                if skip >= buf.len() {
                    skip -= buf.len();
                    continue;
                }
                slices.push(IoSlice::new(&buf[skip..]));
                skip = 0;
            }
            match stream.write_vectored(&slices) {
                Ok(0) => {
                    return (
                        written,
                        Some(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "stream accepted zero bytes",
                        )),
                    );
                }
                Ok(n) => written += n,
                Err(err) => return (written, Some(err)),
            }
        }
    } else {
        staging.clear();
        staging.reserve(total);
        for buf in bufs {
            staging.extend_from_slice(buf);
        }
        while written < total {
            match stream.write(&staging[written..]) {
                Ok(0) => {
                    return (
                        written,
                        Some(io::Error::new(
                            io::ErrorKind::WriteZero,
                            "stream accepted zero bytes",
                        )),
                    );
                }
                Ok(n) => written += n,
                Err(err) => return (written, Some(err)),
            }
        }
    }
    (written, None)
}

/// A [`NetStream`] that can be cloned into a second handle sharing the
/// underlying connection — the broker reads and writes a subscriber
/// connection from different threads.
pub trait SplitStream: NetStream {
    /// Clones a handle to the same connection.
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>>;
}

impl NetStream for TcpStream {
    fn shutdown_stream(&mut self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }

    fn vectored_writes(&self) -> bool {
        true
    }
}

impl SplitStream for TcpStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl NetStream for UnixStream {
    fn shutdown_stream(&mut self) {
        let _ = UnixStream::shutdown(self, std::net::Shutdown::Both);
    }

    fn vectored_writes(&self) -> bool {
        true
    }
}

impl SplitStream for UnixStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>> {
        Ok(Box::new(self.try_clone()?))
    }
}

/// Something that can open fresh connections to a peer — the reconnect
/// loop's dependency, kept abstract so tests can hand out faulty or
/// in-memory connections.
pub trait Dialer: Send {
    /// Opens a new connection.
    fn dial(&self) -> io::Result<Box<dyn NetStream>>;
}

impl Dialer for Box<dyn Dialer> {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        (**self).dial()
    }
}

/// Dials a TCP address.
#[derive(Debug, Clone)]
pub struct TcpDialer(pub SocketAddr);

impl Dialer for TcpDialer {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        let stream = TcpStream::connect(self.0)?;
        // Nagle off: flushes are already coalesced at the framing layer
        // (DESIGN.md §6.8), so letting the kernel re-buffer them only adds
        // latency to the sub-MTU control frames.
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }
}

/// Dials a Unix-domain socket path.
#[derive(Debug, Clone)]
pub struct UnixDialer(pub PathBuf);

impl Dialer for UnixDialer {
    fn dial(&self) -> io::Result<Box<dyn NetStream>> {
        Ok(Box::new(UnixStream::connect(&self.0)?))
    }
}

/// A connection acceptor the broker runs on.
pub trait Acceptor: Send + Sync {
    /// Blocks for the next inbound connection.
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>>;

    /// Stops accepting, unblocking a pending [`accept_conn`](Self::accept_conn)
    /// where the platform allows it. The default is a
    /// no-op: kernel TCP/Unix listeners cannot be interrupted portably, so
    /// a broker on a real socket parks its accept thread until process
    /// exit.
    fn close_acceptor(&self) {}
}

impl Acceptor for TcpListener {
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>> {
        let (stream, _) = self.accept()?;
        // Nagle off on the accept side too — subscriber fan-out flushes
        // are coalesced batches that should hit the wire immediately.
        stream.set_nodelay(true).ok();
        Ok(Box::new(stream))
    }
}

impl Acceptor for UnixListener {
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>> {
        let (stream, _) = self.accept()?;
        Ok(Box::new(stream))
    }
}

/// Shared write-side counters for [`CountingStream`] — the bench harness
/// reads these to report syscalls-per-record.
#[derive(Debug, Default)]
pub struct IoCounters {
    /// Number of `write`/`write_vectored` calls that reached the wrapped
    /// stream (each one is at most one syscall on a kernel socket).
    pub write_calls: AtomicU64,
    /// Total bytes accepted by those calls.
    pub bytes_written: AtomicU64,
}

impl IoCounters {
    /// Fresh zeroed counters behind an [`Arc`].
    pub fn shared() -> Arc<IoCounters> {
        Arc::new(IoCounters::default())
    }
}

/// A [`SplitStream`] wrapper that counts write calls and bytes without
/// altering the byte stream — used by `transport_throughput` to measure
/// how many flush syscalls the broker issues per delivered record.
pub struct CountingStream {
    inner: Box<dyn SplitStream>,
    counters: Arc<IoCounters>,
}

impl CountingStream {
    /// Wraps `inner`, attributing its writes to `counters`.
    pub fn new(inner: Box<dyn SplitStream>, counters: Arc<IoCounters>) -> Self {
        CountingStream { inner, counters }
    }
}

impl Read for CountingStream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.inner.read(buf)
    }
}

impl Write for CountingStream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.counters.write_calls.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
        let n = self.inner.write_vectored(bufs)?;
        self.counters.write_calls.fetch_add(1, Ordering::Relaxed);
        self.counters
            .bytes_written
            .fetch_add(n as u64, Ordering::Relaxed);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

impl NetStream for CountingStream {
    fn shutdown_stream(&mut self) {
        self.inner.shutdown_stream();
    }

    fn vectored_writes(&self) -> bool {
        self.inner.vectored_writes()
    }
}

impl SplitStream for CountingStream {
    fn try_clone_stream(&self) -> io::Result<Box<dyn SplitStream>> {
        Ok(Box::new(CountingStream {
            inner: self.inner.try_clone_stream()?,
            counters: Arc::clone(&self.counters),
        }))
    }
}

/// Wraps an [`Acceptor`] so every accepted connection is a
/// [`CountingStream`] sharing one set of [`IoCounters`].
pub struct CountingAcceptor {
    inner: Arc<dyn Acceptor>,
    counters: Arc<IoCounters>,
}

impl CountingAcceptor {
    /// Wraps `inner`, attributing accepted connections' writes to
    /// `counters`.
    pub fn new(inner: Arc<dyn Acceptor>, counters: Arc<IoCounters>) -> Self {
        CountingAcceptor { inner, counters }
    }
}

impl Acceptor for CountingAcceptor {
    fn accept_conn(&self) -> io::Result<Box<dyn SplitStream>> {
        let stream = self.inner.accept_conn()?;
        Ok(Box::new(CountingStream::new(
            stream,
            Arc::clone(&self.counters),
        )))
    }

    fn close_acceptor(&self) {
        self.inner.close_acceptor();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A `Write` sink that accepts at most `cap` bytes per call, so both
    /// coalescing paths exercise their partial-write re-slicing.
    struct Dribble {
        cap: usize,
        data: Vec<u8>,
        calls: usize,
    }

    impl Write for Dribble {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            self.calls += 1;
            let n = buf.len().min(self.cap);
            self.data.extend_from_slice(&buf[..n]);
            Ok(n)
        }

        fn write_vectored(&mut self, bufs: &[IoSlice<'_>]) -> io::Result<usize> {
            self.calls += 1;
            let mut left = self.cap;
            for buf in bufs {
                let n = buf.len().min(left);
                self.data.extend_from_slice(&buf[..n]);
                left -= n;
                if left == 0 {
                    break;
                }
            }
            Ok(self.cap - left)
        }

        fn flush(&mut self) -> io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn coalesced_write_preserves_byte_order_on_both_paths() {
        let bufs: Vec<&[u8]> = vec![b"alpha", b"", b"beta", b"gamma!"];
        let expect: Vec<u8> = bufs.concat();
        for vectored in [false, true] {
            for cap in [1, 3, 7, 64] {
                let mut sink = Dribble {
                    cap,
                    data: Vec::new(),
                    calls: 0,
                };
                let mut staging = Vec::new();
                let (n, err) = write_coalesced(&mut sink, vectored, &bufs, &mut staging);
                assert!(err.is_none(), "vectored={vectored} cap={cap}");
                assert_eq!(n, expect.len());
                assert_eq!(sink.data, expect);
            }
        }
    }

    #[test]
    fn coalesced_write_reports_partial_progress_on_error() {
        struct FailAfter {
            accept: usize,
            data: Vec<u8>,
        }
        impl Write for FailAfter {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.accept == 0 {
                    return Err(io::Error::new(io::ErrorKind::BrokenPipe, "cut"));
                }
                let n = buf.len().min(self.accept);
                self.accept -= n;
                self.data.extend_from_slice(&buf[..n]);
                Ok(n)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let bufs: Vec<&[u8]> = vec![b"0123456789", b"abcdef"];
        let mut sink = FailAfter {
            accept: 12,
            data: Vec::new(),
        };
        let mut staging = Vec::new();
        let (n, err) = write_coalesced(&mut sink, false, &bufs, &mut staging);
        assert_eq!(n, 12);
        assert_eq!(err.unwrap().kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(sink.data, b"0123456789ab");
    }

    #[test]
    fn write_zero_surfaces_as_error_not_livelock() {
        struct Zero;
        impl Write for Zero {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Ok(0)
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let bufs: Vec<&[u8]> = vec![b"data"];
        let mut staging = Vec::new();
        for vectored in [false, true] {
            let (n, err) = write_coalesced(&mut Zero, vectored, &bufs, &mut staging);
            assert_eq!(n, 0);
            assert_eq!(err.unwrap().kind(), io::ErrorKind::WriteZero);
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let mut sink = Dribble {
            cap: 8,
            data: Vec::new(),
            calls: 0,
        };
        let mut staging = Vec::new();
        let (n, err) = write_coalesced(&mut sink, true, &[], &mut staging);
        assert_eq!(n, 0);
        assert!(err.is_none());
        assert_eq!(sink.calls, 0);
    }
}
