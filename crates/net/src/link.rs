//! Client-side transport endpoints: the tracer's socket-backed
//! [`FrameSink`] and the analyzer's subscribing connection.
//!
//! Both ends implement the reconnect invariant cooperatively with the
//! broker:
//!
//! - [`TracerLink`] keeps every data frame in its bounded [`SendQueue`]
//!   until *fully* written; a connection dying mid-frame rewinds the
//!   in-flight frame and resends it from byte 0 on the next connection.
//!   Per-origin sequence numbers persist across reconnects, so the broker
//!   dedups the overlap.
//! - [`AnalyzerConn`] reconnects with the resume positions of everything
//!   it already ingested; the broker replays only what was missed, and a
//!   local [`SeqDedup`] discards any residual overlap.
//!
//! Net effect: as long as connectivity eventually returns, the analyzer
//! ingests exactly the frames the tracers emitted, once each, in
//! per-origin order — which is why a faulted run's graphs are bit
//! identical to an uninterrupted run's.

use crate::frame::{
    encode_frame_head, encode_frame_to_vec, FrameDecoder, FrameKind, RawFrame, HEADER_LEN,
};
use crate::msg::{
    decode_hint, encode_announce, encode_hello, encode_hint, encode_subscribe, Role, Subscribe,
    SubscribeSpec,
};
use crate::queue::{QueueStats, QueuedFrame, SendQueue};
use crate::registry::{Freshness, SeqDedup};
use crate::stream::{write_coalesced, Dialer, NetStream, COALESCE_MAX_BYTES, COALESCE_MAX_FRAMES};
use bytes::Bytes;
use crossbeam::channel::{Receiver, Sender};
use e2eprof_core::reduction::HintState;
use e2eprof_core::tracer::{FrameSink, TracerFrame};
use e2eprof_netsim::NodeId;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// High bit marking an envelope origin as a synthetic analyzer hint
/// origin (`HINT_ORIGIN_BIT | shard`) rather than a tracer node index.
/// Keeps hint sequence spaces disjoint from data sequence spaces in
/// every dedup map they share.
pub const HINT_ORIGIN_BIT: u32 = 0x8000_0000;

/// Tuning for a client-side link.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// Bounded send-queue capacity in frames (drop-oldest beyond it).
    pub queue_capacity: usize,
    /// Reconnect attempts a single flush may spend before leaving the
    /// remaining frames queued for the next flush.
    pub max_flush_redials: u32,
    /// First reconnect delay; doubles per consecutive failure. Zero in
    /// tests keeps the fault suite free of wall-clock time.
    pub backoff_base: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub backoff_cap: Duration,
    /// Frames `send_frame` lets accumulate before it flushes. The
    /// default of 1 flushes on every send (lowest latency — today's
    /// semantics); a bursty sender can raise it so one coalesced
    /// vectored write carries up to this many frames, then call
    /// [`TracerLink::drain`] at its natural batch boundary to push out
    /// the tail. Deferred frames are not counted as delivered until a
    /// flush actually lands them.
    pub coalesce_depth: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            queue_capacity: 1024,
            max_flush_redials: 8,
            backoff_base: Duration::from_millis(10),
            backoff_cap: Duration::from_secs(1),
            coalesce_depth: 1,
        }
    }
}

impl LinkConfig {
    /// A configuration for deterministic tests: no backoff sleeps.
    pub fn immediate() -> Self {
        LinkConfig {
            backoff_base: Duration::ZERO,
            ..LinkConfig::default()
        }
    }
}

/// Exponential backoff state.
#[derive(Debug)]
struct Backoff {
    base: Duration,
    cap: Duration,
    consecutive: u32,
}

impl Backoff {
    fn new(base: Duration, cap: Duration) -> Self {
        Backoff {
            base,
            cap,
            consecutive: 0,
        }
    }

    /// Sleeps for the current delay and doubles it (saturating at the
    /// cap). A zero base never sleeps.
    fn wait(&mut self) {
        let delay = self
            .base
            .saturating_mul(1u32 << self.consecutive.min(16))
            .min(self.cap);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        self.consecutive = self.consecutive.saturating_add(1);
    }

    fn reset(&mut self) {
        self.consecutive = 0;
    }
}

/// Lifetime counters of a [`TracerLink`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Send-queue counters (enqueued / sent / dropped-oldest).
    pub queue: QueueStats,
    /// Connections dialed beyond the first (i.e. reconnects).
    pub redials: u64,
}

/// A socket-backed [`FrameSink`] for one tracer agent.
///
/// Single-threaded by design: the agent's `poll` both enqueues and
/// flushes, so the capture loop's only exposure to the network is bounded
/// by the flush's redial budget.
pub struct TracerLink {
    origin: u32,
    dialer: Box<dyn Dialer>,
    config: LinkConfig,
    conn: Option<Box<dyn NetStream>>,
    queue: SendQueue,
    /// Next data sequence number (starts at 1; 0 means "none yet" in
    /// resume maps). Persists across reconnects.
    next_seq: u64,
    /// Latest announced edge set, replayed on every (re)connect.
    announce: Option<Vec<u8>>,
    /// Announce changed since last successfully written.
    announce_dirty: bool,
    backoff: Backoff,
    dials: u64,
    /// Reconnects (dials beyond the first), shared so the pipeline can
    /// surface per-link reconnect counts after the link has been boxed
    /// into its agent.
    redials: Arc<AtomicU64>,
    /// Data frames *fully written* to a connection — shared so the
    /// pipeline driver can count what crossed the transport without
    /// reaching through the agent that owns this sink. A fully written
    /// frame is delivered: connections fail by rejecting bytes, never by
    /// losing accepted ones (TCP semantics, mirrored by the in-memory
    /// pipe's drain-then-EOF close).
    delivered: Arc<AtomicU64>,
    /// Reused staging buffer for coalesced flushes over streams without
    /// genuine vectored writes.
    staging: Vec<u8>,
}

impl TracerLink {
    /// Creates a link for the tracer on node `origin`. Nothing is dialed
    /// until the first flush.
    pub fn new(origin: u32, dialer: Box<dyn Dialer>, config: LinkConfig) -> Self {
        TracerLink {
            origin,
            dialer,
            backoff: Backoff::new(config.backoff_base, config.backoff_cap),
            queue: SendQueue::new(config.queue_capacity),
            config,
            conn: None,
            next_seq: 1,
            announce: None,
            announce_dirty: false,
            dials: 0,
            redials: Arc::new(AtomicU64::new(0)),
            delivered: Arc::new(AtomicU64::new(0)),
            staging: Vec::new(),
        }
    }

    /// A shared handle to the link's reconnect count (dials beyond the
    /// first).
    pub fn redials_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.redials)
    }

    /// A shared handle to the count of data frames fully written to the
    /// broker. Counts exactly the frames the broker will ingest (net of
    /// its dedup), so a driver can block an analyzer with
    /// `ingest_expected` on the sum across links — deterministic
    /// synchronization with no sleeps.
    pub fn delivered_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.delivered)
    }

    /// Lifetime counters.
    pub fn stats(&self) -> LinkStats {
        LinkStats {
            queue: self.queue.stats(),
            redials: self.dials.saturating_sub(1),
        }
    }

    /// Frames queued but not yet fully written.
    pub fn backlog(&self) -> usize {
        self.queue.len()
    }

    /// Flushes every queued frame now, regardless of
    /// [`LinkConfig::coalesce_depth`]. A sender running with a depth
    /// above 1 must call this at its batch boundary — deferred frames
    /// only count as delivered once a flush lands them.
    pub fn drain(&mut self) {
        self.flush();
    }

    /// Writes the connection preamble (Hello, then the current Announce)
    /// on a fresh connection.
    fn handshake(&mut self, conn: &mut Box<dyn NetStream>) -> std::io::Result<()> {
        let hello = encode_frame_to_vec(
            FrameKind::Hello,
            self.origin,
            0,
            &encode_hello(Role::Tracer { node: self.origin }),
        );
        conn.write_all(&hello)?;
        if let Some(payload) = &self.announce {
            let frame = encode_frame_to_vec(FrameKind::Announce, self.origin, 0, payload);
            conn.write_all(&frame)?;
            self.announce_dirty = false;
        }
        Ok(())
    }

    /// Drains the queue onto the connection, redialing on failure up to
    /// the configured budget. Frames that cannot be flushed stay queued —
    /// and a frame interrupted mid-write is rewound, to be resent whole on
    /// the next connection (the peer discarded the partial bytes with the
    /// stream).
    fn flush(&mut self) {
        let mut redials = 0u32;
        loop {
            if self.conn.is_none() {
                match self.dialer.dial() {
                    Ok(mut conn) => {
                        self.dials += 1;
                        if self.dials > 1 {
                            self.redials.fetch_add(1, Ordering::Relaxed);
                        }
                        if self.handshake(&mut conn).is_err() {
                            redials += 1;
                            if redials > self.config.max_flush_redials {
                                return;
                            }
                            self.backoff.wait();
                            continue;
                        }
                        self.backoff.reset();
                        self.queue.rewind_front();
                        self.conn = Some(conn);
                    }
                    Err(_) => {
                        redials += 1;
                        if redials > self.config.max_flush_redials {
                            return;
                        }
                        self.backoff.wait();
                        continue;
                    }
                }
            }
            if self.announce_dirty {
                if let Some(payload) = &self.announce {
                    let frame = encode_frame_to_vec(FrameKind::Announce, self.origin, 0, payload);
                    let conn = self.conn.as_mut().expect("connected above");
                    if conn.write_all(&frame).is_err() {
                        self.conn = None;
                        self.queue.rewind_front();
                        redials += 1;
                        if redials > self.config.max_flush_redials {
                            return;
                        }
                        self.backoff.wait();
                        continue;
                    }
                    self.announce_dirty = false;
                }
            }
            // Coalesced drain: gather the queue into one bounded batch of
            // borrowed segments and flush it with a single vectored write
            // (or one staged write) — one syscall per flush instead of
            // one per frame. On error the fully-written prefix is retired
            // (those frames reached the peer or died with the stream's
            // accepted bytes — same cases as before) and the partial
            // frame rewinds to be resent whole on the next connection.
            while !self.queue.is_empty() {
                let conn = self.conn.as_mut().expect("connected above");
                let vectored = conn.vectored_writes();
                let mut bufs: Vec<&[u8]> = Vec::new();
                self.queue
                    .gather(COALESCE_MAX_FRAMES, COALESCE_MAX_BYTES, &mut bufs);
                let (written, err) = write_coalesced(conn, vectored, &bufs, &mut self.staging);
                drop(bufs);
                let completed = self.queue.advance_bytes(written);
                if completed > 0 {
                    self.delivered.fetch_add(completed, Ordering::Relaxed);
                }
                if err.is_some() {
                    self.conn = None;
                    self.queue.rewind_front();
                    break;
                }
            }
            if self.conn.is_some() && self.queue.is_empty() && !self.announce_dirty {
                return;
            }
            if self.conn.is_none() {
                redials += 1;
                if redials > self.config.max_flush_redials {
                    return;
                }
                self.backoff.wait();
            }
        }
    }
}

impl std::fmt::Debug for TracerLink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerLink")
            .field("origin", &self.origin)
            .field("backlog", &self.queue.len())
            .field("next_seq", &self.next_seq)
            .finish_non_exhaustive()
    }
}

impl FrameSink for TracerLink {
    fn send_frame(&mut self, frame: TracerFrame) -> u64 {
        // The payload `Bytes` rides into the queue as a shared segment —
        // only the envelope head (header plus the series edge prefix) is
        // materialized; the gather flush hands both to the stream without
        // ever copying the payload.
        let (kind, prefix, tail) = match frame {
            TracerFrame::Batch { payload } => (FrameKind::DataBatch, Vec::new(), payload),
            TracerFrame::Backfill { payload } => (FrameKind::Backfill, Vec::new(), payload),
            TracerFrame::Series { edge, payload } => {
                // DataSeries payloads carry the edge in an 8-byte prefix
                // (v1 wire frames identify edges out of band).
                let mut prefix = Vec::with_capacity(8);
                prefix.extend_from_slice(&(edge.0.index() as u32).to_be_bytes());
                prefix.extend_from_slice(&(edge.1.index() as u32).to_be_bytes());
                (FrameKind::DataSeries, prefix, payload)
            }
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        let head = encode_frame_head(kind, self.origin, seq, &prefix, &tail);
        let dropped = self.queue.push(QueuedFrame::new(head, tail));
        if self.queue.len() >= self.config.coalesce_depth.max(1) {
            self.flush();
        }
        dropped
    }

    fn announce(&mut self, edges: &[(u32, u32)]) {
        self.announce = Some(encode_announce(edges));
        self.announce_dirty = true;
        self.flush();
    }
}

/// Counters of an [`AnalyzerConn`].
#[derive(Debug, Default)]
pub struct ConnStats {
    /// Data frames forwarded to the analyzer channel.
    pub delivered: AtomicU64,
    /// Replayed frames discarded by the per-origin dedup.
    pub duplicates: AtomicU64,
    /// Connections dialed beyond the first.
    pub reconnects: AtomicU64,
    /// Framing/decode errors observed (each costs one reconnect).
    pub decode_errors: AtomicU64,
}

/// The analyzer's subscribing connection: a background reader that dials
/// the broker, subscribes, decodes data frames into [`TracerFrame`]s, and
/// feeds them to the channel an [`OnlineAnalyzer`] ingests from —
/// reconnecting with resume positions whenever the connection dies.
///
/// [`OnlineAnalyzer`]: e2eprof_core::analyzer::OnlineAnalyzer
pub struct AnalyzerConn {
    stop: Arc<AtomicBool>,
    stats: Arc<ConnStats>,
    thread: Option<JoinHandle<()>>,
}

impl AnalyzerConn {
    /// Spawns the reader. `shard`/`of` identify this analyzer shard to the
    /// broker; frames arrive on the returned channel's receiver.
    pub fn spawn(
        dialer: Box<dyn Dialer>,
        shard: u32,
        of: u32,
        config: LinkConfig,
    ) -> (AnalyzerConn, Receiver<TracerFrame>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let stats = Arc::new(ConnStats::default());
        let thread = {
            let stop = Arc::clone(&stop);
            let stats = Arc::clone(&stats);
            std::thread::spawn(move || {
                reader_loop(&*dialer, shard, of, &config, &stop, &stats, &tx)
            })
        };
        (
            AnalyzerConn {
                stop,
                stats,
                thread: Some(thread),
            },
            rx,
        )
    }

    /// Shared counters.
    pub fn stats(&self) -> &ConnStats {
        &self.stats
    }

    /// Signals the reader to exit at the next connection boundary and
    /// joins it. (Tear the broker down first so a blocked read wakes.)
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for AnalyzerConn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Don't join in drop: the reader may be blocked on a live broker
        // with no traffic. `stop()` is the orderly path.
        let _ = self.thread.take();
    }
}

fn reader_loop(
    dialer: &dyn Dialer,
    shard: u32,
    of: u32,
    config: &LinkConfig,
    stop: &AtomicBool,
    stats: &ConnStats,
    tx: &Sender<TracerFrame>,
) {
    let mut dedup = SeqDedup::new();
    let mut backoff = Backoff::new(config.backoff_base, config.backoff_cap);
    let mut dials = 0u64;
    let mut dial_failures = 0u32;
    while !stop.load(Ordering::Relaxed) {
        let mut conn = match dialer.dial() {
            Ok(c) => c,
            Err(_) => {
                dial_failures += 1;
                if dial_failures > config.max_flush_redials {
                    return;
                }
                backoff.wait();
                continue;
            }
        };
        dial_failures = 0;
        dials += 1;
        if dials > 1 {
            stats.reconnects.fetch_add(1, Ordering::Relaxed);
        }
        if subscribe(&mut conn, shard, of, &dedup).is_err() {
            backoff.wait();
            continue;
        }
        backoff.reset();
        let mut dec = FrameDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        'conn: loop {
            loop {
                match dec.next_raw() {
                    Ok(Some(frame)) if frame.kind.is_data() => {
                        if dedup.offer(frame.origin, frame.seq) == Freshness::Duplicate {
                            stats.duplicates.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        let Some(tracer_frame) = to_tracer_frame(&frame) else {
                            stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                            conn.shutdown_stream();
                            break 'conn;
                        };
                        if tx.send(tracer_frame).is_err() {
                            return; // analyzer gone: nothing left to feed
                        }
                        stats.delivered.fetch_add(1, Ordering::Relaxed);
                    }
                    Ok(Some(_)) => {} // control frames are not expected; ignore
                    Ok(None) => break,
                    Err(_) => {
                        stats.decode_errors.fetch_add(1, Ordering::Relaxed);
                        conn.shutdown_stream();
                        break 'conn;
                    }
                }
            }
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => dec.feed(&buf[..n]),
            }
        }
    }
}

/// Writes Hello + Subscribe(All, resume positions) on a fresh connection.
fn subscribe(
    conn: &mut Box<dyn NetStream>,
    shard: u32,
    of: u32,
    dedup: &SeqDedup,
) -> std::io::Result<()> {
    let mut bytes = encode_frame_to_vec(
        FrameKind::Hello,
        0,
        0,
        &encode_hello(Role::Analyzer { shard, of }),
    );
    let sub = Subscribe {
        spec: SubscribeSpec::All,
        resume: dedup.resume_positions(),
    };
    bytes.extend_from_slice(&encode_frame_to_vec(
        FrameKind::Subscribe,
        0,
        0,
        &encode_subscribe(&sub),
    ));
    conn.write_all(&bytes)
}

/// Reverses [`TracerLink::send_frame`]'s payload mapping. Zero-copy: the
/// `TracerFrame` payload is a window into the validated receive bytes —
/// the same shared allocation the decoder produced, never re-copied.
fn to_tracer_frame(frame: &RawFrame) -> Option<TracerFrame> {
    let payload = Bytes::from_arc(Arc::clone(&frame.bytes)).slice(HEADER_LEN..frame.bytes.len());
    match frame.kind {
        FrameKind::DataBatch => Some(TracerFrame::Batch { payload }),
        FrameKind::Backfill => Some(TracerFrame::Backfill { payload }),
        FrameKind::DataSeries => {
            if payload.len() < 8 {
                return None;
            }
            let src = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes"));
            let dst = u32::from_be_bytes(payload[4..8].try_into().expect("4 bytes"));
            Some(TracerFrame::Series {
                edge: (NodeId::new(src), NodeId::new(dst)),
                payload: payload.slice(8..payload.len()),
            })
        }
        _ => None,
    }
}

/// The analyzer shard's hint-publishing connection: a synchronous,
/// driver-owned sender that pushes each [`HintState`] snapshot to the
/// broker as a `Hint` frame with origin `HINT_ORIGIN_BIT | shard` and a
/// per-shard monotonic sequence.
///
/// Retries with the *same* sequence number across redials (like
/// [`TracerLink`]): a connection dying mid-frame discards the partial
/// bytes with the stream, and the broker's dedup absorbs any resend of a
/// frame that did land whole.
pub struct HintSender {
    shard: u32,
    of: u32,
    dialer: Box<dyn Dialer>,
    config: LinkConfig,
    conn: Option<Box<dyn NetStream>>,
    next_seq: u64,
    backoff: Backoff,
    dials: u64,
}

impl HintSender {
    /// Creates a sender for analyzer shard `shard` of `of`. Nothing is
    /// dialed until the first send.
    pub fn new(shard: u32, of: u32, dialer: Box<dyn Dialer>, config: LinkConfig) -> Self {
        HintSender {
            shard,
            of,
            backoff: Backoff::new(config.backoff_base, config.backoff_cap),
            config,
            dialer,
            conn: None,
            next_seq: 1,
            dials: 0,
        }
    }

    /// The synthetic envelope origin this shard's hints carry.
    pub fn origin(&self) -> u32 {
        HINT_ORIGIN_BIT | self.shard
    }

    /// Publishes one snapshot; returns the sequence number it was written
    /// under, or `None` if the redial budget ran out (the snapshot is
    /// dropped — harmless, because the next snapshot is full-state and
    /// supersedes it).
    pub fn send(&mut self, state: &HintState) -> Option<u64> {
        let seq = self.next_seq;
        let frame = encode_frame_to_vec(FrameKind::Hint, self.origin(), seq, &encode_hint(state));
        let mut redials = 0u32;
        loop {
            if self.conn.is_none() {
                match self.dialer.dial() {
                    Ok(mut conn) => {
                        self.dials += 1;
                        let hello = encode_frame_to_vec(
                            FrameKind::Hello,
                            self.origin(),
                            0,
                            &encode_hello(Role::Analyzer {
                                shard: self.shard,
                                of: self.of,
                            }),
                        );
                        if conn.write_all(&hello).is_err() {
                            redials += 1;
                            if redials > self.config.max_flush_redials {
                                return None;
                            }
                            self.backoff.wait();
                            continue;
                        }
                        self.backoff.reset();
                        self.conn = Some(conn);
                    }
                    Err(_) => {
                        redials += 1;
                        if redials > self.config.max_flush_redials {
                            return None;
                        }
                        self.backoff.wait();
                        continue;
                    }
                }
            }
            let conn = self.conn.as_mut().expect("connected above");
            if conn.write_all(&frame).is_ok() {
                self.next_seq += 1;
                return Some(seq);
            }
            self.conn = None;
            redials += 1;
            if redials > self.config.max_flush_redials {
                return None;
            }
            self.backoff.wait();
        }
    }
}

impl std::fmt::Debug for HintSender {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HintSender")
            .field("shard", &self.shard)
            .field("next_seq", &self.next_seq)
            .field("dials", &self.dials)
            .finish_non_exhaustive()
    }
}

/// The tracer's hint-subscription connection: a background reader that
/// subscribes to reduction hints, decodes fresh snapshots onto a channel
/// for the agent to apply, and reconnects with per-shard resume
/// positions so the broker replays only snapshots it has not seen.
///
/// The per-shard high-water marks are published through an atomic vector:
/// once `hint_seq(shard) >= s`, the snapshot written under sequence `s`
/// is already in the channel — which is the barrier the deterministic
/// pipeline spins on after each refresh.
pub struct HintConn {
    stop: Arc<AtomicBool>,
    latest: Arc<Vec<AtomicU64>>,
    reconnects: Arc<AtomicU64>,
    thread: Option<JoinHandle<()>>,
}

impl HintConn {
    /// Spawns the reader for the tracer on node `node`, expecting hints
    /// from `shards` analyzer shards. Snapshots arrive on the returned
    /// receiver in publish order per shard.
    pub fn spawn(
        dialer: Box<dyn Dialer>,
        node: u32,
        shards: u32,
        config: LinkConfig,
    ) -> (HintConn, Receiver<HintState>) {
        let (tx, rx) = crossbeam::channel::unbounded();
        let stop = Arc::new(AtomicBool::new(false));
        let latest: Arc<Vec<AtomicU64>> =
            Arc::new((0..shards).map(|_| AtomicU64::new(0)).collect());
        let reconnects = Arc::new(AtomicU64::new(0));
        let thread = {
            let stop = Arc::clone(&stop);
            let latest = Arc::clone(&latest);
            let reconnects = Arc::clone(&reconnects);
            std::thread::spawn(move || {
                hint_reader_loop(&*dialer, node, &config, &stop, &latest, &reconnects, &tx)
            })
        };
        (
            HintConn {
                stop,
                latest,
                reconnects,
                thread: Some(thread),
            },
            rx,
        )
    }

    /// Highest hint sequence received (and enqueued) from `shard`.
    pub fn hint_seq(&self, shard: u32) -> u64 {
        self.latest[shard as usize].load(Ordering::Acquire)
    }

    /// Connections dialed beyond the first.
    pub fn reconnects(&self) -> u64 {
        self.reconnects.load(Ordering::Relaxed)
    }

    /// Signals the reader to exit at the next connection boundary without
    /// joining it. Set this *before* tearing the broker down: a reader
    /// woken by the broker closing its stream then exits instead of
    /// redialing a listener whose accept thread may outlive the broker.
    pub fn signal_stop(&self) {
        self.stop.store(true, Ordering::Relaxed);
    }

    /// Signals the reader to exit at the next connection boundary and
    /// joins it. (Tear the broker down first so a blocked read wakes.)
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for HintConn {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        // Don't join in drop: the reader may be blocked on a live broker
        // with no traffic. `stop()` is the orderly path.
        let _ = self.thread.take();
    }
}

impl std::fmt::Debug for HintConn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HintConn")
            .field("shards", &self.latest.len())
            .field("reconnects", &self.reconnects())
            .finish_non_exhaustive()
    }
}

fn hint_reader_loop(
    dialer: &dyn Dialer,
    node: u32,
    config: &LinkConfig,
    stop: &AtomicBool,
    latest: &[AtomicU64],
    reconnects: &AtomicU64,
    tx: &Sender<HintState>,
) {
    let mut backoff = Backoff::new(config.backoff_base, config.backoff_cap);
    let mut dials = 0u64;
    let mut dial_failures = 0u32;
    while !stop.load(Ordering::Relaxed) {
        let mut conn = match dialer.dial() {
            Ok(c) => c,
            Err(_) => {
                dial_failures += 1;
                if dial_failures > config.max_flush_redials {
                    return;
                }
                backoff.wait();
                continue;
            }
        };
        dial_failures = 0;
        dials += 1;
        if dials > 1 {
            reconnects.fetch_add(1, Ordering::Relaxed);
        }
        if hint_subscribe(&mut conn, node, latest).is_err() {
            backoff.wait();
            continue;
        }
        backoff.reset();
        let mut dec = FrameDecoder::new();
        let mut buf = vec![0u8; 64 * 1024];
        'conn: loop {
            loop {
                match dec.next_frame() {
                    Ok(Some(frame)) if frame.kind == FrameKind::Hint => {
                        let shard = (frame.origin & !HINT_ORIGIN_BIT) as usize;
                        if shard >= latest.len() {
                            conn.shutdown_stream();
                            break 'conn;
                        }
                        if frame.seq <= latest[shard].load(Ordering::Acquire) {
                            continue; // replay overlap after a reconnect
                        }
                        let Ok(state) = decode_hint(&frame.payload) else {
                            conn.shutdown_stream();
                            break 'conn;
                        };
                        if tx.send(state).is_err() {
                            return; // agent gone: nothing left to feed
                        }
                        // Publish *after* the send so a reader observing
                        // this mark finds the snapshot already enqueued.
                        latest[shard].store(frame.seq, Ordering::Release);
                    }
                    Ok(Some(_)) => {} // other kinds are not expected; ignore
                    Ok(None) => break,
                    Err(_) => {
                        conn.shutdown_stream();
                        break 'conn;
                    }
                }
            }
            match conn.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(n) => dec.feed(&buf[..n]),
            }
        }
    }
}

/// Writes Hello(HintSub) + Subscribe(All, per-shard hint resume
/// positions) on a fresh hint connection.
fn hint_subscribe(
    conn: &mut Box<dyn NetStream>,
    node: u32,
    latest: &[AtomicU64],
) -> std::io::Result<()> {
    let mut bytes = encode_frame_to_vec(
        FrameKind::Hello,
        node,
        0,
        &encode_hello(Role::HintSub { node }),
    );
    let sub = Subscribe {
        spec: SubscribeSpec::All,
        resume: latest
            .iter()
            .enumerate()
            .map(|(s, seq)| (HINT_ORIGIN_BIT | s as u32, seq.load(Ordering::Acquire)))
            .collect(),
    };
    bytes.extend_from_slice(&encode_frame_to_vec(
        FrameKind::Subscribe,
        node,
        0,
        &encode_subscribe(&sub),
    ));
    conn.write_all(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::broker::{BrokerConfig, BrokerHandle};
    use crate::fault::{FaultPlan, FaultyDialer};
    use crate::mem::MemListener;

    fn batch(bytes: &[u8]) -> TracerFrame {
        TracerFrame::Batch {
            payload: Bytes::copy_from_slice(bytes),
        }
    }

    #[test]
    fn frames_flow_end_to_end() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let (mut conn, rx) =
            AnalyzerConn::spawn(Box::new(listener.dialer()), 0, 1, LinkConfig::immediate());

        let mut link = TracerLink::new(3, Box::new(listener.dialer()), LinkConfig::immediate());
        FrameSink::announce(&mut link, &[(3, 4)]);
        link.send_frame(batch(b"alpha"));
        link.send_frame(batch(b"beta"));

        let got: Vec<TracerFrame> = (0..2).map(|_| rx.recv().expect("frame")).collect();
        assert_eq!(got, vec![batch(b"alpha"), batch(b"beta")]);
        assert_eq!(link.backlog(), 0);
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn series_frames_carry_their_edge() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let (mut conn, rx) =
            AnalyzerConn::spawn(Box::new(listener.dialer()), 0, 1, LinkConfig::immediate());
        let mut link = TracerLink::new(1, Box::new(listener.dialer()), LinkConfig::immediate());
        let frame = TracerFrame::Series {
            edge: (NodeId::new(4), NodeId::new(7)),
            payload: Bytes::copy_from_slice(b"rle"),
        };
        link.send_frame(frame.clone());
        assert_eq!(rx.recv().expect("frame"), frame);
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn mid_frame_cut_is_resent_without_loss_or_duplication() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let (mut conn, rx) =
            AnalyzerConn::spawn(Box::new(listener.dialer()), 0, 1, LinkConfig::immediate());

        // First connection dies 10 bytes into the second data frame
        // (handshake ≈ hello 31 + announce 38 bytes; first data frame is
        // fully written, the second is interrupted).
        let hello_len = 31u64;
        let announce_len = 38u64;
        let data_len = 26 + 5; // header + payload "alpha"
        let cut_at = hello_len + announce_len + data_len + 10;
        let dialer = FaultyDialer::new(listener.dialer(), vec![FaultPlan::cut_write_at(cut_at)]);
        let mut link = TracerLink::new(9, Box::new(dialer), LinkConfig::immediate());
        FrameSink::announce(&mut link, &[(9, 1)]);
        link.send_frame(batch(b"alpha"));
        link.send_frame(batch(b"bravo"));
        link.send_frame(batch(b"gamma"));

        let got: Vec<TracerFrame> = (0..3).map(|_| rx.recv().expect("frame")).collect();
        assert_eq!(
            got,
            vec![batch(b"alpha"), batch(b"bravo"), batch(b"gamma")],
            "exactly-once, in order, across the cut"
        );
        assert_eq!(link.stats().redials, 1, "one reconnect");
        assert_eq!(link.backlog(), 0);
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn jittered_connection_still_delivers_everything() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let (mut conn, rx) =
            AnalyzerConn::spawn(Box::new(listener.dialer()), 0, 1, LinkConfig::immediate());
        let dialer = FaultyDialer::new(listener.dialer(), vec![FaultPlan::jitter(77, 3)]);
        let mut link = TracerLink::new(2, Box::new(dialer), LinkConfig::immediate());
        for i in 0..5u8 {
            link.send_frame(batch(&[i; 7]));
        }
        for i in 0..5u8 {
            assert_eq!(rx.recv().expect("frame"), batch(&[i; 7]));
        }
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn bounded_queue_drops_oldest_and_counts_when_unreachable() {
        // A dialer that always fails: frames pile up in the bounded queue.
        struct DeadDialer;
        impl Dialer for DeadDialer {
            fn dial(&self) -> std::io::Result<Box<dyn NetStream>> {
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionRefused,
                    "down",
                ))
            }
        }
        let mut config = LinkConfig::immediate();
        config.queue_capacity = 2;
        config.max_flush_redials = 0;
        let mut link = TracerLink::new(1, Box::new(DeadDialer), config);
        let mut dropped = 0;
        for i in 0..5u8 {
            dropped += link.send_frame(batch(&[i]));
        }
        assert_eq!(dropped, 3, "capacity 2: three oldest frames evicted");
        assert_eq!(link.stats().queue.dropped_oldest, 3);
        assert_eq!(link.backlog(), 2);
    }

    /// The seq mark is published *after* the snapshot is enqueued (that
    /// direction is the pipeline's barrier invariant), so a test that
    /// recv()s a snapshot may observe the mark a beat later.
    fn await_hint_seq(conn: &HintConn, shard: u32, want: u64) {
        for _ in 0..1_000_000 {
            if conn.hint_seq(shard) >= want {
                return;
            }
            std::thread::yield_now();
        }
        assert_eq!(conn.hint_seq(shard), want, "hint seq mark never arrived");
    }

    #[test]
    fn hints_reach_live_and_late_subscribers() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let mut sender =
            HintSender::new(0, 1, Box::new(listener.dialer()), LinkConfig::immediate());
        let s1 = HintState {
            shard: 0,
            of: 1,
            edges: vec![((1, 2), 16)],
        };
        assert_eq!(sender.send(&s1), Some(1));
        // A subscriber arriving *after* the publish still gets the latest
        // stored snapshot replayed.
        let (mut conn, rx) =
            HintConn::spawn(Box::new(listener.dialer()), 3, 1, LinkConfig::immediate());
        assert_eq!(rx.recv().expect("replayed hint"), s1);
        await_hint_seq(&conn, 0, 1);
        // And live updates flow through.
        let s2 = HintState {
            shard: 0,
            of: 1,
            edges: vec![],
        };
        assert_eq!(sender.send(&s2), Some(2));
        assert_eq!(rx.recv().expect("live hint"), s2);
        await_hint_seq(&conn, 0, 2);
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn hint_conn_cut_replays_latest_snapshot_exactly_once() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let mut sender =
            HintSender::new(0, 1, Box::new(listener.dialer()), LinkConfig::immediate());
        // One-edge snapshot: 26-byte envelope + (12 + 16) payload bytes.
        let frame_len = 26 + 28;
        let dialer = FaultyDialer::new(
            listener.dialer(),
            vec![FaultPlan::cut_read_at(frame_len as u64 + 10)],
        );
        let (mut conn, rx) = HintConn::spawn(Box::new(dialer), 5, 1, LinkConfig::immediate());
        let s1 = HintState {
            shard: 0,
            of: 1,
            edges: vec![((1, 2), 16)],
        };
        let s2 = HintState {
            shard: 0,
            of: 1,
            edges: vec![((1, 2), 16), ((3, 4), 8)],
        };
        assert_eq!(sender.send(&s1), Some(1));
        assert_eq!(rx.recv().expect("first hint"), s1);
        // The second snapshot lands while the subscriber's connection is
        // dying mid-read; the reconnect's resume position (1) makes the
        // broker replay exactly the missed latest snapshot.
        assert_eq!(sender.send(&s2), Some(2));
        assert_eq!(rx.recv().expect("replayed second hint"), s2);
        await_hint_seq(&conn, 0, 2);
        assert!(rx.try_recv().is_err(), "no duplicate replay");
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn backfill_frames_round_trip_like_batches() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        let (mut conn, rx) =
            AnalyzerConn::spawn(Box::new(listener.dialer()), 0, 1, LinkConfig::immediate());
        let mut link = TracerLink::new(4, Box::new(listener.dialer()), LinkConfig::immediate());
        let frame = TracerFrame::Backfill {
            payload: Bytes::copy_from_slice(b"fine-window"),
        };
        link.send_frame(frame.clone());
        assert_eq!(rx.recv().expect("frame"), frame);
        broker.shutdown();
        conn.stop();
    }

    #[test]
    fn analyzer_reconnect_resumes_without_duplicates() {
        let listener = Arc::new(MemListener::new());
        let broker = BrokerHandle::spawn(listener.clone(), BrokerConfig::default());
        // Subscriber's first connection dies after ~1.5 data frames read.
        let dialer =
            FaultyDialer::new(listener.dialer(), vec![FaultPlan::cut_read_at(26 + 5 + 10)]);
        let (mut conn, rx) = AnalyzerConn::spawn(Box::new(dialer), 0, 1, LinkConfig::immediate());
        let mut link = TracerLink::new(6, Box::new(listener.dialer()), LinkConfig::immediate());
        link.send_frame(batch(b"first"));
        link.send_frame(batch(b"again"));
        link.send_frame(batch(b"third"));
        let got: Vec<TracerFrame> = (0..3).map(|_| rx.recv().expect("frame")).collect();
        assert_eq!(got, vec![batch(b"first"), batch(b"again"), batch(b"third")]);
        assert_eq!(conn.stats().reconnects.load(Ordering::Relaxed), 1);
        broker.shutdown();
        conn.stop();
    }
}
