//! Control-plane payloads carried inside [`frame`](crate::frame)
//! envelopes: peer introduction, edge announcement, and subscription.
//!
//! Encodings are fixed-width big-endian with explicit counts, and every
//! decoded count is capped against the bytes actually present before any
//! allocation — the same hardening discipline as the series wire format.

use crate::frame::FrameError;
use e2eprof_core::reduction::HintState;

/// Who is on the other end of a connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// A tracer agent running on the given node.
    Tracer {
        /// Node index the agent runs on.
        node: u32,
    },
    /// An analyzer shard.
    Analyzer {
        /// Shard index in `0..of`.
        shard: u32,
        /// Total shard count.
        of: u32,
    },
    /// A tracer's hint-subscription connection (the feedback direction).
    /// Distinct from [`Role::Tracer`] so its disconnect cannot disturb
    /// the data link's announce state in the registry.
    HintSub {
        /// Node index of the tracer subscribing to reduction hints.
        node: u32,
    },
}

/// The `Hello` payload: first frame on every connection.
pub fn encode_hello(role: Role) -> Vec<u8> {
    match role {
        Role::Tracer { node } => {
            let mut v = vec![0u8];
            v.extend_from_slice(&node.to_be_bytes());
            v
        }
        Role::Analyzer { shard, of } => {
            let mut v = vec![1u8];
            v.extend_from_slice(&shard.to_be_bytes());
            v.extend_from_slice(&of.to_be_bytes());
            v
        }
        Role::HintSub { node } => {
            let mut v = vec![2u8];
            v.extend_from_slice(&node.to_be_bytes());
            v
        }
    }
}

/// Decodes a `Hello` payload.
pub fn decode_hello(payload: &[u8]) -> Result<Role, FrameError> {
    match payload.first() {
        Some(0) if payload.len() == 5 => Ok(Role::Tracer {
            node: u32::from_be_bytes(payload[1..5].try_into().expect("4 bytes")),
        }),
        Some(1) if payload.len() == 9 => Ok(Role::Analyzer {
            shard: u32::from_be_bytes(payload[1..5].try_into().expect("4 bytes")),
            of: u32::from_be_bytes(payload[5..9].try_into().expect("4 bytes")),
        }),
        Some(2) if payload.len() == 5 => Ok(Role::HintSub {
            node: u32::from_be_bytes(payload[1..5].try_into().expect("4 bytes")),
        }),
        _ => Err(FrameError::BadKind(0xFF)),
    }
}

/// Encodes an `Announce` payload: the directed edges a tracer owns.
pub fn encode_announce(edges: &[(u32, u32)]) -> Vec<u8> {
    let mut v = Vec::with_capacity(4 + edges.len() * 8);
    v.extend_from_slice(&(edges.len() as u32).to_be_bytes());
    for &(src, dst) in edges {
        v.extend_from_slice(&src.to_be_bytes());
        v.extend_from_slice(&dst.to_be_bytes());
    }
    v
}

/// Decodes an `Announce` payload.
pub fn decode_announce(payload: &[u8]) -> Result<Vec<(u32, u32)>, FrameError> {
    let (count, rest) = split_count(payload)?;
    if rest.len() != count * 8 {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((0..count)
        .map(|i| {
            let at = i * 8;
            (
                u32::from_be_bytes(rest[at..at + 4].try_into().expect("4 bytes")),
                u32::from_be_bytes(rest[at + 4..at + 8].try_into().expect("4 bytes")),
            )
        })
        .collect())
}

/// What an analyzer subscribes to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubscribeSpec {
    /// Every edge any tracer announces (the sharded-analyzer default:
    /// shards partition *roots*, but every shard correlates against every
    /// edge signal).
    All,
    /// Only streams whose announced edges intersect this set.
    Edges(Vec<(u32, u32)>),
}

/// The `Subscribe` payload: the spec, plus per-origin resume positions —
/// the highest sequence number the analyzer fully ingested from each
/// origin, so a reconnecting subscriber is replayed only what it missed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Subscribe {
    /// Which streams to receive.
    pub spec: SubscribeSpec,
    /// `(origin, last fully received seq)` pairs.
    pub resume: Vec<(u32, u64)>,
}

/// Encodes a `Subscribe` payload.
pub fn encode_subscribe(sub: &Subscribe) -> Vec<u8> {
    let mut v = Vec::new();
    match &sub.spec {
        SubscribeSpec::All => v.extend_from_slice(&u32::MAX.to_be_bytes()),
        SubscribeSpec::Edges(edges) => {
            v.extend_from_slice(&(edges.len() as u32).to_be_bytes());
            for &(src, dst) in edges {
                v.extend_from_slice(&src.to_be_bytes());
                v.extend_from_slice(&dst.to_be_bytes());
            }
        }
    }
    v.extend_from_slice(&(sub.resume.len() as u32).to_be_bytes());
    for &(origin, seq) in &sub.resume {
        v.extend_from_slice(&origin.to_be_bytes());
        v.extend_from_slice(&seq.to_be_bytes());
    }
    v
}

/// Decodes a `Subscribe` payload.
pub fn decode_subscribe(payload: &[u8]) -> Result<Subscribe, FrameError> {
    let raw = payload
        .get(..4)
        .ok_or(FrameError::ChecksumMismatch)
        .map(|b| u32::from_be_bytes(b.try_into().expect("4 bytes")))?;
    let (spec, rest) = if raw == u32::MAX {
        (SubscribeSpec::All, &payload[4..])
    } else {
        let (count, rest) = split_count(payload)?;
        if rest.len() < count * 8 {
            return Err(FrameError::ChecksumMismatch);
        }
        let edges = (0..count)
            .map(|i| {
                let at = i * 8;
                (
                    u32::from_be_bytes(rest[at..at + 4].try_into().expect("4 bytes")),
                    u32::from_be_bytes(rest[at + 4..at + 8].try_into().expect("4 bytes")),
                )
            })
            .collect();
        (SubscribeSpec::Edges(edges), &rest[count * 8..])
    };
    let (count, rest) = split_count(rest)?;
    if rest.len() != count * 12 {
        return Err(FrameError::ChecksumMismatch);
    }
    let resume = (0..count)
        .map(|i| {
            let at = i * 12;
            (
                u32::from_be_bytes(rest[at..at + 4].try_into().expect("4 bytes")),
                u64::from_be_bytes(rest[at + 4..at + 12].try_into().expect("8 bytes")),
            )
        })
        .collect();
    Ok(Subscribe { spec, resume })
}

/// Encodes a `Hint` payload: one analyzer shard's full-state reduction
/// snapshot (see [`HintState`]).
pub fn encode_hint(state: &HintState) -> Vec<u8> {
    let mut v = Vec::with_capacity(12 + state.edges.len() * 16);
    v.extend_from_slice(&state.shard.to_be_bytes());
    v.extend_from_slice(&state.of.to_be_bytes());
    v.extend_from_slice(&(state.edges.len() as u32).to_be_bytes());
    for &((src, dst), level) in &state.edges {
        v.extend_from_slice(&src.to_be_bytes());
        v.extend_from_slice(&dst.to_be_bytes());
        v.extend_from_slice(&level.to_be_bytes());
    }
    v
}

/// Decodes a `Hint` payload.
pub fn decode_hint(payload: &[u8]) -> Result<HintState, FrameError> {
    if payload.len() < 12 {
        return Err(FrameError::ChecksumMismatch);
    }
    let shard = u32::from_be_bytes(payload[..4].try_into().expect("4 bytes"));
    let of = u32::from_be_bytes(payload[4..8].try_into().expect("4 bytes"));
    let (count, rest) = split_count(&payload[8..])?;
    if rest.len() != count * 16 {
        return Err(FrameError::ChecksumMismatch);
    }
    let edges = (0..count)
        .map(|i| {
            let at = i * 16;
            (
                (
                    u32::from_be_bytes(rest[at..at + 4].try_into().expect("4 bytes")),
                    u32::from_be_bytes(rest[at + 4..at + 8].try_into().expect("4 bytes")),
                ),
                u64::from_be_bytes(rest[at + 8..at + 16].try_into().expect("8 bytes")),
            )
        })
        .collect();
    Ok(HintState { shard, of, edges })
}

/// Reads a BE u32 count and caps it against the remaining byte budget
/// (each counted element occupies at least one byte).
fn split_count(payload: &[u8]) -> Result<(usize, &[u8]), FrameError> {
    let bytes = payload.get(..4).ok_or(FrameError::ChecksumMismatch)?;
    let count = u32::from_be_bytes(bytes.try_into().expect("4 bytes")) as usize;
    let rest = &payload[4..];
    if count > rest.len() {
        return Err(FrameError::ChecksumMismatch);
    }
    Ok((count, rest))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hello_roundtrip() {
        for role in [
            Role::Tracer { node: 9 },
            Role::Analyzer { shard: 2, of: 4 },
            Role::HintSub { node: 5 },
        ] {
            assert_eq!(decode_hello(&encode_hello(role)), Ok(role));
        }
        assert!(decode_hello(&[]).is_err());
        assert!(decode_hello(&[7, 0, 0, 0, 0]).is_err());
    }

    #[test]
    fn hint_roundtrip() {
        for state in [
            HintState {
                shard: 0,
                of: 1,
                edges: vec![],
            },
            HintState {
                shard: 2,
                of: 4,
                edges: vec![((1, 2), 16), ((3, u32::MAX), u64::MAX)],
            },
        ] {
            assert_eq!(decode_hint(&encode_hint(&state)), Ok(state));
        }
        assert!(decode_hint(&[]).is_err());
        // Truncated edge list.
        let enc = encode_hint(&HintState {
            shard: 0,
            of: 1,
            edges: vec![((1, 2), 16)],
        });
        assert!(decode_hint(&enc[..enc.len() - 1]).is_err());
        // Absurd count with no bytes behind it.
        let mut bad = vec![0u8; 8];
        bad.extend_from_slice(&u32::MAX.to_be_bytes());
        assert!(decode_hint(&bad).is_err());
    }

    #[test]
    fn announce_roundtrip() {
        let edges = vec![(1, 2), (3, 4), (0, u32::MAX)];
        assert_eq!(decode_announce(&encode_announce(&edges)), Ok(edges));
        assert_eq!(decode_announce(&encode_announce(&[])), Ok(vec![]));
        // Truncated body.
        let enc = encode_announce(&[(1, 2)]);
        assert!(decode_announce(&enc[..enc.len() - 1]).is_err());
        // Absurd count with no bytes behind it.
        assert!(decode_announce(&u32::MAX.to_be_bytes()).is_err());
    }

    #[test]
    fn subscribe_roundtrip() {
        for sub in [
            Subscribe {
                spec: SubscribeSpec::All,
                resume: vec![],
            },
            Subscribe {
                spec: SubscribeSpec::All,
                resume: vec![(3, 77), (9, u64::MAX)],
            },
            Subscribe {
                spec: SubscribeSpec::Edges(vec![(1, 2), (2, 1)]),
                resume: vec![(1, 5)],
            },
        ] {
            assert_eq!(decode_subscribe(&encode_subscribe(&sub)), Ok(sub));
        }
        assert!(decode_subscribe(&[]).is_err());
        assert!(decode_subscribe(&u32::MAX.to_be_bytes()).is_err());
    }
}
