//! The broker's routing brain, kept as a pure state machine.
//!
//! All announce/subscribe/disconnect bookkeeping lives here with no IO,
//! so property tests can drive arbitrary interleavings of peer events and
//! assert the two invariants that make the distributed pipeline correct:
//!
//! 1. **No lost subscription** — an analyzer's subscription survives
//!    tracer churn (disconnects, re-announces) until the analyzer itself
//!    disconnects.
//! 2. **No double delivery** — per-origin sequence numbers plus
//!    [`SeqDedup`] on the consuming side mean a frame replayed across a
//!    reconnect is ingested at most once.

use std::collections::{BTreeMap, BTreeSet};

use crate::msg::SubscribeSpec;

/// A connected peer's id as assigned by the broker (connection-scoped).
pub type PeerId = u64;

/// A subscriber's registered interest.
#[derive(Debug, Clone)]
pub struct Subscriber {
    /// What the subscriber wants.
    pub spec: SubscribeSpec,
}

/// Pure routing state: which tracers own which edges, which analyzers
/// subscribed to what.
#[derive(Debug, Default)]
pub struct Registry {
    /// Tracer origin → the edges it announced (latest announce wins).
    announced: BTreeMap<u32, BTreeSet<(u32, u32)>>,
    /// Subscriber peer → interest.
    subscribers: BTreeMap<PeerId, Subscriber>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Records (or replaces) a tracer's announced edge set. Re-announcing
    /// after a reconnect is idempotent.
    pub fn announce(&mut self, origin: u32, edges: &[(u32, u32)]) {
        self.announced
            .insert(origin, edges.iter().copied().collect());
    }

    /// Removes a tracer's announcement (its connection died). Announced
    /// edges are forgotten, but subscriptions referencing them persist —
    /// a tracer reconnecting and re-announcing resumes routing unchanged.
    pub fn tracer_disconnected(&mut self, origin: u32) {
        self.announced.remove(&origin);
    }

    /// Registers (or replaces) a subscriber's interest.
    pub fn subscribe(&mut self, peer: PeerId, spec: SubscribeSpec) {
        self.subscribers.insert(peer, Subscriber { spec });
    }

    /// Removes a subscriber entirely (its connection died and the broker
    /// has torn down its delivery state).
    pub fn subscriber_disconnected(&mut self, peer: PeerId) {
        self.subscribers.remove(&peer);
    }

    /// Whether the peer currently holds a subscription.
    pub fn is_subscribed(&self, peer: PeerId) -> bool {
        self.subscribers.contains_key(&peer)
    }

    /// Number of live subscribers.
    pub fn subscriber_count(&self) -> usize {
        self.subscribers.len()
    }

    /// The edges a tracer currently has announced (empty if none).
    pub fn edges_of(&self, origin: u32) -> Vec<(u32, u32)> {
        self.announced
            .get(&origin)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default()
    }

    /// Subscribers a data frame from `origin` should reach, in peer-id
    /// order (deterministic fan-out).
    pub fn route(&self, origin: u32) -> Vec<PeerId> {
        let edges = self.announced.get(&origin);
        self.subscribers
            .iter()
            .filter(|(_, sub)| match (&sub.spec, edges) {
                (SubscribeSpec::All, _) => true,
                (SubscribeSpec::Edges(_), None) => false,
                (SubscribeSpec::Edges(want), Some(have)) => want.iter().any(|e| have.contains(e)),
            })
            .map(|(&peer, _)| peer)
            .collect()
    }
}

/// Verdict of offering a frame to [`SeqDedup`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Freshness {
    /// First sighting — ingest it.
    Fresh,
    /// Already ingested (a replay overlap) — discard it.
    Duplicate,
}

/// Per-origin high-water-mark deduplication for the consuming side.
///
/// Tracers number their data frames with a per-origin sequence that
/// persists across reconnects, so "already seen" reduces to a single
/// comparison per origin.
#[derive(Debug, Default)]
pub struct SeqDedup {
    last: BTreeMap<u32, u64>,
    /// Frames rejected as duplicates.
    pub duplicates: u64,
}

impl SeqDedup {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        SeqDedup::default()
    }

    /// Offers `(origin, seq)`; advances the high-water mark on fresh
    /// frames.
    pub fn offer(&mut self, origin: u32, seq: u64) -> Freshness {
        let last = self.last.entry(origin).or_insert(0);
        if seq <= *last {
            self.duplicates += 1;
            Freshness::Duplicate
        } else {
            *last = seq;
            Freshness::Fresh
        }
    }

    /// `(origin, last ingested seq)` pairs — the resume positions a
    /// reconnecting subscriber sends in its `Subscribe`.
    pub fn resume_positions(&self) -> Vec<(u32, u64)> {
        self.last.iter().map(|(&o, &s)| (o, s)).collect()
    }

    /// Whether `(origin, seq)` would be fresh, without recording it.
    pub fn would_be_fresh(&self, origin: u32, seq: u64) -> bool {
        seq > self.last.get(&origin).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_matches_all_and_edge_subscribers() {
        let mut reg = Registry::new();
        reg.announce(1, &[(1, 2), (2, 3)]);
        reg.subscribe(10, SubscribeSpec::All);
        reg.subscribe(11, SubscribeSpec::Edges(vec![(2, 3)]));
        reg.subscribe(12, SubscribeSpec::Edges(vec![(9, 9)]));
        assert_eq!(reg.route(1), vec![10, 11]);
        assert_eq!(reg.route(99), vec![10], "unknown origin still reaches All");
    }

    #[test]
    fn subscription_survives_tracer_churn() {
        let mut reg = Registry::new();
        reg.subscribe(10, SubscribeSpec::Edges(vec![(1, 2)]));
        reg.announce(1, &[(1, 2)]);
        assert_eq!(reg.route(1), vec![10]);
        reg.tracer_disconnected(1);
        assert!(reg.is_subscribed(10), "subscription outlives the tracer");
        reg.announce(1, &[(1, 2)]);
        assert_eq!(reg.route(1), vec![10], "re-announce restores routing");
    }

    #[test]
    fn reannounce_replaces_edges() {
        let mut reg = Registry::new();
        reg.announce(1, &[(1, 2)]);
        reg.announce(1, &[(3, 4)]);
        assert_eq!(reg.edges_of(1), vec![(3, 4)]);
    }

    #[test]
    fn dedup_rejects_replayed_and_accepts_fresh() {
        let mut d = SeqDedup::new();
        assert_eq!(d.offer(1, 1), Freshness::Fresh);
        assert_eq!(d.offer(1, 2), Freshness::Fresh);
        assert_eq!(d.offer(1, 2), Freshness::Duplicate);
        assert_eq!(d.offer(1, 1), Freshness::Duplicate);
        assert_eq!(d.offer(2, 1), Freshness::Fresh, "origins independent");
        assert_eq!(d.duplicates, 2);
        assert_eq!(d.resume_positions(), vec![(1, 2), (2, 1)]);
    }
}
