//! Bounded send queues with a drop-oldest-batch backpressure policy.
//!
//! A slow or dead peer must not stall the tracer's capture loop or grow
//! memory without bound. Each connection owns a bounded queue of encoded
//! frames; when full, the *oldest unsent* frame is dropped to admit the
//! newest — recent windows matter more than stale ones for an online
//! pathmap. A frame that has started flowing onto the wire is never
//! dropped: a partial frame on the stream would poison the peer's
//! decoder, so the in-flight frame is always either finished or the
//! connection is abandoned wholesale.
//!
//! Counters record every admission, send, and drop so backpressure is
//! observable instead of silent.

use bytes::Bytes;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};

/// Counters describing a queue's lifetime behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Frames accepted into the queue.
    pub enqueued: u64,
    /// Frames fully handed to the consumer.
    pub sent: u64,
    /// Frames evicted by the drop-oldest policy.
    pub dropped_oldest: u64,
}

/// One queued envelope, stored as two gather segments: the owned `head`
/// (envelope header plus any payload prefix, produced by
/// [`encode_frame_head`](crate::frame::encode_frame_head)) and the
/// refcounted payload `tail` shared with the tracer that produced it.
/// Keeping them separate means enqueueing never copies the payload — a
/// vectored flush hands both segments to the kernel as-is.
#[derive(Debug, Clone)]
pub struct QueuedFrame {
    head: Vec<u8>,
    tail: Bytes,
}

impl QueuedFrame {
    /// A frame whose payload tail rides as a shared, uncopied segment.
    pub fn new(head: Vec<u8>, tail: Bytes) -> Self {
        QueuedFrame { head, tail }
    }

    /// A fully-materialized frame (control frames, tests).
    pub fn contiguous(bytes: Vec<u8>) -> Self {
        QueuedFrame {
            head: bytes,
            tail: Bytes::new(),
        }
    }

    /// Total wire length of the frame.
    pub fn len(&self) -> usize {
        self.head.len() + self.tail.len()
    }

    /// Whether the frame is empty (never true for real envelopes).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A bounded FIFO of encoded frames with drop-oldest backpressure.
///
/// Single-threaded: the tracer link both enqueues (during `poll`) and
/// drains (during flush) from the same thread.
#[derive(Debug)]
pub struct SendQueue {
    frames: VecDeque<QueuedFrame>,
    capacity: usize,
    /// Byte offset already written of the front frame; the front frame is
    /// exempt from eviction while this is non-zero.
    front_written: usize,
    stats: QueueStats,
}

impl SendQueue {
    /// Creates a queue holding at most `capacity` frames (minimum 1).
    pub fn new(capacity: usize) -> Self {
        SendQueue {
            frames: VecDeque::new(),
            capacity: capacity.max(1),
            front_written: 0,
            stats: QueueStats::default(),
        }
    }

    /// Queue occupancy in frames.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// Whether the queue holds no frames.
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> QueueStats {
        self.stats
    }

    /// Admits a frame, evicting the oldest evictable frame if full.
    /// Returns the number of frames dropped (0 or 1).
    pub fn push(&mut self, frame: QueuedFrame) -> u64 {
        let mut dropped = 0;
        if self.frames.len() >= self.capacity {
            // Never evict a frame that has started onto the wire.
            let evict_at = usize::from(self.front_written > 0);
            if evict_at < self.frames.len() {
                self.frames.remove(evict_at);
                self.stats.dropped_oldest += 1;
                dropped = 1;
            }
        }
        self.frames.push_back(frame);
        self.stats.enqueued += 1;
        dropped
    }

    /// Collects the next coalesced flush batch into `out` as borrowed
    /// gather segments: the front frame from its already-written offset,
    /// then whole frames while the batch stays within `max_frames` and
    /// `max_bytes`. The front frame is always included even if it alone
    /// exceeds `max_bytes` (progress must be possible). Returns the total
    /// byte length gathered.
    pub fn gather<'a>(
        &'a self,
        max_frames: usize,
        max_bytes: usize,
        out: &mut Vec<&'a [u8]>,
    ) -> usize {
        out.clear();
        let mut bytes = 0usize;
        for (i, f) in self.frames.iter().enumerate() {
            let skip = if i == 0 { self.front_written } else { 0 };
            let remaining = f.len() - skip;
            if i > 0 && (i >= max_frames || bytes + remaining > max_bytes) {
                break;
            }
            if skip < f.head.len() {
                out.push(&f.head[skip..]);
                if !f.tail.is_empty() {
                    out.push(&f.tail);
                }
            } else {
                let tail_skip = skip - f.head.len();
                if tail_skip < f.tail.len() {
                    out.push(&f.tail[tail_skip..]);
                }
            }
            bytes += remaining;
        }
        bytes
    }

    /// Records `n` more bytes written from the front of the queue — the
    /// coalesced counterpart of [`advance`](Self::advance): completed
    /// frames are popped (in order) and the remainder becomes the new
    /// front's written offset. Returns how many frames completed.
    pub fn advance_bytes(&mut self, mut n: usize) -> u64 {
        let mut completed = 0u64;
        while n > 0 {
            let front_len = self
                .frames
                .front()
                .expect("advance past queued bytes")
                .len();
            let remaining = front_len - self.front_written;
            if n >= remaining {
                n -= remaining;
                self.frames.pop_front();
                self.front_written = 0;
                self.stats.sent += 1;
                completed += 1;
            } else {
                self.front_written += n;
                n = 0;
            }
        }
        completed
    }

    /// Records `n` more bytes of the front frame written; pops it when
    /// complete. Returns true if a frame finished.
    pub fn advance(&mut self, n: usize) -> bool {
        if let Some(front) = self.frames.front() {
            assert!(
                self.front_written + n <= front.len(),
                "advance past frame end"
            );
        } else {
            panic!("advance with empty queue");
        }
        self.advance_bytes(n) > 0
    }

    /// Resets the in-flight offset: after a connection dies mid-frame the
    /// partial remote copy is lost with the stream, so the frame is resent
    /// from the start on the next connection.
    pub fn rewind_front(&mut self) {
        self.front_written = 0;
    }
}

/// A frame retained for replay, tagged with its origin and sequence.
#[derive(Debug, Clone)]
pub struct ReplayFrame {
    /// Tracer origin id the frame came from.
    pub origin: u32,
    /// Per-origin sequence number.
    pub seq: u64,
    /// Fully encoded wire bytes (envelope included) — shared with the
    /// receive path that validated them, never re-encoded.
    pub bytes: Arc<[u8]>,
}

/// A bounded multi-consumer replay ring the broker fans data frames out
/// of. Each subscriber tracks its own cursor; a reconnecting subscriber
/// resumes from its per-origin sequence positions, re-reading retained
/// frames it never fully ingested.
#[derive(Debug, Default)]
pub struct ReplayRing {
    inner: Arc<(Mutex<RingState>, Condvar)>,
}

#[derive(Debug, Default)]
struct RingState {
    frames: VecDeque<ReplayFrame>,
    /// Total frames ever admitted; `frames` holds the tail of them.
    admitted: u64,
    capacity: usize,
    closed: bool,
    /// Frames evicted while at least one live cursor still needed them.
    dropped: u64,
}

/// A subscriber's position in a [`ReplayRing`].
#[derive(Debug)]
pub struct RingCursor {
    ring: Arc<(Mutex<RingState>, Condvar)>,
    /// Absolute index of the next frame to read.
    next: u64,
}

impl ReplayRing {
    /// Creates a ring retaining at most `capacity` frames.
    pub fn new(capacity: usize) -> Self {
        let ring = ReplayRing::default();
        ring.inner.0.lock().expect("ring lock").capacity = capacity.max(1);
        ring
    }

    /// Appends a frame, evicting the oldest if full.
    pub fn push(&self, frame: ReplayFrame) {
        let (lock, cvar) = &*self.inner;
        let mut state = lock.lock().expect("ring lock");
        if state.frames.len() >= state.capacity {
            state.frames.pop_front();
            state.dropped += 1;
        }
        state.frames.push_back(frame);
        state.admitted += 1;
        cvar.notify_all();
    }

    /// Frames evicted from the retention window.
    pub fn dropped(&self) -> u64 {
        self.inner.0.lock().expect("ring lock").dropped
    }

    /// Closes the ring; blocked cursors observe the end of the stream.
    pub fn close(&self) {
        let (lock, cvar) = &*self.inner;
        lock.lock().expect("ring lock").closed = true;
        cvar.notify_all();
    }

    /// A cursor starting at the oldest retained frame.
    pub fn cursor(&self) -> RingCursor {
        let state = self.inner.0.lock().expect("ring lock");
        RingCursor {
            ring: Arc::clone(&self.inner),
            next: state.admitted - state.frames.len() as u64,
        }
    }

    /// A cursor skipping frames the subscriber already holds: a retained
    /// frame is replayed only if its `(origin, seq)` is *after* the
    /// subscriber's resume position for that origin.
    pub fn cursor_resuming(&self, resume: &[(u32, u64)]) -> RingCursor {
        // Replay still walks every retained frame; the filter happens at
        // read time so interleaved origins keep their relative order.
        let mut cursor = self.cursor();
        cursor.apply_resume(resume);
        cursor
    }
}

impl Clone for ReplayRing {
    fn clone(&self) -> Self {
        ReplayRing {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl RingCursor {
    fn apply_resume(&mut self, _resume: &[(u32, u64)]) {
        // Positional fast-forward is origin-specific and handled by the
        // caller filtering on `(origin, seq)`; the cursor itself stays at
        // the oldest retained frame so no origin's backlog is skipped.
    }

    /// Blocks for the next frame; `None` when the ring is closed and
    /// drained.
    pub fn next_blocking(&mut self) -> Option<ReplayFrame> {
        let (lock, cvar) = &*self.ring;
        let mut state = lock.lock().expect("ring lock");
        loop {
            let oldest = state.admitted - state.frames.len() as u64;
            if self.next < oldest {
                // Fell behind the retention window; jump forward.
                self.next = oldest;
            }
            if self.next < state.admitted {
                let at = (self.next - oldest) as usize;
                let frame = state.frames[at].clone();
                self.next += 1;
                return Some(frame);
            }
            if state.closed {
                return None;
            }
            state = cvar.wait(state).expect("ring lock");
        }
    }

    /// Returns the next frame if one is already available, without
    /// blocking — the batching drain: a subscriber writer takes one frame
    /// via [`next_blocking`](Self::next_blocking), then keeps extending
    /// the coalesced batch with `try_next` until the ring runs dry or the
    /// batch hits its flush bounds.
    pub fn try_next(&mut self) -> Option<ReplayFrame> {
        let (lock, _) = &*self.ring;
        let state = lock.lock().expect("ring lock");
        let oldest = state.admitted - state.frames.len() as u64;
        if self.next < oldest {
            self.next = oldest;
        }
        if self.next < state.admitted {
            let at = (self.next - oldest) as usize;
            let frame = state.frames[at].clone();
            self.next += 1;
            Some(frame)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame(origin: u32, seq: u64) -> ReplayFrame {
        ReplayFrame {
            origin,
            seq,
            bytes: Arc::from(&[origin as u8, seq as u8][..]),
        }
    }

    /// The queue's pending bytes, flattened via `gather` with no bounds.
    fn flat(q: &SendQueue) -> Vec<u8> {
        let mut segs = Vec::new();
        q.gather(usize::MAX, usize::MAX, &mut segs);
        segs.concat()
    }

    #[test]
    fn send_queue_drops_oldest_when_full() {
        let mut q = SendQueue::new(2);
        assert_eq!(q.push(QueuedFrame::contiguous(vec![1])), 0);
        assert_eq!(q.push(QueuedFrame::contiguous(vec![2])), 0);
        assert_eq!(
            q.push(QueuedFrame::contiguous(vec![3])),
            1,
            "third push evicts the oldest"
        );
        assert_eq!(q.stats().dropped_oldest, 1);
        assert_eq!(flat(&q), vec![2, 3], "frame 1 was the victim");
    }

    #[test]
    fn send_queue_never_drops_inflight_front() {
        let mut q = SendQueue::new(2);
        q.push(QueuedFrame::contiguous(vec![1, 1]));
        q.push(QueuedFrame::contiguous(vec![2, 2]));
        assert!(!q.advance(1), "front partially written");
        q.push(QueuedFrame::contiguous(vec![3, 3]));
        // The partially-written front survives; the second frame is evicted.
        assert_eq!(flat(&q), vec![1, 3, 3], "front resumes at offset 1");
        assert_eq!(q.stats().dropped_oldest, 1);
        assert!(q.advance(1), "front completes");
        assert_eq!(flat(&q), vec![3, 3]);
    }

    #[test]
    fn send_queue_rewind_resends_from_start() {
        let mut q = SendQueue::new(4);
        q.push(QueuedFrame::contiguous(vec![9, 9, 9]));
        q.advance(2);
        q.rewind_front();
        assert_eq!(flat(&q), vec![9, 9, 9]);
    }

    #[test]
    fn gather_respects_bounds_and_split_frames() {
        let mut q = SendQueue::new(8);
        q.push(QueuedFrame::new(
            vec![1, 2],
            Bytes::copy_from_slice(&[3, 4]),
        ));
        q.push(QueuedFrame::new(vec![5], Bytes::copy_from_slice(&[6])));
        q.push(QueuedFrame::contiguous(vec![7]));
        let mut segs = Vec::new();
        // Unbounded: head/tail segments of all three frames, in order.
        assert_eq!(q.gather(usize::MAX, usize::MAX, &mut segs), 7);
        assert_eq!(segs.concat(), vec![1, 2, 3, 4, 5, 6, 7]);
        // Frame cap stops after two frames.
        assert_eq!(q.gather(2, usize::MAX, &mut segs), 6);
        assert_eq!(segs.concat(), vec![1, 2, 3, 4, 5, 6]);
        // Byte cap: the front always rides, the second frame (2 bytes)
        // would exceed 5 bytes total.
        assert_eq!(q.gather(usize::MAX, 5, &mut segs), 4);
        assert_eq!(segs.concat(), vec![1, 2, 3, 4]);
        // Byte cap below the front's size still yields the whole front.
        assert_eq!(q.gather(usize::MAX, 1, &mut segs), 4);
        assert_eq!(segs.concat(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn gather_resumes_mid_head_and_mid_tail() {
        let mut q = SendQueue::new(8);
        q.push(QueuedFrame::new(
            vec![1, 2, 3],
            Bytes::copy_from_slice(&[4, 5, 6]),
        ));
        q.advance_bytes(1); // inside the head
        assert_eq!(flat(&q), vec![2, 3, 4, 5, 6]);
        q.advance_bytes(3); // now inside the tail
        assert_eq!(flat(&q), vec![5, 6]);
    }

    #[test]
    fn advance_bytes_retires_whole_frames_and_tracks_partials() {
        let mut q = SendQueue::new(8);
        q.push(QueuedFrame::new(vec![1, 2], Bytes::copy_from_slice(&[3])));
        q.push(QueuedFrame::contiguous(vec![4, 5]));
        q.push(QueuedFrame::contiguous(vec![6]));
        // 3 (frame 1) + 1 (partial frame 2) bytes written.
        assert_eq!(q.advance_bytes(4), 1);
        assert_eq!(q.stats().sent, 1);
        assert_eq!(flat(&q), vec![5, 6]);
        // Finish frame 2 and all of frame 3.
        assert_eq!(q.advance_bytes(2), 2);
        assert!(q.is_empty());
        assert_eq!(q.stats().sent, 3);
    }

    #[test]
    fn ring_cursor_sees_frames_in_order() {
        let ring = ReplayRing::new(8);
        ring.push(frame(1, 1));
        ring.push(frame(1, 2));
        let mut cur = ring.cursor();
        assert_eq!(cur.next_blocking().unwrap().seq, 1);
        assert_eq!(cur.next_blocking().unwrap().seq, 2);
        ring.close();
        assert!(cur.next_blocking().is_none());
    }

    #[test]
    fn ring_evicts_and_counts_when_full() {
        let ring = ReplayRing::new(2);
        for seq in 1..=4 {
            ring.push(frame(1, seq));
        }
        assert_eq!(ring.dropped(), 2);
        let mut cur = ring.cursor();
        assert_eq!(cur.next_blocking().unwrap().seq, 3, "oldest retained");
    }

    #[test]
    fn late_cursor_starts_at_retained_tail() {
        let ring = ReplayRing::new(4);
        ring.push(frame(2, 10));
        let mut cur = ring.cursor();
        ring.push(frame(2, 11));
        assert_eq!(cur.next_blocking().unwrap().seq, 10);
        assert_eq!(cur.next_blocking().unwrap().seq, 11);
    }

    #[test]
    fn try_next_drains_without_blocking() {
        let ring = ReplayRing::new(4);
        ring.push(frame(1, 1));
        ring.push(frame(1, 2));
        let mut cur = ring.cursor();
        assert_eq!(cur.try_next().unwrap().seq, 1);
        assert_eq!(cur.try_next().unwrap().seq, 2);
        assert!(cur.try_next().is_none(), "dry ring returns immediately");
        ring.push(frame(1, 3));
        assert_eq!(cur.try_next().unwrap().seq, 3);
    }

    #[test]
    fn blocked_cursor_wakes_on_push() {
        let ring = ReplayRing::new(4);
        let mut cur = ring.cursor();
        let t = std::thread::spawn(move || cur.next_blocking().map(|f| f.seq));
        ring.push(frame(1, 7));
        assert_eq!(t.join().unwrap(), Some(7));
    }
}
