//! Property-based proof obligations for the broker's pass-through data
//! plane: relaying the validated receive bytes verbatim must be
//! indistinguishable — byte for byte — from the old decode/re-encode
//! relay, and the coalesced writer's output must be exactly the
//! concatenation of the frames it batched.
//!
//! Together with `frame_corruption`'s adversarial corpus, this is the
//! safety argument for skipping the payload parse on data frames: the
//! CRC covers every header field after the magic plus the payload, so a
//! frame that validates at the broker is the same sequence of bytes the
//! tracer emitted, and anything damaged after relay is caught by the
//! analyzer's own decoder.

use e2eprof_net::frame::{
    crc32, encode_frame_head, encode_frame_to_vec, FrameDecoder, FrameKind, HEADER_LEN,
};
use proptest::prelude::*;

fn data_kind_strategy() -> impl Strategy<Value = FrameKind> {
    prop_oneof![
        Just(FrameKind::DataBatch),
        Just(FrameKind::DataSeries),
        Just(FrameKind::Backfill),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Pass-through relay bytes ≡ decode/re-encode bytes: for any valid
    /// data frame, the raw envelope `next_raw` validates is bitwise
    /// identical to re-encoding the decoded fields — so pushing the
    /// receive bytes straight to the replay ring can never alter what a
    /// subscriber sees.
    #[test]
    fn raw_relay_equals_decode_reencode(
        kind in data_kind_strategy(),
        origin in 0u32..=u32::MAX,
        seq in 0u64..=u64::MAX,
        payload in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let encoded = encode_frame_to_vec(kind, origin, seq, &payload);

        // The pass-through path: validate, take the receive bytes.
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        let raw = dec.next_raw().expect("valid frame").expect("complete");
        prop_assert_eq!(&raw.bytes[..], &encoded[..]);

        // The old path: decode fields + payload, re-encode from scratch.
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        let frame = dec.next_frame().expect("valid frame").expect("complete");
        let reencoded = encode_frame_to_vec(frame.kind, frame.origin, frame.seq, &frame.payload);
        prop_assert_eq!(&raw.bytes[..], &reencoded[..]);

        // And the raw header fields match the decoded ones.
        prop_assert_eq!(raw.kind, frame.kind);
        prop_assert_eq!(raw.origin, frame.origin);
        prop_assert_eq!(raw.seq, frame.seq);
        prop_assert_eq!(raw.payload(), &frame.payload[..]);
    }

    /// The split head/tail encoding the tracer queue uses (header+prefix
    /// materialized, payload shared) concatenates to exactly the
    /// contiguous encoding for any prefix split point.
    #[test]
    fn split_head_tail_encoding_is_contiguous_encoding(
        kind in data_kind_strategy(),
        origin in any::<u32>(),
        seq in any::<u64>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
        split in 0usize..=256,
    ) {
        let split = split.min(payload.len());
        let (prefix, tail) = payload.split_at(split);
        let head = encode_frame_head(kind, origin, seq, prefix, tail);
        let mut joined = head.clone();
        joined.extend_from_slice(tail);
        let contiguous = encode_frame_to_vec(kind, origin, seq, &payload);
        prop_assert_eq!(joined, contiguous);
    }

    /// A coalesced batch is the plain concatenation of its frames: a
    /// decoder fed the batch yields every frame, bitwise intact, in
    /// order — regardless of how the bytes are re-chunked in transit.
    #[test]
    fn coalesced_batch_decodes_to_the_same_frames(
        seed_payloads in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..8),
        chunk in 1usize..64,
    ) {
        let mut batch = Vec::new();
        let mut originals = Vec::new();
        for (i, payload) in seed_payloads.iter().enumerate() {
            let encoded = encode_frame_to_vec(FrameKind::DataBatch, 7, i as u64, payload);
            batch.extend_from_slice(&encoded);
            originals.push(encoded);
        }
        let mut dec = FrameDecoder::new();
        let mut decoded = Vec::new();
        for piece in batch.chunks(chunk) {
            dec.feed(piece);
            while let Some(raw) = dec.next_raw().expect("clean batch") {
                decoded.push(raw.bytes.to_vec());
            }
        }
        prop_assert_eq!(decoded, originals);
    }

    /// Any single bit flip in a relayed envelope is caught downstream:
    /// the analyzer-side decoder rejects the frame (or, for flips that
    /// inflate the length claim, starves without producing it). This is
    /// what lets the broker skip payload inspection entirely.
    #[test]
    fn bit_flipped_relay_is_rejected_downstream(
        payload in prop::collection::vec(any::<u8>(), 0..128),
        flip_at in any::<u64>(),
        bit in 0u8..8,
    ) {
        let mut encoded = encode_frame_to_vec(FrameKind::DataBatch, 3, 9, &payload);
        let i = (flip_at % encoded.len() as u64) as usize;
        encoded[i] ^= 1 << bit;
        let mut dec = FrameDecoder::new();
        dec.feed(&encoded);
        if let Ok(Some(_)) = dec.next_raw() {
            prop_assert!(false, "damaged envelope accepted");
        }
    }
}

/// The streaming CRC identity `crc32(crc32(0, a), b) == crc32(0, a ++ b)`
/// that `encode_frame_head` relies on to checksum a payload it never
/// copies — checked across chunk sizes that exercise the slice-by-8 fast
/// path and its scalar remainder.
#[test]
fn streaming_crc_identity_across_chunkings() {
    let data: Vec<u8> = (0u16..1021).map(|i| (i * 31 % 251) as u8).collect();
    let oneshot = crc32(0, &data);
    for split in [0, 1, 7, 8, 9, 63, 64, 65, 512, 1020, 1021] {
        let (a, b) = data.split_at(split);
        assert_eq!(crc32(crc32(0, a), b), oneshot, "split {split}");
    }
}

/// Truncating a coalesced batch mid-frame delivers exactly the complete
/// frames before the cut and never invents or alters one — the broker
/// writer can die mid-`write_vectored` without corrupting a subscriber.
#[test]
fn truncation_mid_coalesced_batch_poisons_cleanly() {
    let mut batch = Vec::new();
    let mut frames = Vec::new();
    for seq in 0..5u64 {
        let payload: Vec<u8> = (0..17 * (seq + 1)).map(|i| (i * 7) as u8).collect();
        let encoded = encode_frame_to_vec(FrameKind::DataBatch, 2, seq, &payload);
        frames.push(encoded.clone());
        batch.extend_from_slice(&encoded);
    }
    let mut starts = vec![0usize];
    for f in &frames {
        starts.push(starts.last().unwrap() + f.len());
    }
    for cut in 0..batch.len() {
        let mut dec = FrameDecoder::new();
        dec.feed(&batch[..cut]);
        let mut got = Vec::new();
        loop {
            match dec.next_raw() {
                Ok(Some(raw)) => got.push(raw.bytes.to_vec()),
                Ok(None) => break,
                Err(e) => panic!("cut {cut}: truncation must not be an error yet: {e:?}"),
            }
        }
        let complete = starts[1..].iter().filter(|&&s| s <= cut).count();
        assert_eq!(got.len(), complete, "cut {cut}");
        for (a, b) in got.iter().zip(&frames) {
            assert_eq!(a, b, "cut {cut}: relayed frame altered");
        }
    }
}

/// Sanity anchor for the envelope layout constants the pass-through path
/// depends on: header length and CRC position. If the layout drifts,
/// this fails before any subtle relay bug does.
#[test]
fn envelope_layout_anchors() {
    let encoded = encode_frame_to_vec(
        FrameKind::DataBatch,
        0xAABB_CCDD,
        0x0102_0304_0506_0708,
        b"xyz",
    );
    assert_eq!(encoded.len(), HEADER_LEN + 3);
    assert_eq!(&encoded[..4], b"E2EN");
    // CRC covers version..len plus payload and sits in the last 4 header
    // bytes.
    let expect = crc32(crc32(0, &encoded[4..HEADER_LEN - 4]), b"xyz");
    let stored = u32::from_be_bytes(encoded[HEADER_LEN - 4..HEADER_LEN].try_into().unwrap());
    assert_eq!(stored, expect);
}
