//! Adversarial hardening of the transport envelope, mirroring the
//! timeseries crate's `wire_corruption` corpus one layer down: every
//! mangled byte stream must surface as a typed [`FrameError`] (or an
//! honest "need more bytes") — never a panic, never an allocation sized
//! by an attacker-controlled length claim, and never a silently
//! *different* accepted frame.
//!
//! CI runs this in release mode too: `debug_assert` guards are compiled
//! out there, so the corpus must hold without them.

use e2eprof_net::frame::{
    crc32, encode_frame, encode_frame_to_vec, Frame, FrameDecoder, FrameError, FrameKind,
    HEADER_LEN, MAX_PAYLOAD_LEN,
};
use e2eprof_net::msg::{
    decode_announce, decode_hello, decode_subscribe, encode_announce, encode_hello,
    encode_subscribe, Role, Subscribe, SubscribeSpec,
};

/// A realistic multi-frame stream: handshake, announce, then data of both
/// kinds — the shapes a broker connection actually carries.
fn sample_stream() -> Vec<u8> {
    let mut out = Vec::new();
    encode_frame(
        FrameKind::Hello,
        3,
        0,
        &encode_hello(Role::Tracer { node: 3 }),
        &mut out,
    );
    encode_frame(
        FrameKind::Announce,
        3,
        0,
        &encode_announce(&[(3, 0), (1, 3)]),
        &mut out,
    );
    encode_frame(FrameKind::DataBatch, 3, 1, b"batch payload bytes", &mut out);
    encode_frame(FrameKind::DataSeries, 3, 2, &[0u8; 8], &mut out);
    encode_frame(FrameKind::DataBatch, 3, 3, &[], &mut out);
    out
}

/// Decodes as much of `stream` as possible; returns the frames accepted
/// before the first error (if any).
fn drain(stream: &[u8]) -> (Vec<Frame>, Option<FrameError>) {
    let mut dec = FrameDecoder::new();
    dec.feed(stream);
    let mut frames = Vec::new();
    loop {
        match dec.next_frame() {
            Ok(Some(f)) => frames.push(f),
            Ok(None) => return (frames, None),
            Err(e) => return (frames, Some(e)),
        }
    }
}

#[test]
fn clean_stream_decodes_fully() {
    let (frames, err) = drain(&sample_stream());
    assert_eq!(err, None);
    assert_eq!(frames.len(), 5);
    assert_eq!(frames[2].seq, 1);
    assert_eq!(frames[3].kind, FrameKind::DataSeries);
}

/// Truncation at *every* byte boundary: the decoder either waits for more
/// bytes (all complete frames so far delivered, nothing invented) or — if
/// the cut lands inside the magic of a later frame — reports nothing
/// worse than the frames already accepted. It must never yield a frame
/// whose bytes were incomplete.
#[test]
fn truncation_at_every_boundary_never_invents_frames() {
    let stream = sample_stream();
    let (all, _) = drain(&stream);
    // Frame start offsets, so we know how many complete frames a cut keeps.
    let mut starts = Vec::new();
    let mut off = 0;
    for f in &all {
        starts.push(off);
        off += HEADER_LEN + f.payload.len();
    }
    starts.push(off);
    for cut in 0..stream.len() {
        let (frames, err) = drain(&stream[..cut]);
        let complete = starts.iter().filter(|&&s| s > 0 && s <= cut).count();
        assert_eq!(
            frames.len(),
            complete,
            "cut at {cut}: decoder must deliver exactly the complete frames"
        );
        for (a, b) in frames.iter().zip(&all) {
            assert_eq!(a, b, "cut at {cut}: delivered frame differs");
        }
        assert_eq!(err, None, "cut at {cut}: truncation is not an error yet");
    }
}

/// Every single-bit flip anywhere in the stream is either detected as a
/// typed error or swallows trailing frames by inflating a length — it can
/// never smuggle a *modified* frame through, because the CRC covers every
/// header field and the payload.
#[test]
fn every_single_bit_flip_is_detected_or_starves() {
    let stream = sample_stream();
    let (all, _) = drain(&stream);
    for i in 0..stream.len() {
        for bit in 0..8 {
            let mut s = stream.clone();
            s[i] ^= 1 << bit;
            let (frames, err) = drain(&s);
            // Frames decoded before the damaged one must be untouched.
            for (a, b) in frames.iter().zip(&all) {
                if a != b {
                    panic!("flip {i}.{bit}: accepted an altered frame: {a:?} vs {b:?}");
                }
            }
            assert!(
                err.is_some() || frames.len() < all.len(),
                "flip {i}.{bit}: stream fully decoded despite damage"
            );
        }
    }
}

#[test]
fn oversized_length_claims_are_rejected_before_allocation() {
    // Claim just past the cap, far past the cap, and u32::MAX; the header
    // is all the decoder ever sees — it must reject without waiting for
    // (or reserving room for) the claimed payload.
    for claim in [MAX_PAYLOAD_LEN + 1, 1 << 30, u32::MAX] {
        let mut frame = encode_frame_to_vec(FrameKind::DataBatch, 1, 1, &[0; 4]);
        frame[18..22].copy_from_slice(&claim.to_be_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&frame[..HEADER_LEN]);
        assert_eq!(
            dec.next_frame(),
            Err(FrameError::Oversized(claim)),
            "claim {claim}"
        );
    }
    // At the cap exactly the decoder waits for the payload instead.
    let mut frame = encode_frame_to_vec(FrameKind::DataBatch, 1, 1, &[0; 4]);
    frame[18..22].copy_from_slice(&MAX_PAYLOAD_LEN.to_be_bytes());
    let mut dec = FrameDecoder::new();
    dec.feed(&frame);
    assert_eq!(dec.next_frame(), Ok(None));
}

#[test]
fn garbage_between_frames_is_bad_magic_and_sticky() {
    let mut stream = sample_stream();
    let first_len = {
        let (all, _) = drain(&stream);
        HEADER_LEN + all[0].payload.len()
    };
    stream.splice(first_len..first_len, b"NOISE".iter().copied());
    let (frames, err) = drain(&stream);
    assert_eq!(frames.len(), 1, "the frame before the garbage survives");
    assert_eq!(err, Some(FrameError::BadMagic));
    // Sticky: the decoder stays poisoned even if clean bytes follow.
    let mut dec = FrameDecoder::new();
    dec.feed(&stream);
    loop {
        match dec.next_frame() {
            Ok(Some(_)) => {}
            Ok(None) => unreachable!("garbage must poison"),
            Err(_) => break,
        }
    }
    dec.feed(&sample_stream());
    assert_eq!(dec.next_frame(), Err(FrameError::BadMagic));
}

#[test]
fn unknown_version_and_kind_are_typed_errors() {
    let mut bad_version = encode_frame_to_vec(FrameKind::Hello, 0, 0, &[]);
    bad_version[4] = 9;
    let (_, err) = drain(&bad_version);
    assert_eq!(err, Some(FrameError::UnsupportedVersion(9)));

    let mut bad_kind = encode_frame_to_vec(FrameKind::Hello, 0, 0, &[]);
    bad_kind[5] = 200;
    let (_, err) = drain(&bad_kind);
    assert_eq!(err, Some(FrameError::BadKind(200)));
}

/// Control-plane payload decoders take frame payloads that passed the CRC
/// but may still be structurally hostile (a buggy or malicious peer signs
/// its own garbage correctly). They must return typed errors, never
/// panic, and cap their own declared counts.
#[test]
fn control_payload_decoders_survive_hostile_payloads() {
    // Truncation at every offset of each control payload.
    let hello = encode_hello(Role::Analyzer { shard: 2, of: 4 });
    let announce = encode_announce(&[(0, 1), (7, 3), (9, 9)]);
    let subscribe = encode_subscribe(&Subscribe {
        spec: SubscribeSpec::Edges(vec![(0, 1), (2, 3)]),
        resume: vec![(3, 77), (9, 1)],
    });
    assert_eq!(decode_hello(&hello), Ok(Role::Analyzer { shard: 2, of: 4 }));
    assert!(decode_announce(&announce).is_ok());
    assert!(decode_subscribe(&subscribe).is_ok());
    for cut in 0..hello.len() {
        assert!(decode_hello(&hello[..cut]).is_err(), "hello cut {cut}");
    }
    for cut in 0..announce.len() {
        assert!(
            decode_announce(&announce[..cut]).is_err(),
            "announce cut {cut}"
        );
    }
    for cut in 0..subscribe.len() {
        assert!(
            decode_subscribe(&subscribe[..cut]).is_err(),
            "subscribe cut {cut}"
        );
    }
    // Absurd declared element counts with no bytes behind them.
    let mut huge = Vec::new();
    huge.extend_from_slice(&u32::MAX.to_be_bytes());
    assert!(decode_announce(&huge).is_err());
    assert!(decode_subscribe(&huge).is_err());
}

/// Deterministic xorshift fuzz over the streaming decoder: random
/// garbage, with and without a valid magic grafted on, across random
/// chunking. No panics, no runaway buffering.
#[test]
fn random_garbage_never_panics_or_hoards_memory() {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    for round in 0..2_000 {
        let len = (next() % 160) as usize;
        let mut bytes: Vec<u8> = (0..len).map(|_| next() as u8).collect();
        if round % 2 == 0 && bytes.len() >= 6 {
            bytes[..4].copy_from_slice(b"E2EN");
            bytes[4] = 1;
            if round % 4 == 0 {
                bytes[5] = (next() % 6) as u8; // mostly-valid kinds
            }
        }
        let mut dec = FrameDecoder::new();
        // Feed in random chunks to exercise reassembly paths.
        let mut off = 0;
        while off < bytes.len() {
            let n = ((next() % 7) as usize + 1).min(bytes.len() - off);
            dec.feed(&bytes[off..off + n]);
            off += n;
            while let Ok(Some(_)) = dec.next_frame() {}
        }
        assert!(
            dec.pending() <= bytes.len(),
            "decoder buffered more than it was fed"
        );
    }
}

#[test]
fn crc_reference_vector_holds() {
    assert_eq!(crc32(0, b"123456789"), 0xCBF4_3926);
}
