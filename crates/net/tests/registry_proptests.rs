//! Property-based tests of the broker's routing/dedup state machine:
//! arbitrary interleavings of announce, subscribe, tracer disconnect,
//! re-announce, and subscriber churn must never lose an edge
//! subscription, and the sequence-number dedup must deliver every
//! published frame exactly once — no losses, no double delivery — no
//! matter how publishes interleave with replays.

use e2eprof_net::registry::{Freshness, Registry, SeqDedup};
use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};

/// One scripted operation against the registry.
#[derive(Debug, Clone)]
enum Op {
    /// Tracer `origin` announces edges derived from the seed list.
    Announce { origin: u32, edges: Vec<(u32, u32)> },
    /// Tracer `origin` disconnects (its announcements are forgotten).
    TracerGone { origin: u32 },
    /// Peer subscribes to everything.
    SubscribeAll { peer: u64 },
    /// Peer subscribes to the given edges only.
    SubscribeEdges { peer: u64, edges: Vec<(u32, u32)> },
    /// Subscriber disconnects.
    SubscriberGone { peer: u64 },
}

fn edge_strategy() -> impl Strategy<Value = (u32, u32)> {
    (0u32..4, 0u32..4)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0u32..3, prop::collection::vec(edge_strategy(), 0..4))
            .prop_map(|(origin, edges)| Op::Announce { origin, edges }),
        1 => (0u32..3).prop_map(|origin| Op::TracerGone { origin }),
        2 => (0u64..4).prop_map(|peer| Op::SubscribeAll { peer }),
        2 => (0u64..4, prop::collection::vec(edge_strategy(), 1..4))
            .prop_map(|(peer, edges)| Op::SubscribeEdges { peer, edges }),
        1 => (0u64..4).prop_map(|peer| Op::SubscriberGone { peer }),
    ]
}

/// A naive model of what the registry must guarantee, updated in
/// lockstep with the real one.
#[derive(Default)]
struct Model {
    announced: BTreeMap<u32, BTreeSet<(u32, u32)>>,
    /// peer -> None = all, Some(set) = edge filter.
    subs: BTreeMap<u64, Option<BTreeSet<(u32, u32)>>>,
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Subscriptions survive any interleaving of tracer churn: after any
    /// op sequence, `route` delivers to exactly the peers the model says
    /// should receive each origin's data.
    #[test]
    fn subscriptions_are_never_lost_under_churn(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let mut reg = Registry::new();
        let mut model = Model::default();
        for op in &ops {
            match op.clone() {
                Op::Announce { origin, edges } => {
                    reg.announce(origin, &edges);
                    model.announced.insert(origin, edges.into_iter().collect());
                }
                Op::TracerGone { origin } => {
                    reg.tracer_disconnected(origin);
                    model.announced.remove(&origin);
                }
                Op::SubscribeAll { peer } => {
                    reg.subscribe(peer, e2eprof_net::msg::SubscribeSpec::All);
                    model.subs.insert(peer, None);
                }
                Op::SubscribeEdges { peer, edges } => {
                    reg.subscribe(
                        peer,
                        e2eprof_net::msg::SubscribeSpec::Edges(edges.clone()),
                    );
                    model.subs.insert(peer, Some(edges.into_iter().collect()));
                }
                Op::SubscriberGone { peer } => {
                    reg.subscriber_disconnected(peer);
                    model.subs.remove(&peer);
                }
            }
            // After *every* op, routing must match the model exactly for
            // every possible origin.
            for origin in 0u32..3 {
                let got: BTreeSet<u64> = reg.route(origin).into_iter().collect();
                let announced = model.announced.get(&origin);
                let want: BTreeSet<u64> = model
                    .subs
                    .iter()
                    .filter(|(_, spec)| match spec {
                        None => true,
                        Some(filter) => announced.is_some_and(|edges| {
                            edges.iter().any(|e| filter.contains(e))
                        }),
                    })
                    .map(|(&peer, _)| peer)
                    .collect();
                prop_assert_eq!(
                    got, want,
                    "origin {} after {:?}", origin, op
                );
            }
        }
        // Routing order must be deterministic (peer-id order) — the
        // broker's delivery order must not depend on map iteration
        // accidents.
        for origin in 0u32..3 {
            let order = reg.route(origin);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(order, sorted);
        }
    }

    /// Exactly-once: an arbitrary interleaving of fresh publishes and
    /// replayed prefixes (what reconnecting tracers produce) passes each
    /// sequence number through the dedup exactly once, in order, per
    /// origin.
    #[test]
    fn dedup_delivers_every_frame_exactly_once(
        publishes in prop::collection::vec((0u32..3, 1u64..30), 1..60),
        replay_points in prop::collection::vec(0usize..60, 0..6),
    ) {
        // Build per-origin monotone sequence streams from the raw pairs:
        // each (origin, _) pair becomes that origin's next seq.
        let mut next: BTreeMap<u32, u64> = BTreeMap::new();
        let mut stream: Vec<(u32, u64)> = Vec::new();
        for &(origin, _) in &publishes {
            let seq = next.entry(origin).or_insert(0);
            *seq += 1;
            stream.push((origin, *seq));
        }
        // Splice in replays: at each chosen point, re-publish the last
        // few frames of that origin (a reconnecting tracer resending).
        let mut with_replays: Vec<(u32, u64)> = Vec::new();
        for (i, &(origin, seq)) in stream.iter().enumerate() {
            with_replays.push((origin, seq));
            if replay_points.contains(&i) {
                for back in (1..=seq.min(3)).rev() {
                    with_replays.push((origin, seq - back + 1));
                }
            }
        }
        let mut dedup = SeqDedup::new();
        let mut delivered: BTreeMap<u32, Vec<u64>> = BTreeMap::new();
        for &(origin, seq) in &with_replays {
            if dedup.offer(origin, seq) == Freshness::Fresh {
                delivered.entry(origin).or_default().push(seq);
            }
        }
        // Every origin's delivered stream is exactly 1..=max, once each.
        for (&origin, seqs) in &delivered {
            let max = *next.get(&origin).expect("origin published");
            let want: Vec<u64> = (1..=max).collect();
            prop_assert_eq!(
                seqs.clone(), want,
                "origin {}: delivered {:?}", origin, seqs
            );
        }
        prop_assert_eq!(delivered.len(), next.len());
        // The duplicate counter accounts for every suppressed frame.
        let total = with_replays.len() as u64;
        let fresh: u64 = delivered.values().map(|v| v.len() as u64).sum();
        prop_assert_eq!(dedup.duplicates, total - fresh);
    }

    /// Resume positions round-trip: a dedup rebuilt from another's resume
    /// positions accepts exactly the frames the original would.
    #[test]
    fn resume_positions_transfer_the_dedup_frontier(
        publishes in prop::collection::vec(0u32..3, 1..40),
        probes in prop::collection::vec((0u32..3, 1u64..20), 1..20),
    ) {
        let mut next: BTreeMap<u32, u64> = BTreeMap::new();
        let mut dedup = SeqDedup::new();
        for &origin in &publishes {
            let seq = next.entry(origin).or_insert(0);
            *seq += 1;
            assert_eq!(dedup.offer(origin, *seq), Freshness::Fresh);
        }
        let mut resumed = SeqDedup::new();
        for (origin, seq) in dedup.resume_positions() {
            assert_eq!(resumed.offer(origin, seq), Freshness::Fresh);
        }
        for &(origin, seq) in &probes {
            prop_assert_eq!(
                resumed.would_be_fresh(origin, seq),
                dedup.would_be_fresh(origin, seq),
                "origin {} seq {}", origin, seq
            );
        }
    }
}
