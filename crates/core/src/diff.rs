//! Structural and delay diffs between consecutive service graphs.
//!
//! Online analysis republishes a graph every `ΔW`; operators care about
//! what *changed*: edges appearing (a new path came into use — e.g. a
//! dispatcher decision), edges disappearing (a path fell silent or a
//! component stopped responding), and per-edge delay movement beyond a
//! threshold.

use crate::graph::ServiceGraph;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A delay movement on one edge.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayShift {
    /// Edge source.
    pub from: NodeId,
    /// Edge destination.
    pub to: NodeId,
    /// Hop delay in the older graph.
    pub before: Nanos,
    /// Hop delay in the newer graph.
    pub after: Nanos,
}

impl DelayShift {
    /// Absolute magnitude of the shift.
    pub fn magnitude(&self) -> Nanos {
        if self.after >= self.before {
            self.after - self.before
        } else {
            self.before - self.after
        }
    }
}

/// Differences between two refreshes of the same client's graph.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct GraphDiff {
    /// Edges present only in the newer graph.
    pub added: Vec<(NodeId, NodeId)>,
    /// Edges present only in the older graph.
    pub removed: Vec<(NodeId, NodeId)>,
    /// Common edges whose hop delay moved at least the threshold.
    pub shifted: Vec<DelayShift>,
}

impl GraphDiff {
    /// Whether nothing changed (at the given threshold).
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty() && self.shifted.is_empty()
    }
}

/// Diffs `new` against `old`, reporting delay shifts of at least
/// `threshold`.
///
/// # Example
///
/// ```
/// use e2eprof_core::diff::diff;
/// use e2eprof_core::graph::{GraphEdge, ServiceGraph};
/// use e2eprof_netsim::NodeId;
/// use e2eprof_timeseries::Nanos;
///
/// let edge = |ms| GraphEdge {
///     from: NodeId::new(0),
///     to: NodeId::new(1),
///     spikes: vec![e2eprof_core::graph::DelaySpike {
///         delay: Nanos::from_millis(ms),
///         strength: 0.9,
///     }],
///     hop_delay: Nanos::from_millis(ms),
/// };
/// let mut old = ServiceGraph::new(NodeId::new(9), "c".into(), NodeId::new(0));
/// old.add_edge(edge(10));
/// let mut new = ServiceGraph::new(NodeId::new(9), "c".into(), NodeId::new(0));
/// new.add_edge(edge(45));
/// let d = diff(&old, &new, Nanos::from_millis(20));
/// assert_eq!(d.shifted.len(), 1);
/// assert_eq!(d.shifted[0].magnitude(), Nanos::from_millis(35));
/// ```
pub fn diff(old: &ServiceGraph, new: &ServiceGraph, threshold: Nanos) -> GraphDiff {
    let index = |g: &ServiceGraph| -> HashMap<(NodeId, NodeId), Nanos> {
        g.edges()
            .iter()
            .map(|e| ((e.from, e.to), e.hop_delay))
            .collect()
    };
    let old_edges = index(old);
    let new_edges = index(new);

    let mut out = GraphDiff::default();
    for (&edge, &after) in &new_edges {
        match old_edges.get(&edge) {
            None => out.added.push(edge),
            Some(&before) => {
                let shift = DelayShift {
                    from: edge.0,
                    to: edge.1,
                    before,
                    after,
                };
                if shift.magnitude() >= threshold {
                    out.shifted.push(shift);
                }
            }
        }
    }
    for &edge in old_edges.keys() {
        if !new_edges.contains_key(&edge) {
            out.removed.push(edge);
        }
    }
    out.added.sort_unstable();
    out.removed.sort_unstable();
    out.shifted.sort_unstable_by_key(|s| (s.from, s.to));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphEdge;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn edge(from: u32, to: u32, ms: u64) -> GraphEdge {
        GraphEdge {
            from: n(from),
            to: n(to),
            spikes: vec![crate::graph::DelaySpike {
                delay: Nanos::from_millis(ms),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(ms),
        }
    }

    fn graph(edges: Vec<GraphEdge>) -> ServiceGraph {
        let mut g = ServiceGraph::new(n(9), "c".into(), n(0));
        for e in edges {
            g.add_edge(e);
        }
        g
    }

    #[test]
    fn identical_graphs_diff_empty() {
        let g = graph(vec![edge(0, 1, 5), edge(1, 2, 10)]);
        assert!(diff(&g, &g, Nanos::from_millis(1)).is_empty());
    }

    #[test]
    fn added_and_removed_edges() {
        let old = graph(vec![edge(0, 1, 5), edge(1, 2, 10)]);
        let new = graph(vec![edge(0, 1, 5), edge(1, 3, 7)]);
        let d = diff(&old, &new, Nanos::from_millis(1));
        assert_eq!(d.added, vec![(n(1), n(3))]);
        assert_eq!(d.removed, vec![(n(1), n(2))]);
        assert!(d.shifted.is_empty());
    }

    #[test]
    fn shifts_respect_threshold() {
        let old = graph(vec![edge(0, 1, 10), edge(1, 2, 10)]);
        let new = graph(vec![edge(0, 1, 14), edge(1, 2, 60)]);
        let d = diff(&old, &new, Nanos::from_millis(5));
        assert_eq!(d.shifted.len(), 1);
        assert_eq!(d.shifted[0].to, n(2));
        assert_eq!(d.shifted[0].magnitude(), Nanos::from_millis(50));
    }

    #[test]
    fn downward_shift_detected() {
        let old = graph(vec![edge(0, 1, 100)]);
        let new = graph(vec![edge(0, 1, 20)]);
        let d = diff(&old, &new, Nanos::from_millis(50));
        assert_eq!(d.shifted[0].before, Nanos::from_millis(100));
        assert_eq!(d.shifted[0].after, Nanos::from_millis(20));
    }
}
