//! The pathmap algorithm (Algorithm 1 of the paper).
//!
//! `ServiceRoot` seeds one service graph per client at each front-end
//! node; `ComputePath` recursively explores the system by
//! cross-correlating the client's request-arrival signal `T_c` with the
//! signal of every edge leaving the node under consideration. A
//! distinguishable spike establishes causality (the edge carries traffic
//! caused by this client's requests) and its lag measures the cumulative
//! delay from front-end arrival to that edge.

use crate::config::PathmapConfig;
use crate::graph::{GraphEdge, NodeLabels, ServiceGraph};
use crate::signals::EdgeSignals;
use e2eprof_netsim::{NodeId, Topology};
use e2eprof_timeseries::RleSeries;
use e2eprof_xcorr::engine::RleCorrelator;
use e2eprof_xcorr::{normalize, CorrSeries, Correlator};
use std::collections::HashSet;

/// Supplies lagged-product series to the path search.
///
/// The default implementation recomputes from scratch with a stateless
/// engine; the online analyzer substitutes an incremental provider that
/// only touches the `ΔW` ticks that changed since the last refresh.
pub trait CorrelationProvider {
    /// Raw lagged products of the client's source signal `x` against the
    /// edge signal `y`.
    fn correlate(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries;
}

/// Stateless provider wrapping any [`Correlator`] engine.
#[derive(Debug)]
pub struct StatelessProvider<'a> {
    engine: &'a dyn Correlator,
}

impl<'a> StatelessProvider<'a> {
    /// Wraps an engine.
    pub fn new(engine: &'a dyn Correlator) -> Self {
        StatelessProvider { engine }
    }
}

impl CorrelationProvider for StatelessProvider<'_> {
    fn correlate(
        &mut self,
        _client: NodeId,
        _edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries {
        self.engine.correlate(x, y, max_lag)
    }
}

/// The `(client, front-end)` pairs pathmap starts its search from.
///
/// In a real deployment these come from operator configuration (the front
/// end knows its clients and their service classes); for simulations they
/// are read off the topology.
pub fn roots_from_topology(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut roots = Vec::new();
    for (front, clients) in topo.front_ends() {
        for client in clients {
            roots.push((client, front));
        }
    }
    roots
}

/// The pathmap path-discovery algorithm.
#[derive(Debug)]
pub struct Pathmap {
    config: PathmapConfig,
    engine: Box<dyn Correlator>,
    /// Fraction of the maximum per-node delay above which a node is marked
    /// a bottleneck.
    bottleneck_fraction: f64,
}

impl Pathmap {
    /// Creates a pathmap instance with the production engine (RLE-native
    /// correlation).
    pub fn new(config: PathmapConfig) -> Self {
        Self::with_correlator(config, Box::new(RleCorrelator))
    }

    /// Creates a pathmap instance with an explicit correlation engine
    /// (used for the Fig. 9 engine comparison).
    pub fn with_correlator(config: PathmapConfig, engine: Box<dyn Correlator>) -> Self {
        Pathmap {
            config,
            engine,
            bottleneck_fraction: 0.5,
        }
    }

    /// Sets the bottleneck-marking threshold (fraction of the maximum
    /// per-node delay; default 0.5).
    pub fn with_bottleneck_fraction(mut self, fraction: f64) -> Self {
        self.bottleneck_fraction = fraction;
        self
    }

    /// The analysis configuration.
    pub fn config(&self) -> &PathmapConfig {
        &self.config
    }

    /// Runs `ServiceRoot`: discovers one service graph per
    /// `(client, front-end)` root using the configured stateless engine.
    pub fn discover(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
    ) -> Vec<ServiceGraph> {
        let mut provider = StatelessProvider::new(self.engine.as_ref());
        self.discover_with(signals, roots, labels, &mut provider)
    }

    /// Runs `ServiceRoot` with one thread per client graph.
    ///
    /// The paper (Section 3.7): "the pathmap algorithm can easily be made
    /// more scalable by parallely computing the service graph of each
    /// client node" — client graphs are independent given the shared
    /// read-only signals. Results are identical to
    /// [`discover`](Pathmap::discover), in root order.
    pub fn discover_parallel(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
    ) -> Vec<ServiceGraph> {
        self.discover_pooled(signals, roots, labels, roots.len(), || {
            StatelessProvider::new(self.engine.as_ref())
        })
    }

    /// Runs `ServiceRoot` over a worker pool, each worker exploring a
    /// contiguous shard of the roots with its own provider from
    /// `make_provider`.
    ///
    /// Graphs are returned in root order regardless of worker count and
    /// `num_workers <= 1` runs entirely on the calling thread, so results
    /// are bitwise identical to the serial
    /// [`discover_with`](Pathmap::discover_with) whenever the providers
    /// are (the online analyzer's cached providers satisfy this by
    /// construction: each `(client, edge)` pair's correlation is
    /// precomputed once, in stable key order, before discovery starts).
    pub fn discover_pooled<P, F>(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
        num_workers: usize,
        make_provider: F,
    ) -> Vec<ServiceGraph>
    where
        P: CorrelationProvider + Send,
        F: Fn() -> P + Sync,
    {
        self.discover_pooled_with_providers(signals, roots, labels, num_workers, make_provider)
            .0
    }

    /// Like [`discover_pooled`](Pathmap::discover_pooled), but also hands
    /// back each root's provider after its exploration (in root order), so
    /// callers can harvest per-worker provider state — the online analyzer
    /// collects the incremental correlators created for pairs first
    /// reached during discovery this way, without a shared lock.
    pub fn discover_pooled_with_providers<P, F>(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
        num_workers: usize,
        make_provider: F,
    ) -> (Vec<ServiceGraph>, Vec<P>)
    where
        P: CorrelationProvider + Send,
        F: Fn() -> P + Sync,
    {
        // The full client set must be shared across workers: a worker
        // exploring one client's graph must still know that the *other*
        // clients are untraced endpoints it cannot recurse into.
        let clients: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        let results = crate::parallel::map_sharded(roots, num_workers, |&(client, front)| {
            let mut provider = make_provider();
            let graph = self.discover_one(signals, client, front, &clients, labels, &mut provider);
            (graph, provider)
        });
        let mut graphs = Vec::with_capacity(results.len());
        let mut providers = Vec::with_capacity(results.len());
        for (graph, provider) in results {
            graphs.extend(graph);
            providers.push(provider);
        }
        (graphs, providers)
    }

    /// Runs `ServiceRoot` with an explicit correlation provider.
    pub fn discover_with(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
        provider: &mut dyn CorrelationProvider,
    ) -> Vec<ServiceGraph> {
        let clients: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        let mut graphs = Vec::new();
        for &(client, front) in roots {
            if let Some(graph) =
                self.discover_one(signals, client, front, &clients, labels, provider)
            {
                graphs.push(graph);
            }
        }
        graphs
    }

    /// Builds one client's graph (`None` if its source signal is absent).
    fn discover_one(
        &self,
        signals: &EdgeSignals,
        client: NodeId,
        front: NodeId,
        clients: &HashSet<NodeId>,
        labels: &NodeLabels,
        provider: &mut dyn CorrelationProvider,
    ) -> Option<ServiceGraph> {
        let x = signals.source_signal(client, front)?;
        let mut graph = ServiceGraph::new(client, labels.label(client), front);
        graph.add_vertex(front, labels.label(front));
        // The client's own edge carries no measured delay (clients are
        // untraced); it anchors the graph.
        graph.add_edge(GraphEdge::anchor(client, front));
        let mut visited = HashSet::new();
        self.compute_path(
            &mut graph,
            client,
            &x,
            front,
            0,
            &mut visited,
            clients,
            signals,
            labels,
            provider,
        );
        graph.recompute_hop_delays();
        graph.annotate_bottlenecks(self.bottleneck_fraction);
        Some(graph)
    }

    /// `ComputePath`: explores edges out of `node`, adding those whose
    /// correlation with `x` spikes, and recursing depth-first.
    #[allow(clippy::too_many_arguments)]
    fn compute_path(
        &self,
        graph: &mut ServiceGraph,
        client: NodeId,
        x: &RleSeries,
        node: NodeId,
        base_lag: u64,
        visited: &mut HashSet<NodeId>,
        clients: &HashSet<NodeId>,
        signals: &EdgeSignals,
        labels: &NodeLabels,
        provider: &mut dyn CorrelationProvider,
    ) {
        visited.insert(node);
        let detector = self.config.spike_detector();
        let quanta = self.config.quanta();
        let max_lag = signals.max_lag();
        for &next in signals.edges_from(node) {
            let Some(y) = signals.target_signal(node, next) else {
                continue;
            };
            let raw = provider.correlate(client, (node, next), x, y, max_lag);
            let rho = normalize::normalize(&raw, x, y);
            let spikes: Vec<_> = detector
                .detect(rho.values())
                .into_iter()
                .filter(|s| s.value >= self.config.min_spike_value())
                .collect();
            if spikes.is_empty() {
                continue;
            }
            graph.add_vertex(next, labels.label(next));
            let min_lag = spikes.iter().map(|s| s.lag).min().expect("non-empty");
            graph.add_edge(GraphEdge {
                from: node,
                to: next,
                spikes: spikes
                    .iter()
                    .map(|s| crate::graph::DelaySpike {
                        delay: quanta.ticks_to_nanos(s.lag),
                        strength: s.value,
                    })
                    .collect(),
                hop_delay: quanta.ticks_to_nanos(min_lag.saturating_sub(base_lag)),
            });
            if !visited.contains(&next) && !clients.contains(&next) {
                self.compute_path(
                    graph, client, x, next, min_lag, visited, clients, signals, labels, provider,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeLabels;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;
    use e2eprof_timeseries::Nanos;

    /// Short-horizon config so tests stay fast: W = 20 s, T_u = 2 s.
    fn test_cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_secs(2))
            .build()
    }

    /// client -> web -> app -> db chain.
    fn chain_sim(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("bid");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let app = t.service("app", ServiceConfig::new(DelayDist::exponential_millis(12)));
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
        let cli = t.client("cli", class, web, Workload::poisson(25.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, app, DelayDist::constant_millis(1));
        t.connect(app, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(app));
        t.route(app, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    fn discover(sim: &Simulation) -> Vec<ServiceGraph> {
        let cfg = test_cfg();
        let pm = Pathmap::new(cfg.clone());
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let labels = NodeLabels::from_topology(sim.topology());
        pm.discover(&signals, &roots_from_topology(sim.topology()), &labels)
    }

    #[test]
    fn chain_path_fully_discovered() {
        let mut sim = chain_sim(3);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        assert_eq!(graphs.len(), 1);
        let g = &graphs[0];
        // Forward path.
        assert!(g.has_edge_between("web", "app"));
        assert!(g.has_edge_between("app", "db"));
        // Return path.
        assert!(g.has_edge_between("db", "app"));
        assert!(g.has_edge_between("app", "web"));
        assert!(g.has_edge_between("web", "cli"));
    }

    #[test]
    fn cumulative_delays_increase_along_path() {
        let mut sim = chain_sim(4);
        sim.run_until(Nanos::from_secs(30));
        let g = &discover(&sim)[0];
        let cum = |a: &str, b: &str| {
            let e = g
                .edges()
                .iter()
                .find(|e| g.label_of(e.from) == a && g.label_of(e.to) == b)
                .unwrap_or_else(|| panic!("edge {a}->{b}"));
            e.min_delay().unwrap()
        };
        let up1 = cum("web", "app");
        let up2 = cum("app", "db");
        let back = cum("web", "cli");
        assert!(up1 < up2, "{up1} < {up2}");
        assert!(up2 < back, "{up2} < {back}");
    }

    #[test]
    fn app_server_marked_bottleneck() {
        let mut sim = chain_sim(5);
        sim.run_until(Nanos::from_secs(30));
        let g = &discover(&sim)[0];
        let app = g
            .vertices()
            .iter()
            .find(|v| v.label == "app")
            .expect("app vertex");
        assert!(app.bottleneck, "app (20ms exp + db round trip) dominates");
    }

    #[test]
    fn unrelated_branch_not_discovered() {
        // Two clients with disjoint backends behind one front end: each
        // graph must contain only its own branch.
        let mut t = TopologyBuilder::new();
        let bid = t.service_class("bid");
        let cmt = t.service_class("comment");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let s1 = t.service("s1", ServiceConfig::new(DelayDist::exponential_millis(15)));
        let s2 = t.service("s2", ServiceConfig::new(DelayDist::exponential_millis(15)));
        let c1 = t.client("c1", bid, web, Workload::poisson(25.0));
        let c2 = t.client("c2", cmt, web, Workload::poisson(25.0));
        t.connect(c1, web, DelayDist::constant_millis(1));
        t.connect(c2, web, DelayDist::constant_millis(1));
        t.connect(web, s1, DelayDist::constant_millis(1));
        t.connect(web, s2, DelayDist::constant_millis(1));
        t.route(web, bid, Route::fixed(s1));
        t.route(web, cmt, Route::fixed(s2));
        t.route(s1, bid, Route::terminal());
        t.route(s2, cmt, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 6);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        assert_eq!(graphs.len(), 2);
        let g1 = graphs.iter().find(|g| g.client_label == "c1").unwrap();
        let g2 = graphs.iter().find(|g| g.client_label == "c2").unwrap();
        assert!(g1.has_edge_between("web", "s1"));
        assert!(
            !g1.has_edge_between("web", "s2"),
            "c1's graph leaked into s2:\n{g1}"
        );
        assert!(g2.has_edge_between("web", "s2"));
        assert!(
            !g2.has_edge_between("web", "s1"),
            "c2's graph leaked into s1"
        );
        // Cross-client response edges must not appear either.
        assert!(!g1.has_edge_between("web", "c2"));
        assert!(!g2.has_edge_between("web", "c1"));
    }

    #[test]
    fn round_robin_discovers_both_paths() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("bid");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let a = t.service("a", ServiceConfig::new(DelayDist::exponential_millis(12)));
        let b = t.service("b", ServiceConfig::new(DelayDist::exponential_millis(12)));
        let cli = t.client("cli", class, web, Workload::poisson(50.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, a, DelayDist::constant_millis(1));
        t.connect(web, b, DelayDist::constant_millis(1));
        t.route(web, class, Route::round_robin(vec![a, b]));
        t.route(a, class, Route::terminal());
        t.route(b, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 7);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        let g = &graphs[0];
        assert!(g.has_edge_between("web", "a"));
        assert!(g.has_edge_between("web", "b"));
        assert!(g.has_edge_between("a", "web"));
        assert!(g.has_edge_between("b", "web"));
    }

    #[test]
    fn all_stateless_engines_find_the_same_path() {
        use e2eprof_xcorr::engine::all_engines;
        let mut sim = chain_sim(8);
        sim.run_until(Nanos::from_secs(30));
        let cfg = test_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let labels = NodeLabels::from_topology(sim.topology());
        let roots = roots_from_topology(sim.topology());
        let mut edge_sets = Vec::new();
        for engine in all_engines() {
            let pm = Pathmap::with_correlator(cfg.clone(), engine);
            let graphs = pm.discover(&signals, &roots, &labels);
            let mut edges: Vec<(NodeId, NodeId)> =
                graphs[0].edges().iter().map(|e| (e.from, e.to)).collect();
            edges.sort_unstable();
            edge_sets.push(edges);
        }
        for pair in edge_sets.windows(2) {
            assert_eq!(pair[0], pair[1], "engines disagree on discovered edges");
        }
    }

    #[test]
    fn empty_capture_yields_anchored_graph_only() {
        let sim = chain_sim(9); // never run
        let graphs = discover(&sim);
        // The source signal is missing entirely; no graph is produced.
        assert!(graphs.is_empty() || graphs[0].edges().len() <= 1);
    }
}
