//! The pathmap algorithm (Algorithm 1 of the paper).
//!
//! `ServiceRoot` seeds one service graph per client at each front-end
//! node; `ComputePath` recursively explores the system by
//! cross-correlating the client's request-arrival signal `T_c` with the
//! signal of every edge leaving the node under consideration. A
//! distinguishable spike establishes causality (the edge carries traffic
//! caused by this client's requests) and its lag measures the cumulative
//! delay from front-end arrival to that edge.

use crate::config::PathmapConfig;
use crate::graph::{GraphEdge, NodeLabels, ServiceGraph};
use crate::signals::EdgeSignals;
use e2eprof_netsim::{NodeId, Topology};
use e2eprof_timeseries::RleSeries;
use e2eprof_xcorr::screen::{self, Screen};
use e2eprof_xcorr::{normalize, CorrSeries, Correlator};
use std::collections::{HashMap, HashSet};

/// Supplies lagged-product series to the path search.
///
/// The default implementation recomputes from scratch with a stateless
/// engine; the online analyzer substitutes an incremental provider that
/// only touches the `ΔW` ticks that changed since the last refresh.
pub trait CorrelationProvider {
    /// Raw lagged products of the client's source signal `x` against the
    /// edge signal `y`.
    fn correlate(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries;

    /// Whether the coarse screening tier has proven this pair cannot
    /// produce a spike at or above the configured floor, letting the path
    /// search skip the full-lag correlation entirely.
    ///
    /// The default never screens, so providers without a coarse tier are
    /// unaffected. Implementations must stay *conservative*: returning
    /// `true` asserts every fine normalized coefficient is below the spike
    /// floor (see [`e2eprof_xcorr::screen`] for the bound that makes this
    /// sound for non-negative density signals).
    fn screened_out(
        &mut self,
        _client: NodeId,
        _edge: (NodeId, NodeId),
        _x: &RleSeries,
        _y: &RleSeries,
        _max_lag: u64,
    ) -> bool {
        false
    }
}

/// Counters from a screening tier: how many `(client, edge)` candidates
/// were examined and how many the coarse bound pruned before full-lag
/// correlation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScreeningStats {
    /// Candidate pairs the screen examined.
    pub candidates: u64,
    /// Pairs pruned (no full-resolution correlation performed).
    pub pruned: u64,
}

impl ScreeningStats {
    /// The pruned fraction in `[0, 1]` (`0` when nothing was examined).
    pub fn pruned_fraction(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.pruned as f64 / self.candidates as f64
        }
    }

    /// Accumulates another tier's counters into this one.
    pub fn absorb(&mut self, other: ScreeningStats) {
        self.candidates += other.candidates;
        self.pruned += other.pruned;
    }
}

/// Counters from the activity-gated incremental refresh
/// ([`crate::config::PathmapConfig::incremental`]): how much per-refresh
/// work the change-epoch gate and dirty-root cache avoided.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Coarse screening pairs considered this refresh.
    pub coarse_pairs: u64,
    /// Coarse pairs skipped (cached bound and decision carried forward).
    pub coarse_skipped: u64,
    /// Fine correlation pairs considered this refresh.
    pub fine_pairs: u64,
    /// Fine pairs skipped (cached `CorrSeries` carried forward).
    pub fine_skipped: u64,
    /// Roots eligible for discovery this refresh.
    pub roots: u64,
    /// Roots that reused last refresh's `ServiceGraph` unchanged.
    pub reused_roots: u64,
}

impl IncrementalStats {
    /// The fraction of fine pairs skipped in `[0, 1]` (`0` when nothing
    /// was considered).
    pub fn fine_skipped_fraction(&self) -> f64 {
        if self.fine_pairs == 0 {
            0.0
        } else {
            self.fine_skipped as f64 / self.fine_pairs as f64
        }
    }

    /// The fraction of roots reused in `[0, 1]` (`0` when nothing was
    /// discovered).
    pub fn reused_fraction(&self) -> f64 {
        if self.roots == 0 {
            0.0
        } else {
            self.reused_roots as f64 / self.roots as f64
        }
    }

    /// Accumulates another analyzer's counters into this one (the CLI
    /// sums over shards, like [`ScreeningStats::absorb`]).
    pub fn absorb(&mut self, other: IncrementalStats) {
        self.coarse_pairs += other.coarse_pairs;
        self.coarse_skipped += other.coarse_skipped;
        self.fine_pairs += other.fine_pairs;
        self.fine_skipped += other.fine_skipped;
        self.roots += other.roots;
        self.reused_roots += other.reused_roots;
    }
}

/// Stateless provider wrapping any [`Correlator`] engine.
#[derive(Debug)]
pub struct StatelessProvider<'a> {
    engine: &'a dyn Correlator,
}

impl<'a> StatelessProvider<'a> {
    /// Wraps an engine.
    pub fn new(engine: &'a dyn Correlator) -> Self {
        StatelessProvider { engine }
    }
}

impl CorrelationProvider for StatelessProvider<'_> {
    fn correlate(
        &mut self,
        _client: NodeId,
        _edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries {
        self.engine.correlate(x, y, max_lag)
    }
}

/// Stateless provider with a coarse screening tier in front of the engine.
///
/// Before paying full-lag cost for a candidate pair, it correlates the
/// `k`-decimated signals (a `1/k²` amount of work), upper-bounds every
/// fine normalized coefficient from the coarse products, and prunes the
/// pair when the bound cannot reach the spike floor. Decisions are
/// memoized per `(client, edge)` so revisits during the depth-first search
/// are free.
#[derive(Debug)]
pub struct ScreenedStatelessProvider<'a> {
    engine: &'a dyn Correlator,
    screen: Screen,
    /// Decimated view of the window's signals, shared across workers.
    coarse: &'a EdgeSignals,
    /// `client → front-end`, to locate each client's coarse source signal.
    fronts: &'a HashMap<NodeId, NodeId>,
    /// Per-client coarse source signal (`None` cached too: absent stays
    /// absent for the whole window).
    sources: HashMap<NodeId, Option<RleSeries>>,
    decisions: HashMap<(NodeId, (NodeId, NodeId)), bool>,
    stats: ScreeningStats,
}

impl<'a> ScreenedStatelessProvider<'a> {
    /// Wraps an engine with a screening tier over `coarse` (which must be
    /// `signals.decimate(screen.factor())` of the window under analysis).
    pub fn new(
        engine: &'a dyn Correlator,
        screen: Screen,
        coarse: &'a EdgeSignals,
        fronts: &'a HashMap<NodeId, NodeId>,
    ) -> Self {
        ScreenedStatelessProvider {
            engine,
            screen,
            coarse,
            fronts,
            sources: HashMap::new(),
            decisions: HashMap::new(),
            stats: ScreeningStats::default(),
        }
    }

    /// The screening counters accumulated so far.
    pub fn stats(&self) -> ScreeningStats {
        self.stats
    }

    fn decide(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> bool {
        // Anything the coarse tier cannot see is passed through unpruned.
        let Some(&front) = self.fronts.get(&client) else {
            return false;
        };
        if !self.sources.contains_key(&client) {
            let xc = self.coarse.source_signal(client, front);
            self.sources.insert(client, xc);
        }
        let Some(xc) = self.sources.get(&client).and_then(Option::as_ref) else {
            return false;
        };
        let Some(yc) = self.coarse.target_signal(edge.0, edge.1) else {
            return false;
        };
        let rc = self.engine.correlate(xc, yc, self.coarse.max_lag());
        // Offline windows decimate the full retained span, so there is no
        // unfolded tail: slack is zero. Live pairs exit the bound scan as
        // soon as the promote threshold is cleared — the decision is the
        // same as with the exact bound.
        let stop_at = self.screen.decision_threshold(false) - screen::BOUND_MARGIN;
        let bound =
            screen::max_rho_bound_until(&rc, self.screen.factor(), x, y, max_lag, 0.0, stop_at);
        !self.screen.next_active(bound, false)
    }
}

impl CorrelationProvider for ScreenedStatelessProvider<'_> {
    fn correlate(
        &mut self,
        _client: NodeId,
        _edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries {
        self.engine.correlate(x, y, max_lag)
    }

    fn screened_out(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> bool {
        if let Some(&d) = self.decisions.get(&(client, edge)) {
            return d;
        }
        let pruned = self.decide(client, edge, x, y, max_lag);
        self.stats.candidates += 1;
        if pruned {
            self.stats.pruned += 1;
        }
        self.decisions.insert((client, edge), pruned);
        pruned
    }
}

/// The `(client, front-end)` pairs pathmap starts its search from.
///
/// In a real deployment these come from operator configuration (the front
/// end knows its clients and their service classes); for simulations they
/// are read off the topology.
pub fn roots_from_topology(topo: &Topology) -> Vec<(NodeId, NodeId)> {
    let mut roots = Vec::new();
    for (front, clients) in topo.front_ends() {
        for client in clients {
            roots.push((client, front));
        }
    }
    roots
}

/// The pathmap path-discovery algorithm.
#[derive(Debug)]
pub struct Pathmap {
    config: PathmapConfig,
    engine: Box<dyn Correlator>,
    /// Fraction of the maximum per-node delay above which a node is marked
    /// a bottleneck.
    bottleneck_fraction: f64,
}

impl Pathmap {
    /// Creates a pathmap instance with the engine selected by
    /// [`PathmapConfig::backend`] (default: RLE-native correlation,
    /// bit-for-bit identical to previous releases).
    pub fn new(config: PathmapConfig) -> Self {
        let engine = config.build_engine();
        Self::with_correlator(config, engine)
    }

    /// Creates a pathmap instance with an explicit correlation engine
    /// (used for the Fig. 9 engine comparison).
    pub fn with_correlator(config: PathmapConfig, engine: Box<dyn Correlator>) -> Self {
        Pathmap {
            config,
            engine,
            bottleneck_fraction: 0.5,
        }
    }

    /// Sets the bottleneck-marking threshold (fraction of the maximum
    /// per-node delay; default 0.5).
    pub fn with_bottleneck_fraction(mut self, fraction: f64) -> Self {
        self.bottleneck_fraction = fraction;
        self
    }

    /// The analysis configuration.
    pub fn config(&self) -> &PathmapConfig {
        &self.config
    }

    /// The correlation engine backing this instance.
    pub fn engine(&self) -> &dyn Correlator {
        self.engine.as_ref()
    }

    /// Runs `ServiceRoot`: discovers one service graph per
    /// `(client, front-end)` root using the configured stateless engine.
    ///
    /// With [`PathmapConfig::screening`] set, candidate edges are first
    /// screened against the coarse (decimated) correlation bound and only
    /// survivors get the full-lag treatment; the bound is conservative, so
    /// the discovered graphs are unchanged.
    pub fn discover(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
    ) -> Vec<ServiceGraph> {
        if let Some(screen) = self.config.screen() {
            let coarse = signals.decimate(screen.factor());
            let fronts: HashMap<NodeId, NodeId> = roots.iter().copied().collect();
            let mut provider =
                ScreenedStatelessProvider::new(self.engine.as_ref(), screen, &coarse, &fronts);
            return self.discover_with(signals, roots, labels, &mut provider);
        }
        let mut provider = StatelessProvider::new(self.engine.as_ref());
        self.discover_with(signals, roots, labels, &mut provider)
    }

    /// Runs `ServiceRoot` with one thread per client graph.
    ///
    /// The paper (Section 3.7): "the pathmap algorithm can easily be made
    /// more scalable by parallely computing the service graph of each
    /// client node" — client graphs are independent given the shared
    /// read-only signals. Results are identical to
    /// [`discover`](Pathmap::discover), in root order.
    pub fn discover_parallel(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
    ) -> Vec<ServiceGraph> {
        if let Some(screen) = self.config.screen() {
            // One decimation pass, shared read-only by every worker.
            let coarse = signals.decimate(screen.factor());
            let fronts: HashMap<NodeId, NodeId> = roots.iter().copied().collect();
            return self.discover_pooled(signals, roots, labels, roots.len(), || {
                ScreenedStatelessProvider::new(self.engine.as_ref(), screen, &coarse, &fronts)
            });
        }
        self.discover_pooled(signals, roots, labels, roots.len(), || {
            StatelessProvider::new(self.engine.as_ref())
        })
    }

    /// Runs `ServiceRoot` over a worker pool, each worker exploring a
    /// contiguous shard of the roots with its own provider from
    /// `make_provider`.
    ///
    /// Graphs are returned in root order regardless of worker count and
    /// `num_workers <= 1` runs entirely on the calling thread, so results
    /// are bitwise identical to the serial
    /// [`discover_with`](Pathmap::discover_with) whenever the providers
    /// are (the online analyzer's cached providers satisfy this by
    /// construction: each `(client, edge)` pair's correlation is
    /// precomputed once, in stable key order, before discovery starts).
    pub fn discover_pooled<P, F>(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
        num_workers: usize,
        make_provider: F,
    ) -> Vec<ServiceGraph>
    where
        P: CorrelationProvider + Send,
        F: Fn() -> P + Sync,
    {
        self.discover_pooled_with_providers(signals, roots, labels, num_workers, make_provider)
            .0
    }

    /// Like [`discover_pooled`](Pathmap::discover_pooled), but also hands
    /// back each root's provider after its exploration (in root order), so
    /// callers can harvest per-worker provider state — the online analyzer
    /// collects the incremental correlators created for pairs first
    /// reached during discovery this way, without a shared lock.
    pub fn discover_pooled_with_providers<P, F>(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
        num_workers: usize,
        make_provider: F,
    ) -> (Vec<ServiceGraph>, Vec<P>)
    where
        P: CorrelationProvider + Send,
        F: Fn() -> P + Sync,
    {
        // The full client set must be shared across workers: a worker
        // exploring one client's graph must still know that the *other*
        // clients are untraced endpoints it cannot recurse into.
        let clients: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        self.discover_pooled_among(signals, roots, &clients, labels, num_workers, make_provider)
    }

    /// Like
    /// [`discover_pooled_with_providers`](Pathmap::discover_pooled_with_providers),
    /// but with an explicit client universe.
    ///
    /// This is the sharded-analyzer entry point: a shard explores only its
    /// *owned* roots, yet discovery must still treat every client in the
    /// whole deployment as an untraced endpoint it cannot recurse into —
    /// deriving the universe from the shard's own roots would let its
    /// exploration wander through other shards' client nodes and diverge
    /// from the single-analyzer graphs. `client_universe` must be a
    /// superset of the clients in `roots`.
    pub fn discover_pooled_among<P, F>(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        client_universe: &HashSet<NodeId>,
        labels: &NodeLabels,
        num_workers: usize,
        make_provider: F,
    ) -> (Vec<ServiceGraph>, Vec<P>)
    where
        P: CorrelationProvider + Send,
        F: Fn() -> P + Sync,
    {
        let results = self.discover_each_among(
            signals,
            roots,
            client_universe,
            labels,
            num_workers,
            make_provider,
        );
        let mut graphs = Vec::with_capacity(results.len());
        let mut providers = Vec::with_capacity(results.len());
        for (graph, provider) in results {
            graphs.extend(graph);
            providers.push(provider);
        }
        (graphs, providers)
    }

    /// Like [`discover_pooled_among`](Pathmap::discover_pooled_among), but
    /// un-flattened: one `(Option<ServiceGraph>, P)` slot per input root,
    /// in root order (`None` where the root's source signal is absent).
    ///
    /// The online analyzer's dirty-root reuse path needs the per-root
    /// alignment: it discovers only the *dirty* subset of roots here and
    /// splices cached graphs for the clean roots in between, which the
    /// flattened form cannot express.
    pub fn discover_each_among<P, F>(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        client_universe: &HashSet<NodeId>,
        labels: &NodeLabels,
        num_workers: usize,
        make_provider: F,
    ) -> Vec<(Option<ServiceGraph>, P)>
    where
        P: CorrelationProvider + Send,
        F: Fn() -> P + Sync,
    {
        let clients = client_universe;
        crate::parallel::map_sharded(roots, num_workers, |&(client, front)| {
            let mut provider = make_provider();
            let graph = self.discover_one(signals, client, front, clients, labels, &mut provider);
            (graph, provider)
        })
    }

    /// Runs `ServiceRoot` with an explicit correlation provider.
    pub fn discover_with(
        &self,
        signals: &EdgeSignals,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
        provider: &mut dyn CorrelationProvider,
    ) -> Vec<ServiceGraph> {
        let clients: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        let mut graphs = Vec::new();
        for &(client, front) in roots {
            if let Some(graph) =
                self.discover_one(signals, client, front, &clients, labels, provider)
            {
                graphs.push(graph);
            }
        }
        graphs
    }

    /// Builds one client's graph (`None` if its source signal is absent).
    fn discover_one(
        &self,
        signals: &EdgeSignals,
        client: NodeId,
        front: NodeId,
        clients: &HashSet<NodeId>,
        labels: &NodeLabels,
        provider: &mut dyn CorrelationProvider,
    ) -> Option<ServiceGraph> {
        let x = signals.source_signal(client, front)?;
        let mut graph = ServiceGraph::new(client, labels.label(client), front);
        graph.add_vertex(front, labels.label(front));
        // The client's own edge carries no measured delay (clients are
        // untraced); it anchors the graph.
        graph.add_edge(GraphEdge::anchor(client, front));
        let mut visited = HashSet::new();
        self.compute_path(
            &mut graph,
            client,
            &x,
            front,
            0,
            &mut visited,
            clients,
            signals,
            labels,
            provider,
        );
        graph.recompute_hop_delays();
        graph.annotate_bottlenecks(self.bottleneck_fraction);
        Some(graph)
    }

    /// `ComputePath`: explores edges out of `node`, adding those whose
    /// correlation with `x` spikes, and recursing depth-first.
    #[allow(clippy::too_many_arguments)]
    fn compute_path(
        &self,
        graph: &mut ServiceGraph,
        client: NodeId,
        x: &RleSeries,
        node: NodeId,
        base_lag: u64,
        visited: &mut HashSet<NodeId>,
        clients: &HashSet<NodeId>,
        signals: &EdgeSignals,
        labels: &NodeLabels,
        provider: &mut dyn CorrelationProvider,
    ) {
        visited.insert(node);
        let detector = self.config.spike_detector();
        let quanta = self.config.quanta();
        let max_lag = signals.max_lag();
        for &next in signals.edges_from(node) {
            let Some(y) = signals.target_signal(node, next) else {
                continue;
            };
            if provider.screened_out(client, (node, next), x, y, max_lag) {
                continue;
            }
            let raw = provider.correlate(client, (node, next), x, y, max_lag);
            let rho = normalize::normalize(&raw, x, y);
            let spikes: Vec<_> = detector
                .detect(rho.values())
                .into_iter()
                .filter(|s| s.value >= self.config.min_spike_value())
                .collect();
            if spikes.is_empty() {
                continue;
            }
            graph.add_vertex(next, labels.label(next));
            let min_lag = spikes.iter().map(|s| s.lag).min().expect("non-empty");
            graph.add_edge(GraphEdge {
                from: node,
                to: next,
                spikes: spikes
                    .iter()
                    .map(|s| crate::graph::DelaySpike {
                        delay: quanta.ticks_to_nanos(s.lag),
                        strength: s.value,
                    })
                    .collect(),
                hop_delay: quanta.ticks_to_nanos(min_lag.saturating_sub(base_lag)),
            });
            if !visited.contains(&next) && !clients.contains(&next) {
                self.compute_path(
                    graph, client, x, next, min_lag, visited, clients, signals, labels, provider,
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NodeLabels;
    use crate::testutil::wide_fanout_sim;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;
    use e2eprof_timeseries::Nanos;
    use e2eprof_xcorr::engine::RleCorrelator;

    /// Short-horizon config so tests stay fast: W = 20 s, T_u = 2 s.
    fn test_cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_secs(2))
            .build()
    }

    /// client -> web -> app -> db chain.
    fn chain_sim(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("bid");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let app = t.service("app", ServiceConfig::new(DelayDist::exponential_millis(12)));
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
        let cli = t.client("cli", class, web, Workload::poisson(25.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, app, DelayDist::constant_millis(1));
        t.connect(app, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(app));
        t.route(app, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    fn discover(sim: &Simulation) -> Vec<ServiceGraph> {
        let cfg = test_cfg();
        let pm = Pathmap::new(cfg.clone());
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let labels = NodeLabels::from_topology(sim.topology());
        pm.discover(&signals, &roots_from_topology(sim.topology()), &labels)
    }

    #[test]
    fn chain_path_fully_discovered() {
        let mut sim = chain_sim(3);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        assert_eq!(graphs.len(), 1);
        let g = &graphs[0];
        // Forward path.
        assert!(g.has_edge_between("web", "app"));
        assert!(g.has_edge_between("app", "db"));
        // Return path.
        assert!(g.has_edge_between("db", "app"));
        assert!(g.has_edge_between("app", "web"));
        assert!(g.has_edge_between("web", "cli"));
    }

    #[test]
    fn cumulative_delays_increase_along_path() {
        let mut sim = chain_sim(4);
        sim.run_until(Nanos::from_secs(30));
        let g = &discover(&sim)[0];
        let cum = |a: &str, b: &str| {
            let e = g
                .edges()
                .iter()
                .find(|e| g.label_of(e.from) == a && g.label_of(e.to) == b)
                .unwrap_or_else(|| panic!("edge {a}->{b}"));
            e.min_delay().unwrap()
        };
        let up1 = cum("web", "app");
        let up2 = cum("app", "db");
        let back = cum("web", "cli");
        assert!(up1 < up2, "{up1} < {up2}");
        assert!(up2 < back, "{up2} < {back}");
    }

    #[test]
    fn app_server_marked_bottleneck() {
        let mut sim = chain_sim(5);
        sim.run_until(Nanos::from_secs(30));
        let g = &discover(&sim)[0];
        let app = g
            .vertices()
            .iter()
            .find(|v| v.label == "app")
            .expect("app vertex");
        assert!(app.bottleneck, "app (20ms exp + db round trip) dominates");
    }

    #[test]
    fn unrelated_branch_not_discovered() {
        // Two clients with disjoint backends behind one front end: each
        // graph must contain only its own branch.
        let mut t = TopologyBuilder::new();
        let bid = t.service_class("bid");
        let cmt = t.service_class("comment");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let s1 = t.service("s1", ServiceConfig::new(DelayDist::exponential_millis(15)));
        let s2 = t.service("s2", ServiceConfig::new(DelayDist::exponential_millis(15)));
        let c1 = t.client("c1", bid, web, Workload::poisson(25.0));
        let c2 = t.client("c2", cmt, web, Workload::poisson(25.0));
        t.connect(c1, web, DelayDist::constant_millis(1));
        t.connect(c2, web, DelayDist::constant_millis(1));
        t.connect(web, s1, DelayDist::constant_millis(1));
        t.connect(web, s2, DelayDist::constant_millis(1));
        t.route(web, bid, Route::fixed(s1));
        t.route(web, cmt, Route::fixed(s2));
        t.route(s1, bid, Route::terminal());
        t.route(s2, cmt, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 6);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        assert_eq!(graphs.len(), 2);
        let g1 = graphs.iter().find(|g| g.client_label == "c1").unwrap();
        let g2 = graphs.iter().find(|g| g.client_label == "c2").unwrap();
        assert!(g1.has_edge_between("web", "s1"));
        assert!(
            !g1.has_edge_between("web", "s2"),
            "c1's graph leaked into s2:\n{g1}"
        );
        assert!(g2.has_edge_between("web", "s2"));
        assert!(
            !g2.has_edge_between("web", "s1"),
            "c2's graph leaked into s1"
        );
        // Cross-client response edges must not appear either.
        assert!(!g1.has_edge_between("web", "c2"));
        assert!(!g2.has_edge_between("web", "c1"));
    }

    #[test]
    fn round_robin_discovers_both_paths() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("bid");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let a = t.service("a", ServiceConfig::new(DelayDist::exponential_millis(12)));
        let b = t.service("b", ServiceConfig::new(DelayDist::exponential_millis(12)));
        let cli = t.client("cli", class, web, Workload::poisson(50.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, a, DelayDist::constant_millis(1));
        t.connect(web, b, DelayDist::constant_millis(1));
        t.route(web, class, Route::round_robin(vec![a, b]));
        t.route(a, class, Route::terminal());
        t.route(b, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 7);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        let g = &graphs[0];
        assert!(g.has_edge_between("web", "a"));
        assert!(g.has_edge_between("web", "b"));
        assert!(g.has_edge_between("a", "web"));
        assert!(g.has_edge_between("b", "web"));
    }

    #[test]
    fn all_stateless_engines_find_the_same_path() {
        use e2eprof_xcorr::engine::all_engines;
        let mut sim = chain_sim(8);
        sim.run_until(Nanos::from_secs(30));
        let cfg = test_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let labels = NodeLabels::from_topology(sim.topology());
        let roots = roots_from_topology(sim.topology());
        let mut edge_sets = Vec::new();
        let mut engines = all_engines();
        engines.push(Box::new(e2eprof_xcorr::AutoCorrelator::with_default_model()));
        for engine in engines {
            let pm = Pathmap::with_correlator(cfg.clone(), engine);
            let graphs = pm.discover(&signals, &roots, &labels);
            let mut edges: Vec<(NodeId, NodeId)> =
                graphs[0].edges().iter().map(|e| (e.from, e.to)).collect();
            edges.sort_unstable();
            edge_sets.push(edges);
        }
        for pair in edge_sets.windows(2) {
            assert_eq!(pair[0], pair[1], "engines disagree on discovered edges");
        }
    }

    fn graph_fingerprint(g: &ServiceGraph) -> Vec<((NodeId, NodeId), Vec<u64>, u64)> {
        let mut edges: Vec<_> = g
            .edges()
            .iter()
            .map(|e| {
                (
                    (e.from, e.to),
                    e.spikes.iter().map(|s| s.delay.as_nanos()).collect(),
                    e.hop_delay.as_nanos(),
                )
            })
            .collect();
        edges.sort();
        edges
    }

    #[test]
    fn screened_discovery_matches_unscreened() {
        for seed in [3, 8, 21] {
            let mut sim = chain_sim(seed);
            sim.run_until(Nanos::from_secs(30));
            let cfg = test_cfg();
            let screened_cfg = PathmapConfig::builder()
                .window(Nanos::from_secs(20))
                .refresh(Nanos::from_secs(5))
                .max_delay(Nanos::from_secs(2))
                .screening(crate::config::ScreeningConfig {
                    decimation: 8,
                    hysteresis: 0.5,
                })
                .build();
            let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
            let labels = NodeLabels::from_topology(sim.topology());
            let roots = roots_from_topology(sim.topology());
            let plain = Pathmap::new(cfg).discover(&signals, &roots, &labels);
            for pm in [
                Pathmap::new(screened_cfg.clone()),
                Pathmap::new(screened_cfg.clone()),
            ] {
                let screened = pm.discover(&signals, &roots, &labels);
                assert_eq!(plain.len(), screened.len(), "seed {seed}");
                for (a, b) in plain.iter().zip(&screened) {
                    assert_eq!(
                        graph_fingerprint(a),
                        graph_fingerprint(b),
                        "seed {seed}: screening changed the discovered graph"
                    );
                }
            }
            // Parallel screened discovery agrees too.
            let par = Pathmap::new(screened_cfg).discover_parallel(&signals, &roots, &labels);
            for (a, b) in plain.iter().zip(&par) {
                assert_eq!(graph_fingerprint(a), graph_fingerprint(b), "seed {seed}");
            }
        }
    }

    #[test]
    fn screening_prunes_dead_edges_in_wide_topology() {
        let mut sim = wide_fanout_sim(12, 17);
        sim.run_until(Nanos::from_secs(30));

        let cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_millis(500))
            .build();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let labels = NodeLabels::from_topology(sim.topology());
        let roots = roots_from_topology(sim.topology());
        let fronts: HashMap<NodeId, NodeId> = roots.iter().copied().collect();
        let screen = Screen::new(8, cfg.min_spike_value(), 0.5);
        let coarse = signals.decimate(screen.factor());
        let engine = RleCorrelator;
        let mut provider = ScreenedStatelessProvider::new(&engine, screen, &coarse, &fronts);
        let pm = Pathmap::new(cfg.clone());
        let screened = pm.discover_with(&signals, &roots, &labels, &mut provider);

        let stats = provider.stats();
        assert!(
            stats.pruned > 0,
            "expected pruning on dead edges, stats: {stats:?}"
        );
        assert!(stats.candidates >= stats.pruned);
        // The dead backends alone give a double-digit pruned pool for the
        // bursty client; demand a substantial fraction rather than a fluke.
        assert!(
            stats.pruned_fraction() > 0.3,
            "pruned fraction too low: {stats:?}"
        );

        // And the result still matches the unscreened graphs.
        let plain = pm.discover(&signals, &roots, &labels);
        assert_eq!(plain.len(), screened.len());
        for (a, b) in plain.iter().zip(&screened) {
            assert_eq!(graph_fingerprint(a), graph_fingerprint(b));
        }
    }

    #[test]
    fn empty_capture_yields_anchored_graph_only() {
        let sim = chain_sim(9); // never run
        let graphs = discover(&sim);
        // The source signal is missing entirely; no graph is produced.
        assert!(graphs.is_empty() || graphs[0].edges().len() <= 1);
    }
}
