//! The *nesting* baseline of Aguilera et al. (SOSP 2003).
//!
//! The paper contrasts pathmap with both of Aguilera's algorithms: the
//! FFT *convolution* algorithm (see [`convolution`](crate::convolution))
//! and the *nesting* algorithm, which "assumes 'RPC-style' (call-return)
//! communication". Nesting pairs each request message with its response
//! to form call intervals, then infers causality from interval
//! containment: a call `b → c` whose interval nests inside a call
//! `a → b`'s interval was (probably) issued on its behalf.
//!
//! This implementation uses FIFO call-return matching (exact for
//! FIFO services; Aguilera et al. use probabilistic matching for the
//! general case) and is deliberately *not* given request IDs — it is a
//! black-box baseline, like pathmap.
//!
//! Where it breaks, by design: **unidirectional paths**. Streaming-style
//! pipelines produce no responses, so no call intervals exist and nesting
//! finds nothing — while pathmap's correlation spikes don't care
//! (paper Section 3.1's path-shape assumption, demonstrated in the
//! integration tests).

use crate::graph::{GraphEdge, NodeLabels, ServiceGraph};
use e2eprof_netsim::capture::TraceKey;
use e2eprof_netsim::{CaptureStore, NodeId};
use e2eprof_timeseries::Nanos;
use std::collections::HashSet;

/// One inferred RPC: a request matched with its response, in the clock of
/// the node that observed both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RpcCall {
    /// Request observation time.
    pub start: Nanos,
    /// Response observation time.
    pub end: Nanos,
}

/// Pairs request timestamps with response timestamps FIFO: the `i`-th
/// request matches the earliest response after it that follows the
/// previous match. Unmatched trailing requests (in flight at the trace
/// horizon) are dropped.
pub fn pair_calls(requests: &[Nanos], responses: &[Nanos]) -> Vec<RpcCall> {
    let mut calls = Vec::new();
    let mut j = 0;
    for &req in requests {
        while j < responses.len() && responses[j] <= req {
            j += 1;
        }
        let Some(&resp) = responses.get(j) else {
            break;
        };
        calls.push(RpcCall {
            start: req,
            end: resp,
        });
        j += 1;
    }
    calls
}

/// The nesting path-discovery baseline.
#[derive(Debug, Clone)]
pub struct Nesting {
    /// Minimum nested calls for an edge to count as causal.
    min_support: usize,
    /// Minimum fraction of child calls that must nest in some parent.
    min_fraction: f64,
}

impl Default for Nesting {
    fn default() -> Self {
        Nesting {
            min_support: 20,
            min_fraction: 0.5,
        }
    }
}

impl Nesting {
    /// Creates a baseline requiring at least `min_support` nested calls
    /// and a `min_fraction` nesting rate per accepted edge.
    pub fn new(min_support: usize, min_fraction: f64) -> Self {
        Nesting {
            min_support,
            min_fraction,
        }
    }

    /// Discovers one forward call graph per `(client, front)` root.
    ///
    /// Unlike pathmap's output, nesting graphs contain only the forward
    /// (request) direction — the return path is implicit in the call
    /// model.
    pub fn discover(
        &self,
        capture: &CaptureStore,
        roots: &[(NodeId, NodeId)],
        labels: &NodeLabels,
    ) -> Vec<ServiceGraph> {
        let mut graphs = Vec::new();
        let clients: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        for &(client, front) in roots {
            // Root intervals, both directions observed at the front end.
            let requests = capture.timestamps(TraceKey::at_receiver(client, front));
            let responses = capture.timestamps(TraceKey::at_sender(front, client));
            let parents = pair_calls(requests, responses);
            let mut graph = ServiceGraph::new(client, labels.label(client), front);
            graph.add_vertex(front, labels.label(front));
            graph.add_edge(GraphEdge::anchor(client, front));
            if !parents.is_empty() {
                let mut visited = HashSet::new();
                self.explore(
                    &mut graph,
                    capture,
                    front,
                    &parents,
                    Nanos::ZERO,
                    &clients,
                    labels,
                    &mut visited,
                );
            }
            graph.recompute_hop_delays();
            graph.annotate_bottlenecks(0.5);
            graphs.push(graph);
        }
        graphs
    }

    /// Recursively explores calls issued by `node` while it serves
    /// `parents`.
    #[allow(clippy::too_many_arguments)]
    fn explore(
        &self,
        graph: &mut ServiceGraph,
        capture: &CaptureStore,
        node: NodeId,
        parents: &[RpcCall],
        base_cum: Nanos,
        clients: &HashSet<NodeId>,
        labels: &NodeLabels,
        visited: &mut HashSet<NodeId>,
    ) {
        visited.insert(node);
        for (src, next) in capture.edges_from(node) {
            debug_assert_eq!(src, node);
            if clients.contains(&next) || visited.contains(&next) {
                continue;
            }
            // Child calls as observed at `node`: requests it sends, the
            // responses it receives — one clock, directly comparable with
            // the parent intervals.
            let child_requests = capture.timestamps(TraceKey::at_sender(node, next));
            let child_responses = capture.timestamps(TraceKey::at_receiver(next, node));
            let children = pair_calls(child_requests, child_responses);
            if children.len() < self.min_support {
                continue;
            }
            let (nested, mut offsets) = nest(parents, &children);
            if nested < self.min_support
                || (nested as f64) < self.min_fraction * children.len() as f64
            {
                continue;
            }
            offsets.sort_unstable();
            let median = offsets[offsets.len() / 2];
            let cum = base_cum + median;
            graph.add_vertex(next, labels.label(next));
            graph.add_edge(GraphEdge {
                from: node,
                to: next,
                spikes: vec![crate::graph::DelaySpike {
                    delay: cum,
                    strength: nested as f64 / children.len() as f64,
                }],
                hop_delay: median,
            });
            // Recurse with the child's own intervals (its clock).
            let grand_requests = capture.timestamps(TraceKey::at_receiver(node, next));
            let grand_responses = capture.timestamps(TraceKey::at_sender(next, node));
            let next_parents = pair_calls(grand_requests, grand_responses);
            if !next_parents.is_empty() {
                self.explore(
                    graph,
                    capture,
                    next,
                    &next_parents,
                    cum,
                    clients,
                    labels,
                    visited,
                );
            }
        }
    }
}

/// Counts child calls nested inside some parent interval, collecting the
/// `child.start − parent.start` offsets of the matches.
///
/// Parents are scanned FIFO: for each child, the latest parent starting
/// at or before the child (bounded back-walk over overlapping parents).
fn nest(parents: &[RpcCall], children: &[RpcCall]) -> (usize, Vec<Nanos>) {
    let mut nested = 0;
    let mut offsets = Vec::new();
    for child in children {
        // Index of the first parent starting after the child.
        let hi = parents.partition_point(|p| p.start <= child.start);
        // Walk back over (bounded) concurrent parents for containment.
        for p in parents[hi.saturating_sub(64)..hi].iter().rev() {
            if p.end >= child.end {
                nested += 1;
                offsets.push(child.start - p.start);
                break;
            }
        }
    }
    (nested, offsets)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> Nanos {
        Nanos::from_millis(v)
    }

    #[test]
    fn pairing_is_fifo() {
        let req = [ms(1), ms(5), ms(9)];
        let resp = [ms(3), ms(8), ms(12)];
        let calls = pair_calls(&req, &resp);
        assert_eq!(
            calls,
            vec![
                RpcCall {
                    start: ms(1),
                    end: ms(3)
                },
                RpcCall {
                    start: ms(5),
                    end: ms(8)
                },
                RpcCall {
                    start: ms(9),
                    end: ms(12)
                },
            ]
        );
    }

    #[test]
    fn pairing_skips_orphan_responses_and_trailing_requests() {
        // A response before any request is ignored; the last request has
        // no response (in flight) and is dropped.
        let req = [ms(5), ms(20)];
        let resp = [ms(2), ms(9)];
        let calls = pair_calls(&req, &resp);
        assert_eq!(
            calls,
            vec![RpcCall {
                start: ms(5),
                end: ms(9)
            }]
        );
    }

    #[test]
    fn pairing_empty_inputs() {
        assert!(pair_calls(&[], &[ms(1)]).is_empty());
        assert!(pair_calls(&[ms(1)], &[]).is_empty());
    }

    #[test]
    fn nesting_counts_contained_children() {
        let parents = vec![
            RpcCall {
                start: ms(0),
                end: ms(10),
            },
            RpcCall {
                start: ms(20),
                end: ms(30),
            },
        ];
        let children = vec![
            RpcCall {
                start: ms(2),
                end: ms(8),
            }, // inside parent 0
            RpcCall {
                start: ms(22),
                end: ms(28),
            }, // inside parent 1
            RpcCall {
                start: ms(12),
                end: ms(18),
            }, // inside none
            RpcCall {
                start: ms(25),
                end: ms(40),
            }, // overlaps but not nested
        ];
        let (nested, offsets) = nest(&parents, &children);
        assert_eq!(nested, 2);
        assert_eq!(offsets, vec![ms(2), ms(2)]);
    }

    #[test]
    fn nesting_handles_concurrent_parents() {
        // Two overlapping parents; the child nests in the earlier one
        // only (the later parent ends too soon).
        let parents = vec![
            RpcCall {
                start: ms(0),
                end: ms(50),
            },
            RpcCall {
                start: ms(4),
                end: ms(6),
            },
        ];
        let children = vec![RpcCall {
            start: ms(5),
            end: ms(20),
        }];
        let (nested, offsets) = nest(&parents, &children);
        assert_eq!(nested, 1);
        assert_eq!(offsets, vec![ms(5)]);
    }
}
