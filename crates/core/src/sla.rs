//! SLA monitoring on top of live service graphs.
//!
//! The paper's motivating scenario: requests carry service-level
//! agreements, and when one is violated administrators dig through logs
//! to isolate the faulty component. E2EProf automates both halves — this
//! module watches each refresh's graphs against per-client latency
//! targets, flags violations, and names the most likely culprit (the
//! bottleneck vertex of the violating graph).

use crate::graph::ServiceGraph;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// A per-client latency target.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlaTarget {
    /// The client node the agreement covers.
    pub client: NodeId,
    /// Maximum acceptable end-to-end latency.
    pub max_latency: Nanos,
}

/// One detected violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlaViolation {
    /// When the violating refresh happened.
    pub at: Nanos,
    /// The client whose agreement is violated.
    pub client: NodeId,
    /// The client's label.
    pub client_label: String,
    /// E2EProf's end-to-end estimate at that refresh.
    pub estimate: Nanos,
    /// The agreed maximum.
    pub target: Nanos,
    /// The graph's dominant delay contributor, if any — where to look
    /// first.
    pub suspect: Option<String>,
}

/// Watches refreshed service graphs against SLA targets.
///
/// # Example
///
/// ```
/// use e2eprof_core::sla::{SlaMonitor, SlaTarget};
/// use e2eprof_core::graph::{GraphEdge, ServiceGraph};
/// use e2eprof_netsim::NodeId;
/// use e2eprof_timeseries::Nanos;
///
/// let client = NodeId::new(9);
/// let mut monitor = SlaMonitor::new(vec![SlaTarget {
///     client,
///     max_latency: Nanos::from_millis(100),
/// }]);
///
/// let mut g = ServiceGraph::new(client, "c1".into(), NodeId::new(0));
/// g.add_vertex(NodeId::new(0), "web".into());
/// g.add_edge(GraphEdge {
///     from: NodeId::new(0),
///     to: client,
///     spikes: vec![e2eprof_core::graph::DelaySpike {
///         delay: Nanos::from_millis(140),
///         strength: 0.9,
///     }],
///     hop_delay: Nanos::from_millis(140),
/// });
/// let violations = monitor.check(Nanos::from_secs(60), &[g]);
/// assert_eq!(violations.len(), 1);
/// assert_eq!(violations[0].estimate, Nanos::from_millis(140));
/// ```
#[derive(Debug, Clone, Default)]
pub struct SlaMonitor {
    targets: HashMap<NodeId, Nanos>,
    history: Vec<SlaViolation>,
}

impl SlaMonitor {
    /// Creates a monitor for the given targets.
    pub fn new(targets: Vec<SlaTarget>) -> Self {
        SlaMonitor {
            targets: targets
                .into_iter()
                .map(|t| (t.client, t.max_latency))
                .collect(),
            history: Vec::new(),
        }
    }

    /// Adds or replaces one target.
    pub fn set_target(&mut self, target: SlaTarget) {
        self.targets.insert(target.client, target.max_latency);
    }

    /// Evaluates one refresh's graphs; returns (and records) the
    /// violations found.
    pub fn check(&mut self, at: Nanos, graphs: &[ServiceGraph]) -> Vec<SlaViolation> {
        let mut found = Vec::new();
        for g in graphs {
            let Some(&target) = self.targets.get(&g.client) else {
                continue;
            };
            let Some(estimate) = g.end_to_end_delay() else {
                continue;
            };
            if estimate <= target {
                continue;
            }
            let suspect = g
                .vertices()
                .iter()
                .filter(|v| v.bottleneck)
                .max_by_key(|v| v.contribution.unwrap_or(Nanos::ZERO))
                .map(|v| v.label.clone());
            found.push(SlaViolation {
                at,
                client: g.client,
                client_label: g.client_label.clone(),
                estimate,
                target,
                suspect,
            });
        }
        self.history.extend(found.iter().cloned());
        found
    }

    /// All violations recorded so far, in check order.
    pub fn history(&self) -> &[SlaViolation] {
        &self.history
    }

    /// Violations of one client.
    pub fn violations_of(&self, client: NodeId) -> Vec<&SlaViolation> {
        self.history.iter().filter(|v| v.client == client).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphEdge;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn graph(client: NodeId, e2e_ms: u64, bottleneck: &str) -> ServiceGraph {
        let mut g = ServiceGraph::new(client, format!("client{client}"), n(0));
        g.add_vertex(n(0), "web".into());
        g.add_vertex(n(1), bottleneck.into());
        g.add_edge(GraphEdge {
            from: n(0),
            to: n(1),
            spikes: vec![crate::graph::DelaySpike {
                delay: Nanos::from_millis(e2e_ms / 2),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(e2e_ms / 2),
        });
        g.add_edge(GraphEdge {
            from: n(1),
            to: client,
            spikes: vec![crate::graph::DelaySpike {
                delay: Nanos::from_millis(e2e_ms),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(e2e_ms / 2),
        });
        g.annotate_bottlenecks(0.5);
        g
    }

    #[test]
    fn violation_detected_and_attributed() {
        let client = n(9);
        let mut m = SlaMonitor::new(vec![SlaTarget {
            client,
            max_latency: Nanos::from_millis(80),
        }]);
        let v = m.check(Nanos::from_secs(1), &[graph(client, 120, "slow-db")]);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].estimate, Nanos::from_millis(120));
        assert_eq!(v[0].target, Nanos::from_millis(80));
        assert_eq!(v[0].suspect.as_deref(), Some("slow-db"));
        assert_eq!(m.history().len(), 1);
    }

    #[test]
    fn within_target_is_quiet() {
        let client = n(9);
        let mut m = SlaMonitor::new(vec![SlaTarget {
            client,
            max_latency: Nanos::from_millis(200),
        }]);
        assert!(m.check(Nanos::ZERO, &[graph(client, 120, "db")]).is_empty());
        assert!(m.history().is_empty());
    }

    #[test]
    fn unmonitored_clients_are_ignored() {
        let mut m = SlaMonitor::new(vec![]);
        assert!(m.check(Nanos::ZERO, &[graph(n(9), 500, "db")]).is_empty());
        m.set_target(SlaTarget {
            client: n(9),
            max_latency: Nanos::from_millis(100),
        });
        assert_eq!(m.check(Nanos::ZERO, &[graph(n(9), 500, "db")]).len(), 1);
    }

    #[test]
    fn history_accumulates_per_client() {
        let mut m = SlaMonitor::new(vec![
            SlaTarget {
                client: n(8),
                max_latency: Nanos::from_millis(50),
            },
            SlaTarget {
                client: n(9),
                max_latency: Nanos::from_millis(50),
            },
        ]);
        m.check(Nanos::from_secs(1), &[graph(n(8), 100, "a")]);
        m.check(
            Nanos::from_secs(2),
            &[graph(n(8), 100, "a"), graph(n(9), 100, "b")],
        );
        assert_eq!(m.history().len(), 3);
        assert_eq!(m.violations_of(n(8)).len(), 2);
        assert_eq!(m.violations_of(n(9)).len(), 1);
    }
}
