//! Shared test fixtures: deterministic bursty workloads and the
//! wide-fanout topology used to exercise coarse-to-fine screening.

use e2eprof_netsim::prelude::*;
use e2eprof_netsim::Route;
use e2eprof_timeseries::Nanos;

/// Deterministic arrival trace: one request every `step_ms` during the
/// window `[on_start, on_end)` of each `period`, for `total` seconds.
pub(crate) fn burst_trace(
    on_start: f64,
    on_end: f64,
    period: f64,
    step_ms: u64,
    total: f64,
) -> Workload {
    Workload::trace(burst_arrivals(
        on_start, on_end, period, step_ms, 0.0, total,
    ))
}

/// Arrival timestamps of a periodic burst pattern over `[from, total)`
/// seconds: one request every `step_ms` during `[on_start, on_end)` of
/// each `period`, with cycles anchored at `from` (pass a multiple of
/// `period` to keep phases comparable across segments).
pub(crate) fn burst_arrivals(
    on_start: f64,
    on_end: f64,
    period: f64,
    step_ms: u64,
    from: f64,
    total: f64,
) -> Vec<Nanos> {
    let mut arrivals = Vec::new();
    let mut cycle = from;
    while cycle < total {
        let mut t = cycle + on_start;
        while t < cycle + on_end && t < total {
            arrivals.push(Nanos::from_nanos((t * 1e9) as u64));
            t += step_ms as f64 / 1e3;
        }
        cycle += period;
    }
    arrivals
}

/// One front end fanning out to a hot backend plus many dead ones. The
/// traced client bursts in `[0, 1)` of each 4 s period while the noise
/// class (feeding the dead backends) bursts in `[2.2, 3.2)`: with
/// `T_u = 500 ms` the supports never overlap at any admissible lag, so
/// the coarse cover bound on every dead pair is (near) zero.
pub(crate) fn wide_fanout_sim(backends: usize, seed: u64) -> Simulation {
    let mut t = TopologyBuilder::new();
    let bid = t.service_class("bid");
    let other = t.service_class("other");
    let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
    let hot = t.service("hot", ServiceConfig::new(DelayDist::exponential_millis(10)));
    t.connect(web, hot, DelayDist::constant_millis(1));
    t.route(web, bid, Route::fixed(hot));
    t.route(hot, bid, Route::terminal());
    let mut dead = Vec::new();
    for i in 0..backends {
        let s = t.service(
            &format!("s{i}"),
            ServiceConfig::new(DelayDist::exponential_millis(10)),
        );
        t.connect(web, s, DelayDist::constant_millis(1));
        t.route(s, other, Route::terminal());
        dead.push(s);
    }
    t.route(web, other, Route::round_robin(dead));
    let cli = t.client("cli", bid, web, burst_trace(0.0, 1.0, 4.0, 5, 40.0));
    t.connect(cli, web, DelayDist::constant_millis(1));
    let noise = t.client("noise", other, web, burst_trace(2.2, 3.2, 4.0, 5, 40.0));
    t.connect(noise, web, DelayDist::constant_millis(1));
    Simulation::new(t.build().unwrap(), seed)
}

/// The wide-fanout topology with a *phase-shifting* noise tier, for
/// exercising the edge-reduction promote path: for the first 32 s the
/// noise class bursts in `[2.2, 3.2)` — time-disjoint from the traced
/// client's `[0, 1)` bursts, so an analyzer owning only `cli` demotes the
/// dead-backend edges — then shifts into the overlapping `[0.2, 1.2)`
/// window for the rest of the run, which must promote them back to full
/// resolution (overlap is the only event that can revive a demoted edge).
pub(crate) fn shifting_fanout_sim(backends: usize, seed: u64, total: f64) -> Simulation {
    let mut t = TopologyBuilder::new();
    let bid = t.service_class("bid");
    let other = t.service_class("other");
    let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
    let hot = t.service("hot", ServiceConfig::new(DelayDist::exponential_millis(10)));
    t.connect(web, hot, DelayDist::constant_millis(1));
    t.route(web, bid, Route::fixed(hot));
    t.route(hot, bid, Route::terminal());
    let mut dead = Vec::new();
    for i in 0..backends {
        let s = t.service(
            &format!("s{i}"),
            ServiceConfig::new(DelayDist::exponential_millis(10)),
        );
        t.connect(web, s, DelayDist::constant_millis(1));
        t.route(s, other, Route::terminal());
        dead.push(s);
    }
    t.route(web, other, Route::round_robin(dead));
    let cli = t.client("cli", bid, web, burst_trace(0.0, 1.0, 4.0, 5, total));
    t.connect(cli, web, DelayDist::constant_millis(1));
    let mut noise_arrivals = burst_arrivals(2.2, 3.2, 4.0, 5, 0.0, 32.0);
    noise_arrivals.extend(burst_arrivals(0.2, 1.2, 4.0, 5, 32.0, total));
    let noise = t.client("noise", other, web, Workload::trace(noise_arrivals));
    t.connect(noise, web, DelayDist::constant_millis(1));
    Simulation::new(t.build().unwrap(), seed)
}
