//! Shared test fixtures: deterministic bursty workloads and the
//! wide-fanout topology used to exercise coarse-to-fine screening.

use e2eprof_netsim::prelude::*;
use e2eprof_netsim::Route;
use e2eprof_timeseries::Nanos;

/// Deterministic arrival trace: one request every `step_ms` during the
/// window `[on_start, on_end)` of each `period`, for `total` seconds.
pub(crate) fn burst_trace(
    on_start: f64,
    on_end: f64,
    period: f64,
    step_ms: u64,
    total: f64,
) -> Workload {
    let mut arrivals = Vec::new();
    let mut cycle = 0.0;
    while cycle < total {
        let mut t = cycle + on_start;
        while t < cycle + on_end && t < total {
            arrivals.push(Nanos::from_nanos((t * 1e9) as u64));
            t += step_ms as f64 / 1e3;
        }
        cycle += period;
    }
    Workload::trace(arrivals)
}

/// One front end fanning out to a hot backend plus many dead ones. The
/// traced client bursts in `[0, 1)` of each 4 s period while the noise
/// class (feeding the dead backends) bursts in `[2.2, 3.2)`: with
/// `T_u = 500 ms` the supports never overlap at any admissible lag, so
/// the coarse cover bound on every dead pair is (near) zero.
pub(crate) fn wide_fanout_sim(backends: usize, seed: u64) -> Simulation {
    let mut t = TopologyBuilder::new();
    let bid = t.service_class("bid");
    let other = t.service_class("other");
    let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
    let hot = t.service("hot", ServiceConfig::new(DelayDist::exponential_millis(10)));
    t.connect(web, hot, DelayDist::constant_millis(1));
    t.route(web, bid, Route::fixed(hot));
    t.route(hot, bid, Route::terminal());
    let mut dead = Vec::new();
    for i in 0..backends {
        let s = t.service(
            &format!("s{i}"),
            ServiceConfig::new(DelayDist::exponential_millis(10)),
        );
        t.connect(web, s, DelayDist::constant_millis(1));
        t.route(s, other, Route::terminal());
        dead.push(s);
    }
    t.route(web, other, Route::round_robin(dead));
    let cli = t.client("cli", bid, web, burst_trace(0.0, 1.0, 4.0, 5, 40.0));
    t.connect(cli, web, DelayDist::constant_millis(1));
    let noise = t.client("noise", other, web, burst_trace(2.2, 3.2, 4.0, 5, 40.0));
    t.connect(noise, web, DelayDist::constant_millis(1));
    Simulation::new(t.build().unwrap(), seed)
}
