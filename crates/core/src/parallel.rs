//! Deterministic sharded execution for the analyzer's refresh path.
//!
//! The online analyzer's dominant per-refresh cost is advancing one
//! incremental correlator per `(client, candidate-edge)` pair. The pairs
//! are independent — each owns its accumulator and only *reads* the shared
//! sliding windows — so the map can be partitioned into contiguous shards
//! of its stable key order and processed by a small scoped worker pool.
//!
//! Determinism contract: every function here yields results **bitwise
//! identical** for any worker count, including 1. This holds because
//! (a) shards are contiguous slices of the caller-ordered input, so each
//! item's computation touches exactly the same data in the same order
//! regardless of which worker runs it, and (b) outputs are merged back in
//! input order, never in completion order. Nothing in this module
//! introduces cross-item reductions.

/// The number of workers to use when a configuration asks for "all cores".
///
/// Falls back to 1 when the platform cannot report its parallelism.
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Splits `len` items into at most `num_shards` contiguous index ranges
/// whose sizes differ by at most one (earlier shards get the remainder) —
/// the same partition the sharded refresh uses internally, exposed so the
/// distributed analyzer tier can assign each shard a contiguous chunk of
/// the global root order (their concatenation, in shard order, is then
/// the single-analyzer order).
///
/// When `len < num_shards` only `len` non-empty ranges are returned.
pub fn shard_ranges(len: usize, num_shards: usize) -> Vec<std::ops::Range<usize>> {
    let mut start = 0;
    shard_lengths(len, num_shards)
        .into_iter()
        .map(|n| {
            let range = start..start + n;
            start += n;
            range
        })
        .collect()
}

/// Splits `len` items into at most `num_workers` contiguous shard lengths
/// whose sizes differ by at most one (earlier shards get the remainder).
fn shard_lengths(len: usize, num_workers: usize) -> Vec<usize> {
    let shards = num_workers.max(1).min(len.max(1));
    let base = len / shards;
    let extra = len % shards;
    (0..shards)
        .map(|i| base + usize::from(i < extra))
        .filter(|&n| n > 0)
        .collect()
}

/// Applies `f` to every item, mutating in place, using up to
/// `num_workers` scoped threads over contiguous shards.
///
/// With `num_workers <= 1` (or a single item) everything runs on the
/// calling thread — no threads are spawned. Results are bitwise identical
/// for any worker count: items are independent and each is processed by
/// exactly one worker.
pub fn for_each_sharded_mut<T, F>(items: &mut [T], num_workers: usize, f: F)
where
    T: Send,
    F: Fn(&mut T) + Sync,
{
    if num_workers <= 1 || items.len() <= 1 {
        for item in items {
            f(item);
        }
        return;
    }
    let lengths = shard_lengths(items.len(), num_workers);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut handles = Vec::with_capacity(lengths.len());
        for (i, &n) in lengths.iter().enumerate() {
            // The final shard runs on the calling thread.
            if i + 1 == lengths.len() {
                for item in rest.iter_mut() {
                    f(item);
                }
                rest = &mut [];
            } else {
                let (shard, tail) = rest.split_at_mut(n);
                rest = tail;
                let f = &f;
                handles.push(scope.spawn(move || {
                    for item in shard {
                        f(item);
                    }
                }));
            }
        }
        for h in handles {
            h.join().expect("shard worker panicked");
        }
    });
}

/// Maps every item to an output, preserving input order, using up to
/// `num_workers` scoped threads over contiguous shards.
pub fn map_sharded<T, R, F>(items: &[T], num_workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if num_workers <= 1 || items.len() <= 1 {
        return items.iter().map(f).collect();
    }
    let lengths = shard_lengths(items.len(), num_workers);
    std::thread::scope(|scope| {
        let mut rest = items;
        let mut handles = Vec::with_capacity(lengths.len());
        let mut last = Vec::new();
        for (i, &n) in lengths.iter().enumerate() {
            let (shard, tail) = rest.split_at(n);
            rest = tail;
            if i + 1 == lengths.len() {
                last = shard.iter().map(&f).collect();
            } else {
                let f = &f;
                handles.push(scope.spawn(move || shard.iter().map(f).collect::<Vec<R>>()));
            }
        }
        let mut out = Vec::with_capacity(items.len());
        for h in handles {
            out.extend(h.join().expect("shard worker panicked"));
        }
        out.extend(last);
        out
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_lengths_cover_and_balance() {
        assert_eq!(shard_lengths(10, 3), vec![4, 3, 3]);
        assert_eq!(shard_lengths(2, 8), vec![1, 1]);
        assert_eq!(shard_lengths(0, 4), Vec::<usize>::new());
        assert_eq!(shard_lengths(7, 1), vec![7]);
        for (len, w) in [(1, 1), (5, 2), (16, 4), (17, 4), (3, 100)] {
            let lens = shard_lengths(len, w);
            assert_eq!(lens.iter().sum::<usize>(), len, "len={len} w={w}");
            assert!(lens.len() <= w.max(1));
        }
    }

    #[test]
    fn for_each_mutates_every_item_identically_for_any_worker_count() {
        let baseline: Vec<u64> = (0..37).map(|i| i * i + 1).collect();
        for workers in [1, 2, 3, 8, 64] {
            let mut items: Vec<u64> = (0..37).collect();
            for_each_sharded_mut(&mut items, workers, |v| *v = *v * *v + 1);
            assert_eq!(items, baseline, "workers={workers}");
        }
    }

    #[test]
    fn map_preserves_input_order() {
        let items: Vec<usize> = (0..23).collect();
        let expect: Vec<usize> = items.iter().map(|i| i * 3).collect();
        for workers in [1, 2, 5, 23, 99] {
            assert_eq!(map_sharded(&items, workers, |i| i * 3), expect);
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let mut empty: Vec<u8> = vec![];
        for_each_sharded_mut(&mut empty, 4, |_| unreachable!());
        assert!(map_sharded(&empty, 4, |v: &u8| *v).is_empty());
        let mut one = vec![5u8];
        for_each_sharded_mut(&mut one, 4, |v| *v += 1);
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn available_workers_is_positive() {
        assert!(available_workers() >= 1);
    }
}
