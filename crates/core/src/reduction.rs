//! Analyzer→tracer data-reduction control state (the feedback direction).
//!
//! When [`PathmapConfig::reduction`](crate::config::PathmapConfig::reduction)
//! is enabled, each analyzer shard derives per-edge decimation verdicts from
//! its screening state: edges whose every (client, edge) pair screening has
//! proven causally dead are *demoted* and ship only a coarse decimated
//! image; edges that show renewed coarse activity are *promoted* back to
//! full resolution. A shard publishes its complete verdict as a
//! [`HintState`] snapshot — idempotent by construction, so replaying the
//! latest snapshot after a reconnect converges to the same tracer state.
//!
//! Tracer agents keep the latest snapshot per shard and merge them with
//! [`effective_levels`]; the transport layer carries snapshots broker→tracer
//! as `Hint` control frames with the same exactly-once seq/dedup machinery
//! as data frames.

use crate::hashing::FxHashMap;

/// One analyzer shard's complete reduction verdict.
///
/// A snapshot lists **every** edge the shard currently wants demoted, with
/// its decimation level. Snapshots are full-state and idempotent: applying
/// the latest one per shard — in any order, any number of times — yields
/// the same tracer-side levels, which is what makes hint replay after a
/// connection cut safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HintState {
    /// The analyzer shard that produced this snapshot.
    pub shard: u32,
    /// Total number of analyzer shards in the tier.
    pub of: u32,
    /// Every currently demoted edge (as node-index pairs) with its
    /// decimation level — fine ticks per coarse block, always ≥ 2. Edges
    /// absent from every shard's snapshot stream at full resolution.
    pub edges: Vec<((u32, u32), u64)>,
}

/// Merges the latest [`HintState`] per shard into effective per-edge
/// decimation levels.
///
/// Analyzer shards partition *roots*, not edges: every shard ingests every
/// edge stream, so an edge may only be decimated once **every** shard has
/// declared it dead for its own roots. The merge is therefore an
/// intersection — an edge's effective level is the minimum across all
/// shards' snapshots, and an edge missing from *any* shard's snapshot
/// (including shards that have not reported yet) streams at full
/// resolution. Erring toward full resolution can cost bytes but never
/// graph fidelity.
pub fn effective_levels(states: &FxHashMap<u32, HintState>) -> FxHashMap<(u32, u32), u64> {
    let mut out: FxHashMap<(u32, u32), u64> = FxHashMap::default();
    let Some(of) = states.values().map(|s| s.of as usize).max() else {
        return out;
    };
    if states.len() < of {
        return out; // some shard has not reported yet: everything fine
    }
    let mut seen: FxHashMap<(u32, u32), (u64, usize)> = FxHashMap::default();
    for state in states.values() {
        for &(edge, level) in &state.edges {
            let slot = seen.entry(edge).or_insert((level, 0));
            slot.0 = slot.0.min(level);
            slot.1 += 1;
        }
    }
    let quorum = states.len();
    for (edge, (level, count)) in seen {
        if count == quorum {
            out.insert(edge, level);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_intersect_across_shards_with_min_level() {
        let mut states = FxHashMap::default();
        states.insert(
            0,
            HintState {
                shard: 0,
                of: 2,
                edges: vec![((1, 2), 16), ((3, 4), 32)],
            },
        );
        states.insert(
            1,
            HintState {
                shard: 1,
                of: 2,
                edges: vec![((5, 6), 8), ((3, 4), 16)],
            },
        );
        let levels = effective_levels(&states);
        assert_eq!(
            levels.get(&(1, 2)),
            None,
            "edge shard 1 still needs stays fine"
        );
        assert_eq!(levels.get(&(5, 6)), None);
        assert_eq!(levels.get(&(3, 4)), Some(&16), "unanimous edge takes min");
        assert_eq!(levels.get(&(9, 9)), None, "unmentioned edges stay fine");
    }

    #[test]
    fn no_decimation_until_every_shard_reports() {
        let mut states = FxHashMap::default();
        states.insert(
            0,
            HintState {
                shard: 0,
                of: 2,
                edges: vec![((1, 2), 16)],
            },
        );
        assert!(
            effective_levels(&states).is_empty(),
            "one of two shards reported: everything must stay fine"
        );
    }

    #[test]
    fn replacing_a_shard_snapshot_is_idempotent() {
        let mut states = FxHashMap::default();
        let snap = HintState {
            shard: 0,
            of: 1,
            edges: vec![((1, 2), 16)],
        };
        states.insert(0, snap.clone());
        let once = effective_levels(&states);
        states.insert(0, snap);
        assert_eq!(effective_levels(&states), once);
    }
}
