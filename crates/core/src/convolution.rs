//! The convolution baseline of Aguilera et al. (SOSP 2003).
//!
//! The paper positions pathmap against the *convolution algorithm*:
//! FFT-based cross-correlation over the full lag range, intended for
//! offline analysis. The baseline here reuses the same `ServiceRoot` /
//! `ComputePath` structure but (a) computes correlations via the FFT
//! (Eq. 2), and (b) evaluates the *entire* lag range — the window length —
//! rather than bounding it by `T_u`. That is exactly the cost profile
//! Fig. 9 compares against.

use crate::config::PathmapConfig;
use crate::pathmap::Pathmap;
use e2eprof_xcorr::engine::FftCorrelator;

/// Builds the convolution baseline for the given analysis parameters: same
/// windows and spike detection, but FFT correlation with the lag bound
/// widened to the full window.
pub fn baseline(config: &PathmapConfig) -> Pathmap {
    let full_lag_cfg = PathmapConfig::builder()
        .quanta(config.quanta())
        .omega_ticks(config.omega_ticks())
        .window(config.window())
        .refresh(config.refresh())
        // Full lag range: the whole window.
        .max_delay(config.window())
        .spike_sigma(config.spike_sigma())
        .spike_resolution_ticks(config.spike_detector().resolution())
        .min_spike_value(config.min_spike_value())
        .build();
    Pathmap::with_correlator(full_lag_cfg, Box::new(FftCorrelator))
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_timeseries::Nanos;

    #[test]
    fn baseline_widens_lag_to_window() {
        let cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(30))
            .refresh(Nanos::from_secs(10))
            .max_delay(Nanos::from_secs(2))
            .build();
        let base = baseline(&cfg);
        assert_eq!(base.config().max_lag(), cfg.window_ticks());
        assert_eq!(base.config().window_ticks(), cfg.window_ticks());
    }
}
