//! A fast, deterministic hasher for the analyzer's hot per-edge maps.
//!
//! The online analyzer looks up one sliding window and a handful of
//! correlator entries per ingested batch entry; with the default SipHash
//! those lookups dominate the zero-copy ingest path. Keys here are node
//! and pair indices — short, non-adversarial, and never fed from the
//! network — so the Fx polynomial hash (rotate, xor, multiply per word)
//! is both safe and several times cheaper. Determinism is also a feature:
//! analyzer behavior must not vary run to run under a randomized seed.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplier from the Fx family: a 64-bit odd constant derived from
/// π that mixes low-entropy integer keys well enough for open addressing.
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Word-at-a-time polynomial hasher (the rustc "FxHash" construction).
#[derive(Debug, Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, deterministic.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed through [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_builders() {
        let key = (7u32, 13u32);
        assert_eq!(hash_of(&key), hash_of(&key));
        assert_ne!(hash_of(&(7u32, 13u32)), hash_of(&(13u32, 7u32)));
    }

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<(u32, u32), u64> = FxHashMap::default();
        for i in 0..1000u32 {
            m.insert((i, i.wrapping_mul(31)), i as u64);
        }
        for i in 0..1000u32 {
            assert_eq!(m.get(&(i, i.wrapping_mul(31))), Some(&(i as u64)));
        }
    }
}
