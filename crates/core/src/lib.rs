//! E2EProf core: black-box causal service-path inference (pathmap).
//!
//! This crate implements the primary contribution of *E2EProf: Automated
//! End-to-End Performance Management for Enterprise Systems* (Agarwala,
//! Alegre, Schwan, Mehalingham — DSN 2007): the **pathmap** algorithm,
//! which discovers the causal paths client requests take through a
//! distributed system — and the delays incurred along them — purely from
//! passively captured, timestamped message traces. No source access, no
//! instrumentation, no request IDs: just cross-correlation of per-edge
//! density time series.
//!
//! # Architecture
//!
//! * [`config::PathmapConfig`] — the analysis parameters: time quantum `τ`,
//!   sampling window `ω`, sliding window `W`, refresh interval `ΔW`, and
//!   transaction-delay bound `T_u`.
//! * [`signals::EdgeSignals`] — per-edge density series for one analysis
//!   window, built from a [`CaptureStore`](e2eprof_netsim::CaptureStore)
//!   (offline) or from streamed tracer chunks (online).
//! * [`pathmap::Pathmap`] — Algorithm 1: `ServiceRoot` iterates front-end
//!   nodes and their clients; `ComputePath` recursively cross-correlates
//!   the client's arrival signal with every adjacent edge signal, adding an
//!   edge wherever the correlation has a distinguishable spike.
//! * [`graph::ServiceGraph`] — the discovered per-client graph, annotated
//!   with cumulative and per-hop delays and bottleneck marks.
//! * [`tracer::TracerAgent`] / [`analyzer::OnlineAnalyzer`] — the online
//!   pipeline: agents on service nodes convert captures to RLE density
//!   chunks and stream them (wire-encoded) over channels; the analyzer
//!   maintains sliding windows, incrementally updates correlations, and
//!   republishes service graphs every `ΔW`.
//! * [`change::ChangeTracker`] — per-edge delay histories across refreshes
//!   (the Fig. 7 change-detection capability).
//! * [`skew::estimate_skew`] — clock-skew estimation between the two ends
//!   of an edge (Section 3.8).
//! * [`convolution`] — the Aguilera et al. convolution baseline: offline,
//!   FFT-based, full lag range.
//! * [`validate`] — compares inferred delays against simulator ground
//!   truth (the paper's Section 4.1.1 accuracy methodology).
//!
//! # Example
//!
//! ```
//! use e2eprof_core::prelude::*;
//! use e2eprof_netsim::prelude::*;
//!
//! // A three-tier system: client -> web -> db.
//! let mut t = TopologyBuilder::new();
//! let class = t.service_class("browse");
//! let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
//! let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(8)));
//! let client = t.client("client", class, web, Workload::poisson(60.0));
//! t.connect(client, web, DelayDist::constant_millis(1));
//! t.connect(web, db, DelayDist::constant_millis(1));
//! t.route(web, class, Route::fixed(db));
//! t.route(db, class, Route::terminal());
//! let mut sim = Simulation::new(t.build()?, 7);
//! sim.run_until(Nanos::from_minutes(2));
//!
//! // Infer the service path from the packet captures alone.
//! let cfg = PathmapConfig::builder().window(Nanos::from_minutes(1)).build();
//! let pm = Pathmap::new(cfg.clone());
//! let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
//! let labels = NodeLabels::from_topology(sim.topology());
//! let graphs = pm.discover(&signals, &roots_from_topology(sim.topology()), &labels);
//!
//! let g = &graphs[0];
//! assert!(g.has_edge_between("web", "db"), "web->db hop discovered");
//! assert!(g.has_edge_between("db", "web"), "return path discovered");
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analyzer;
pub mod change;
pub mod config;
pub mod convolution;
pub mod diff;
pub mod graph;
pub mod hashing;
pub mod ingest;
pub mod nesting;
pub mod parallel;
pub mod pathmap;
pub mod reduction;
pub mod signals;
pub mod skew;
pub mod sla;
#[cfg(test)]
pub(crate) mod testutil;
pub mod tracer;
pub mod validate;

/// Convenient glob-import of the analysis layer's main types.
pub mod prelude {
    pub use crate::analyzer::OnlineAnalyzer;
    pub use crate::analyzer::ScratchCounters;
    pub use crate::change::ChangeTracker;
    pub use crate::config::{
        CorrelationBackend, PathmapConfig, ReductionConfig, ScreeningConfig, Transport, WireVersion,
    };
    pub use crate::graph::{NodeLabels, ServiceGraph};
    pub use crate::pathmap::{roots_from_topology, IncrementalStats, Pathmap, ScreeningStats};
    pub use crate::reduction::HintState;
    pub use crate::signals::EdgeSignals;
    pub use crate::tracer::{ChannelSink, FrameSink, PollOutcome, TracerAgent};
}

pub use analyzer::{OnlineAnalyzer, ScratchCounters};
pub use config::{
    CorrelationBackend, PathmapConfig, ReductionConfig, ScreeningConfig, Transport, WireVersion,
};
pub use graph::{NodeLabels, ServiceGraph};
pub use pathmap::{roots_from_topology, IncrementalStats, Pathmap, ScreeningStats};
pub use reduction::HintState;
pub use signals::EdgeSignals;
pub use tracer::{ChannelSink, FrameSink, PollOutcome, TracerAgent};
