//! The discovered service graph: pathmap's output.

use e2eprof_netsim::{NodeId, Topology};
use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Human-readable labels for node ids.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeLabels {
    labels: Vec<String>,
}

impl NodeLabels {
    /// Creates labels from a plain list indexed by [`NodeId`].
    pub fn new(labels: Vec<String>) -> Self {
        NodeLabels { labels }
    }

    /// Extracts labels from a simulator topology.
    pub fn from_topology(topo: &Topology) -> Self {
        NodeLabels {
            labels: topo.nodes().iter().map(|n| n.name.clone()).collect(),
        }
    }

    /// The label of `id` (falls back to the numeric id).
    pub fn label(&self, id: NodeId) -> String {
        self.labels
            .get(id.index())
            .cloned()
            .unwrap_or_else(|| id.to_string())
    }

    /// Looks a node up by label.
    pub fn id_of(&self, label: &str) -> Option<NodeId> {
        self.labels
            .iter()
            .position(|l| l == label)
            .map(|i| NodeId::new(i as u32))
    }
}

/// One discovered vertex.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphVertex {
    /// The node.
    pub node: NodeId,
    /// Human-readable label.
    pub label: String,
    /// Whether this vertex was marked a major source of delay.
    pub bottleneck: bool,
    /// Derived per-node delay contribution (see
    /// [`ServiceGraph::annotate_bottlenecks`]).
    pub contribution: Option<Nanos>,
}

/// One correlation spike supporting an edge: a cumulative delay from
/// front-end arrival, with the normalized correlation that evidences it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelaySpike {
    /// Cumulative delay from front-end arrival to traversal of the edge.
    pub delay: Nanos,
    /// Normalized correlation at the spike (evidence weight).
    pub strength: f64,
}

/// One discovered edge, annotated with its supporting spikes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GraphEdge {
    /// Sending node.
    pub from: NodeId,
    /// Receiving node.
    pub to: NodeId,
    /// Supporting correlation spikes (multiple spikes = multiple paths).
    /// Empty for the anchoring client edge, whose delay is unmeasurable.
    pub spikes: Vec<DelaySpike>,
    /// Per-hop delay: source-node computation plus `from → to`
    /// communication (difference of this edge's and the parent edge's
    /// smallest cumulative delays).
    pub hop_delay: Nanos,
}

impl GraphEdge {
    /// The anchoring edge from an (untraced) client to its front end.
    pub fn anchor(from: NodeId, to: NodeId) -> Self {
        GraphEdge {
            from,
            to,
            spikes: Vec::new(),
            hop_delay: Nanos::ZERO,
        }
    }

    /// Whether this is an anchoring edge (no measured delays).
    pub fn is_anchor(&self) -> bool {
        self.spikes.is_empty()
    }

    /// All cumulative delays, in spike order.
    pub fn delays(&self) -> impl Iterator<Item = Nanos> + '_ {
        self.spikes.iter().map(|s| s.delay)
    }

    /// The earliest *significant* cumulative delay (spikes at ≥ half the
    /// edge's peak strength; weak stragglers from the noise floor are
    /// ignored).
    pub fn min_delay(&self) -> Option<Nanos> {
        self.significant_delays().min()
    }

    /// The latest significant cumulative delay (the slowest genuine path
    /// through this edge).
    pub fn max_delay(&self) -> Option<Nanos> {
        self.significant_delays().max()
    }

    /// The peak supporting correlation (1.0 for the trusted anchor edge).
    pub fn strength(&self) -> f64 {
        self.spikes
            .iter()
            .map(|s| s.strength)
            .fold(f64::NEG_INFINITY, f64::max)
            .max(if self.spikes.is_empty() {
                1.0
            } else {
                f64::NEG_INFINITY
            })
    }

    /// Cumulative delays of spikes with at least half the peak strength.
    pub fn significant_delays(&self) -> impl Iterator<Item = Nanos> + '_ {
        let peak = self
            .spikes
            .iter()
            .map(|s| s.strength)
            .fold(0.0f64, f64::max);
        self.spikes
            .iter()
            .filter(move |s| s.strength >= 0.5 * peak)
            .map(|s| s.delay)
    }
}

/// A per-client causal service graph with delay annotations.
///
/// Vertices are service nodes (plus the client); an edge `a → b` means
/// messages on `a → b` are causally driven by this client's requests. The
/// graph naturally contains both the forward (request) and return
/// (response) directions — the paper's "duplicate vertex labels".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServiceGraph {
    /// The client node whose requests this graph describes.
    pub client: NodeId,
    /// The client's label.
    pub client_label: String,
    /// The front-end (root) service node.
    pub root: NodeId,
    vertices: Vec<GraphVertex>,
    edges: Vec<GraphEdge>,
}

impl ServiceGraph {
    /// Creates an empty graph rooted at `root` for `client`.
    pub fn new(client: NodeId, client_label: String, root: NodeId) -> Self {
        ServiceGraph {
            client,
            client_label,
            root,
            vertices: Vec::new(),
            edges: Vec::new(),
        }
    }

    /// The vertices, in discovery order.
    pub fn vertices(&self) -> &[GraphVertex] {
        &self.vertices
    }

    /// The edges, in discovery order.
    pub fn edges(&self) -> &[GraphEdge] {
        &self.edges
    }

    /// Whether `node` is already a vertex.
    pub fn has_vertex(&self, node: NodeId) -> bool {
        self.vertices.iter().any(|v| v.node == node)
    }

    /// Adds a vertex if absent.
    pub fn add_vertex(&mut self, node: NodeId, label: String) {
        if !self.has_vertex(node) {
            self.vertices.push(GraphVertex {
                node,
                label,
                bottleneck: false,
                contribution: None,
            });
        }
    }

    /// Adds an edge.
    pub fn add_edge(&mut self, edge: GraphEdge) {
        self.edges.push(edge);
    }

    /// The edge `from → to`, if present.
    pub fn edge(&self, from: NodeId, to: NodeId) -> Option<&GraphEdge> {
        self.edges.iter().find(|e| e.from == from && e.to == to)
    }

    /// Whether an edge exists between the two labelled nodes.
    pub fn has_edge_between(&self, from_label: &str, to_label: &str) -> bool {
        self.edges
            .iter()
            .any(|e| self.label_of(e.from) == from_label && self.label_of(e.to) == to_label)
    }

    /// The label of a vertex (falls back to the numeric id).
    pub fn label_of(&self, node: NodeId) -> String {
        self.vertices
            .iter()
            .find(|v| v.node == node)
            .map(|v| v.label.clone())
            .unwrap_or_else(|| node.to_string())
    }

    /// The end-to-end delay estimate: the largest *significant* cumulative
    /// delay on any edge returning to the client (or, failing that, on any
    /// edge). Weak noise-floor spikes never inflate the estimate.
    pub fn end_to_end_delay(&self) -> Option<Nanos> {
        let to_client = self
            .strong_edges()
            .filter(|e| e.to == self.client)
            .filter_map(|e| e.max_delay())
            .max();
        to_client.or_else(|| self.strong_edges().filter_map(|e| e.max_delay()).max())
    }

    /// Edges whose peak strength is at least a third of the graph's
    /// strongest (non-anchor) edge — the edges delay derivations trust.
    /// Weak stragglers admitted near the detection threshold (most common
    /// with the unbounded-lag convolution baseline) are excluded from
    /// arrival-time and bottleneck computations, though they remain in
    /// the graph for inspection.
    pub fn strong_edges(&self) -> impl Iterator<Item = &GraphEdge> + '_ {
        let peak = self
            .edges
            .iter()
            .filter(|e| !e.is_anchor())
            .map(|e| e.strength())
            .fold(0.0f64, f64::max);
        self.edges
            .iter()
            .filter(move |e| e.is_anchor() || e.strength() >= peak / 3.0)
    }

    /// Recomputes every edge's per-hop delay from the graph structure:
    /// `hop(a → b) = min cum(a → b) − earliest arrival at a`, where the
    /// earliest arrival is the smallest cumulative delay over `a`'s
    /// incoming edges (zero for an anchoring edge without measured
    /// delays, i.e. the front end).
    ///
    /// Discovery order must not influence hop attribution: the DFS can
    /// reach a node through its *return* edge before its forward edge
    /// (e.g. via the database's response to the other branch), so
    /// traversal-time bases are unreliable. This pass is run after
    /// discovery.
    pub fn recompute_hop_delays(&mut self) {
        let mut earliest: HashMap<NodeId, Nanos> = HashMap::new();
        for e in self.strong_edges() {
            let arrival = e.min_delay().unwrap_or(Nanos::ZERO);
            earliest
                .entry(e.to)
                .and_modify(|a| *a = (*a).min(arrival))
                .or_insert(arrival);
        }
        for e in &mut self.edges {
            let Some(min_cum) = e.min_delay() else {
                e.hop_delay = Nanos::ZERO;
                continue;
            };
            let base = earliest.get(&e.from).copied().unwrap_or(Nanos::ZERO);
            e.hop_delay = min_cum.saturating_sub(base);
        }
    }

    /// Derives each service vertex's delay contribution and marks
    /// bottlenecks.
    ///
    /// A vertex's contribution is the difference between the smallest
    /// cumulative delay over its *outgoing* edges and over its *incoming*
    /// edges (the paper: "the computing delay at node S_i is the difference
    /// of the delays corresponding to its incoming and outgoing edges").
    /// Vertices whose contribution is at least `fraction` of the maximum
    /// are marked grey.
    pub fn annotate_bottlenecks(&mut self, fraction: f64) {
        let mut contributions: HashMap<NodeId, Nanos> = HashMap::new();
        for v in &self.vertices {
            if v.node == self.client {
                continue;
            }
            let incoming = self
                .strong_edges()
                .filter(|e| e.to == v.node)
                .filter_map(|e| e.min_delay())
                .min();
            let outgoing = self
                .strong_edges()
                .filter(|e| e.from == v.node)
                .filter_map(|e| e.min_delay())
                .min();
            let contribution = match (incoming, outgoing) {
                (Some(i), Some(o)) => o.saturating_sub(i),
                // Root vertex: its incoming edge is the client's own,
                // which carries no measured delay.
                (None, Some(o)) => o,
                _ => Nanos::ZERO,
            };
            contributions.insert(v.node, contribution);
        }
        let max = contributions.values().copied().max().unwrap_or(Nanos::ZERO);
        for v in &mut self.vertices {
            if let Some(&c) = contributions.get(&v.node) {
                v.contribution = Some(c);
                v.bottleneck =
                    max > Nanos::ZERO && c.as_nanos() as f64 >= fraction * max.as_nanos() as f64;
            }
        }
    }

    /// The forward request chain: edges ordered by smallest cumulative
    /// delay, greedily following vertices from the root (a linearized view
    /// matching the paper's unrolled figures).
    pub fn linearized(&self) -> Vec<&GraphEdge> {
        let mut out: Vec<&GraphEdge> = self.edges.iter().collect();
        out.sort_by_key(|e| e.min_delay().unwrap_or(Nanos::ZERO));
        out
    }

    /// Renders the request's progress as an ASCII waterfall: one bar per
    /// edge, positioned at its cumulative delay, widest window scaled to
    /// `width` columns.
    ///
    /// ```text
    /// WS   -> TS1    |####                       |   6.0ms
    /// TS1  -> EJB1   |    #####                  |  15.0ms
    /// ```
    pub fn to_waterfall(&self, width: usize) -> String {
        let width = width.max(10);
        let max_cum = self
            .edges
            .iter()
            .filter_map(|e| e.max_delay())
            .max()
            .unwrap_or(Nanos::ZERO)
            .as_nanos()
            .max(1);
        let name_width = self
            .edges
            .iter()
            .map(|e| self.label_of(e.from).len() + self.label_of(e.to).len())
            .max()
            .unwrap_or(8)
            + 4;
        let mut out = String::new();
        for e in self.linearized() {
            let Some(cum) = e.min_delay() else {
                continue;
            };
            let start_col = ((cum.saturating_sub(e.hop_delay).as_nanos() as u128 * width as u128)
                / max_cum as u128) as usize;
            let end_col = ((cum.as_nanos() as u128 * width as u128) / max_cum as u128) as usize;
            let end_col = end_col.min(width);
            let start_col = start_col.min(end_col);
            let bar_len = (end_col - start_col)
                .max(1)
                .min(width - start_col.min(width - 1));
            let label = format!("{} -> {}", self.label_of(e.from), self.label_of(e.to));
            out.push_str(&format!(
                "{label:<name_width$}|{:start_col$}{:#<bar_len$}{:pad$}| {:>7.1}ms\n",
                "",
                "",
                "",
                cum.as_millis_f64(),
                pad = width.saturating_sub(start_col + bar_len),
            ));
        }
        out
    }

    /// Renders the graph in Graphviz DOT format (bottlenecks in grey).
    pub fn to_dot(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "digraph \"{}\" {{\n  rankdir=LR;\n",
            self.client_label
        ));
        s.push_str(&format!("  \"{}\" [shape=ellipse];\n", self.client_label));
        for v in &self.vertices {
            let style = if v.bottleneck {
                " style=filled fillcolor=grey"
            } else {
                ""
            };
            s.push_str(&format!("  \"{}\" [shape=box{}];\n", v.label, style));
        }
        for e in &self.edges {
            let delays: Vec<String> = e
                .delays()
                .map(|d| format!("{:.1}", d.as_millis_f64()))
                .collect();
            s.push_str(&format!(
                "  \"{}\" -> \"{}\" [label=\"+{:.1}ms (cum {})\"];\n",
                self.label_of(e.from),
                self.label_of(e.to),
                e.hop_delay.as_millis_f64(),
                delays.join("/"),
            ));
        }
        s.push_str("}\n");
        s
    }
}

impl fmt::Display for ServiceGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "service graph for client {} (root {})",
            self.client_label,
            self.label_of(self.root)
        )?;
        for e in self.linearized() {
            let cum: Vec<String> = e
                .delays()
                .map(|d| format!("{:.1}ms", d.as_millis_f64()))
                .collect();
            writeln!(
                f,
                "  {} -> {}  hop +{:.1}ms  cum [{}]  corr {:.2}",
                self.label_of(e.from),
                self.label_of(e.to),
                e.hop_delay.as_millis_f64(),
                cum.join(", "),
                e.strength(),
            )?;
        }
        for v in &self.vertices {
            if v.bottleneck {
                writeln!(
                    f,
                    "  bottleneck: {} (+{:.1}ms)",
                    v.label,
                    v.contribution.unwrap_or(Nanos::ZERO).as_millis_f64()
                )?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn edge(from: u32, to: u32, cum_ms: u64, hop_ms: u64) -> GraphEdge {
        GraphEdge {
            from: n(from),
            to: n(to),
            spikes: vec![DelaySpike {
                delay: Nanos::from_millis(cum_ms),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(hop_ms),
        }
    }

    /// client 0 -> ws 1 -> db 2 -> ws 1 -> client 0.
    fn sample() -> ServiceGraph {
        let mut g = ServiceGraph::new(n(0), "client".into(), n(1));
        g.add_vertex(n(1), "ws".into());
        g.add_vertex(n(2), "db".into());
        g.add_vertex(n(0), "client".into());
        g.add_edge(edge(1, 2, 5, 5));
        g.add_edge(edge(2, 1, 25, 20));
        g.add_edge(edge(1, 0, 27, 2));
        g
    }

    #[test]
    fn vertex_dedup() {
        let mut g = sample();
        g.add_vertex(n(1), "ws".into());
        assert_eq!(g.vertices().len(), 3);
    }

    #[test]
    fn edge_lookup_by_label() {
        let g = sample();
        assert!(g.has_edge_between("ws", "db"));
        assert!(g.has_edge_between("db", "ws"));
        assert!(!g.has_edge_between("db", "client"));
        assert!(g.edge(n(1), n(2)).is_some());
        assert!(g.edge(n(2), n(0)).is_none());
    }

    #[test]
    fn end_to_end_prefers_client_edges() {
        let g = sample();
        assert_eq!(g.end_to_end_delay(), Some(Nanos::from_millis(27)));
    }

    #[test]
    fn bottleneck_annotation() {
        let mut g = sample();
        g.annotate_bottlenecks(0.5);
        // db: incoming cum 5, outgoing cum 25 -> contribution 20ms (max).
        // ws: incoming min(25) (db->ws), outgoing min(5) -> 0 (saturating).
        let db = g.vertices().iter().find(|v| v.label == "db").unwrap();
        assert!(db.bottleneck);
        assert_eq!(db.contribution, Some(Nanos::from_millis(20)));
        let ws = g.vertices().iter().find(|v| v.label == "ws").unwrap();
        assert!(!ws.bottleneck);
    }

    #[test]
    fn linearized_is_cumulative_order() {
        let g = sample();
        let order: Vec<(NodeId, NodeId)> = g.linearized().iter().map(|e| (e.from, e.to)).collect();
        assert_eq!(order, vec![(n(1), n(2)), (n(2), n(1)), (n(1), n(0))]);
    }

    #[test]
    fn waterfall_renders_bars_in_order() {
        let g = sample();
        let w = g.to_waterfall(40);
        let lines: Vec<&str> = w.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("ws -> db"));
        assert!(lines[0].contains("5.0ms"));
        assert!(lines[2].contains("ws -> client"));
        assert!(lines[2].contains("27.0ms"));
        // Every line has a bar.
        assert!(lines.iter().all(|l| l.contains('#')));
    }

    #[test]
    fn waterfall_of_empty_graph_is_empty() {
        let g = ServiceGraph::new(n(0), "c".into(), n(1));
        assert!(g.to_waterfall(40).is_empty());
    }

    #[test]
    fn dot_renders_all_elements() {
        let mut g = sample();
        g.annotate_bottlenecks(0.5);
        let dot = g.to_dot();
        assert!(dot.contains("digraph"));
        assert!(dot.contains("\"ws\" -> \"db\""));
        assert!(dot.contains("fillcolor=grey"));
    }

    #[test]
    fn display_mentions_bottleneck() {
        let mut g = sample();
        g.annotate_bottlenecks(0.5);
        let text = g.to_string();
        assert!(text.contains("bottleneck: db"));
        assert!(text.contains("ws -> db"));
    }

    #[test]
    fn weak_spikes_do_not_inflate_delays() {
        // An edge with a strong spike at 20ms and a noise-floor spike at
        // 900ms: summaries must ignore the weak one.
        let e = GraphEdge {
            from: n(1),
            to: n(0),
            spikes: vec![
                DelaySpike {
                    delay: Nanos::from_millis(20),
                    strength: 0.9,
                },
                DelaySpike {
                    delay: Nanos::from_millis(900),
                    strength: 0.12,
                },
            ],
            hop_delay: Nanos::from_millis(20),
        };
        assert_eq!(e.min_delay(), Some(Nanos::from_millis(20)));
        assert_eq!(e.max_delay(), Some(Nanos::from_millis(20)));
        assert_eq!(e.delays().count(), 2); // raw spikes still visible
        assert_eq!(e.strength(), 0.9);
    }

    #[test]
    fn comparable_spikes_both_count() {
        // Round-robin: two genuine paths with comparable strengths.
        let e = GraphEdge {
            from: n(1),
            to: n(0),
            spikes: vec![
                DelaySpike {
                    delay: Nanos::from_millis(40),
                    strength: 0.5,
                },
                DelaySpike {
                    delay: Nanos::from_millis(90),
                    strength: 0.4,
                },
            ],
            hop_delay: Nanos::from_millis(40),
        };
        assert_eq!(e.min_delay(), Some(Nanos::from_millis(40)));
        assert_eq!(e.max_delay(), Some(Nanos::from_millis(90)));
    }

    #[test]
    fn anchor_edge_properties() {
        let e = GraphEdge::anchor(n(0), n(1));
        assert!(e.is_anchor());
        assert_eq!(e.min_delay(), None);
        assert_eq!(e.strength(), 1.0);
    }

    #[test]
    fn weak_edges_excluded_from_derivations() {
        // A weak spurious edge into the client must not define the e2e
        // estimate or pollute bottleneck bases.
        let mut g = ServiceGraph::new(n(0), "client".into(), n(1));
        g.add_vertex(n(1), "ws".into());
        g.add_edge(GraphEdge::anchor(n(0), n(1)));
        g.add_edge(GraphEdge {
            from: n(1),
            to: n(0),
            spikes: vec![DelaySpike {
                delay: Nanos::from_millis(30),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(30),
        });
        // Spurious weak edge claiming a 5-second response.
        g.add_edge(GraphEdge {
            from: n(1),
            to: n(0),
            spikes: vec![DelaySpike {
                delay: Nanos::from_millis(5_000),
                strength: 0.11,
            }],
            hop_delay: Nanos::from_millis(5_000),
        });
        assert_eq!(g.strong_edges().count(), 2); // anchor + genuine
        assert_eq!(g.end_to_end_delay(), Some(Nanos::from_millis(30)));
    }

    #[test]
    fn labels_from_list() {
        let labels = NodeLabels::new(vec!["a".into(), "b".into()]);
        assert_eq!(labels.label(n(1)), "b");
        assert_eq!(labels.label(n(9)), "n9");
        assert_eq!(labels.id_of("a"), Some(n(0)));
        assert_eq!(labels.id_of("zzz"), None);
    }
}
