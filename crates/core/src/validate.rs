//! Accuracy validation against simulator ground truth (Section 4.1.1).
//!
//! The paper verifies pathmap by instrumenting RUBiS to piggyback
//! per-server latencies, then comparing: per-server processing delays
//! matched within ~10 %, and the latency observed at the client was ~16 %
//! above pathmap's end-to-end estimate (the client's own link is invisible
//! to server-side tracing). This module computes the same comparison from
//! the simulator's [`TruthRecorder`].

use crate::graph::ServiceGraph;
use e2eprof_netsim::truth::TruthRecorder;
use e2eprof_netsim::{ClassId, NodeId, Topology};
use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};

/// Accuracy of one forward hop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopAccuracy {
    /// Source node label.
    pub from: String,
    /// Destination node label.
    pub to: String,
    /// Pathmap's inferred hop delay (processing at `from` + link).
    pub inferred: Nanos,
    /// Ground truth: mean processing delay at `from` + mean link latency.
    pub actual: Nanos,
    /// `|inferred − actual| / actual`.
    pub rel_error: f64,
}

/// The full accuracy comparison for one client's graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracyReport {
    /// Per-forward-hop comparison.
    pub hops: Vec<HopAccuracy>,
    /// Pathmap's end-to-end estimate (front-end arrival to response
    /// leaving the front end).
    pub e2e_inferred: Option<Nanos>,
    /// Mean client-observed end-to-end latency.
    pub e2e_actual: Nanos,
    /// `(actual − inferred) / inferred` — positive when clients observe
    /// more than pathmap can see (expected: the untraced client link).
    pub e2e_gap: Option<f64>,
}

impl AccuracyReport {
    /// The worst per-hop relative error.
    pub fn max_hop_error(&self) -> f64 {
        self.hops.iter().map(|h| h.rel_error).fold(0.0, f64::max)
    }
}

/// Compares a discovered graph against ground truth for `class`.
///
/// The comparison walks the most frequent true path and, for each
/// consecutive hop `(a → b)` present in the graph, checks the inferred hop
/// delay against `mean processing at a + mean link latency a→b`.
pub fn compare(
    graph: &ServiceGraph,
    truth: &TruthRecorder,
    topo: &Topology,
    class: ClassId,
) -> AccuracyReport {
    // Most frequent true path (None if no details retained).
    let true_path: Option<Vec<NodeId>> = truth
        .class_paths(class)
        .into_iter()
        .max_by_key(|(_, count)| *count)
        .map(|(path, _)| path);

    let mut hops = Vec::new();
    if let Some(path) = &true_path {
        for pair in path.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            let Some(edge) = graph.edge(a, b) else {
                continue;
            };
            let processing = truth.node_processing(class, a).mean();
            let link = topo
                .link(a, b)
                .map(|d| d.mean().as_nanos() as f64)
                .unwrap_or(0.0);
            let actual = processing + link;
            if actual <= 0.0 {
                continue;
            }
            let inferred = edge.hop_delay.as_nanos() as f64;
            hops.push(HopAccuracy {
                from: graph.label_of(a),
                to: graph.label_of(b),
                inferred: edge.hop_delay,
                actual: Nanos::from_nanos(actual.round() as u64),
                rel_error: (inferred - actual).abs() / actual,
            });
        }
    }

    let e2e_inferred = graph.end_to_end_delay();
    let e2e_actual = Nanos::from_nanos(truth.class_latency(class).mean().round() as u64);
    let e2e_gap = e2e_inferred.and_then(|inf| {
        (inf > Nanos::ZERO)
            .then(|| (e2e_actual.as_nanos() as f64 - inf.as_nanos() as f64) / inf.as_nanos() as f64)
    });
    AccuracyReport {
        hops,
        e2e_inferred,
        e2e_actual,
        e2e_gap,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PathmapConfig;
    use crate::graph::NodeLabels;
    use crate::pathmap::{roots_from_topology, Pathmap};
    use crate::signals::EdgeSignals;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;

    #[test]
    fn inferred_hops_match_truth_within_tolerance() {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("bid");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(3)));
        let db = t.service("db", ServiceConfig::new(DelayDist::exponential_millis(10)));
        let cli = t.client("cli", class, web, Workload::poisson(50.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        let mut sim = Simulation::new(t.build().unwrap(), 13);
        sim.run_until(Nanos::from_secs(40));

        let cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(30))
            .refresh(Nanos::from_secs(10))
            .max_delay(Nanos::from_secs(2))
            .build();
        let pm = Pathmap::new(cfg.clone());
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let labels = NodeLabels::from_topology(sim.topology());
        let graphs = pm.discover(&signals, &roots_from_topology(sim.topology()), &labels);
        let report = compare(&graphs[0], sim.truth(), sim.topology(), class);

        assert!(!report.hops.is_empty(), "no comparable hops found");
        // The paper reports ~10% per-hop accuracy; allow a little slack for
        // the short window.
        assert!(
            report.max_hop_error() < 0.35,
            "hop errors too large: {:#?}",
            report.hops
        );
        // The client observes more latency than server-side tracing can
        // see (its own access link), as in the paper's 16% observation.
        let gap = report.e2e_gap.expect("e2e estimate available");
        assert!(
            gap > 0.0,
            "client-observed latency should exceed estimate, gap={gap}"
        );
        assert!(gap < 1.0, "gap implausibly large: {gap}");
    }
}
