//! Pathmap analysis parameters.

use e2eprof_timeseries::{Nanos, Quanta};
use e2eprof_xcorr::engine::{DenseCorrelator, FftCorrelator, RleCorrelator, SparseCorrelator};
use e2eprof_xcorr::screen::Screen;
use e2eprof_xcorr::{AutoCorrelator, Correlator, CostModel, SpikeDetector};
use serde::{Deserialize, Serialize};

/// Which correlation engine the pathmap uses for from-scratch (stateless)
/// correlations.
///
/// The default, [`Rle`](CorrelationBackend::Rle), keeps the pipeline
/// bit-for-bit identical to previous releases. [`Auto`](CorrelationBackend::Auto)
/// routes each `(client, edge)` pair to the engine a cost model predicts
/// to be fastest (see [`e2eprof_xcorr::auto`]); since every engine
/// computes the same lagged products, the discovered graphs are unchanged
/// up to FFT round-off far below spike-decision scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CorrelationBackend {
    /// Native RLE correlation ("rle-compression") — the default.
    #[default]
    Rle,
    /// Direct correlation on decompressed windows ("no-compression").
    Dense,
    /// Entry-skipping correlation ("burst-compression").
    Sparse,
    /// FFT correlation ("fft").
    Fft,
    /// Per-pair adaptive selection over the four engines above.
    Auto,
}

/// Which wire format tracer agents ship frames in (see
/// [`e2eprof_timeseries::wire`]).
///
/// The default, [`V1`](WireVersion::V1), keeps the frame stream bit-for-bit
/// identical to previous releases: one fixed-width frame per edge per
/// flush. [`V2`](WireVersion::V2) coalesces every series an agent owns
/// into one varint-compressed batch frame per flush, which the analyzer
/// ingests through a zero-copy cursor; the decoded series — and hence the
/// discovered graphs — are identical (the integer-count amplitude encoding
/// reconstructs every √count density bit-for-bit). The analyzer accepts
/// both formats regardless of this setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WireVersion {
    /// One fixed-width frame per edge per flush — the default.
    #[default]
    V1,
    /// One varint batch frame per agent flush.
    V2,
}

/// How tracer agents reach the analyzer tier.
///
/// The default, [`InProcess`](Transport::InProcess), keeps the original
/// channel pipeline — the bit-identical anchor every other transport is
/// tested against. [`Tcp`](Transport::Tcp) and [`Unix`](Transport::Unix)
/// put the same frames on real sockets through a broker (see the
/// `e2eprof-net` crate); the framed stream carries the identical wire
/// payloads, so discovered graphs are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Transport {
    /// In-process channels (the default, bit-identical anchor).
    #[default]
    InProcess,
    /// TCP sockets through a broker.
    Tcp,
    /// Unix-domain sockets through a broker.
    Unix,
}

/// Coarse-to-fine screening parameters (see [`e2eprof_xcorr::screen`]).
///
/// With screening enabled, the analyzer maintains cheap correlators over
/// `k`-decimated signals for *every* `(client, edge)` pair and pays
/// full-resolution cost only for pairs whose coarse bound can reach the
/// spike floor. Pruning is conservative (the bound provably dominates
/// every fine coefficient), so discovered graphs are unchanged;
/// `screening: None` keeps the single-tier pipeline bit-for-bit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScreeningConfig {
    /// Decimation factor `k`: one coarse tick sums `k` fine ticks.
    pub decimation: u64,
    /// Hysteresis margin `h ∈ [0, 1)`: pairs promote at `floor·(1−h)` and
    /// demote below `floor·(1−h)²`, so bounds oscillating near the floor
    /// don't thrash between full recomputes.
    pub hysteresis: f64,
}

impl Default for ScreeningConfig {
    fn default() -> Self {
        ScreeningConfig {
            decimation: 8,
            hysteresis: 0.5,
        }
    }
}

/// Edge-side data-reduction parameters (the analyzer→tracer feedback
/// loop).
///
/// With reduction enabled, the analyzer pushes per-edge *hints* back to
/// tracer agents: edges whose every `(client, edge)` screening pair has
/// stayed pruned for `patience` consecutive refreshes are **demoted** and
/// ship only a `√(block count)` decimated image at an adaptively chosen
/// level (denser edges decimate harder), cutting bytes on the wire before
/// they are ever sent. When a demoted edge's coarse image overlaps any
/// client signal within the lag horizon again, the analyzer **promotes**
/// it; the tracer then backfills the retained fine window over the wire so
/// the fine correlators re-warm without waiting a full window. Demotion is
/// sound (the PR 2 cover bound proves the pruned pairs causally dead) and
/// promotion fires on the only event that could revive one, so the
/// discovered strong-edge set is unchanged. `reduction: None` (the
/// default) keeps every byte and every code path bit-for-bit identical.
///
/// Requires screening and the v2 wire format.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReductionConfig {
    /// Base decimation level for demoted edges: one coarse tick aggregates
    /// `base_level` fine ticks. Dense edges are decimated at up to
    /// `4 × base_level`.
    pub base_level: u64,
    /// Consecutive refreshes an edge's pairs must all stay pruned before
    /// the edge is demoted (debounces transient quiet spells).
    pub patience: u32,
}

impl Default for ReductionConfig {
    fn default() -> Self {
        ReductionConfig {
            base_level: 16,
            patience: 2,
        }
    }
}

/// The knobs of the pathmap algorithm (paper Sections 3.3–3.5).
///
/// Defaults match the paper's RUBiS configuration: `τ` = 1 ms, `ω` = 50·τ,
/// `W` = 3 min, `ΔW` = 1 min, `T_u` = 1 min, spikes at `mean + 3σ`.
///
/// # Example
///
/// ```
/// use e2eprof_core::PathmapConfig;
/// use e2eprof_timeseries::{Nanos, Quanta};
/// let cfg = PathmapConfig::builder()
///     .quanta(Quanta::from_secs(1))        // Delta pipeline resolution
///     .window(Nanos::from_minutes(60))
///     .refresh(Nanos::from_minutes(10))
///     .max_delay(Nanos::from_minutes(10))
///     .build();
/// assert_eq!(cfg.window_ticks(), 3600);
/// assert_eq!(cfg.max_lag(), 600);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PathmapConfig {
    quanta: Quanta,
    omega_ticks: u64,
    window: Nanos,
    refresh: Nanos,
    max_delay: Nanos,
    spike_sigma: f64,
    spike_resolution_ticks: u64,
    min_spike_value: f64,
    num_workers: usize,
    screening: Option<ScreeningConfig>,
    backend: CorrelationBackend,
    auto_cost_model: Option<CostModel>,
    wire: WireVersion,
    transport: Transport,
    reduction: Option<ReductionConfig>,
    incremental: bool,
}

impl Default for PathmapConfig {
    fn default() -> Self {
        PathmapConfigBuilder::default().build()
    }
}

impl PathmapConfig {
    /// Starts a builder with the paper's RUBiS defaults.
    pub fn builder() -> PathmapConfigBuilder {
        PathmapConfigBuilder::default()
    }

    /// The time quantum `τ`.
    pub fn quanta(&self) -> Quanta {
        self.quanta
    }

    /// The sampling window `ω`, in ticks.
    pub fn omega_ticks(&self) -> u64 {
        self.omega_ticks
    }

    /// The sliding window `W`.
    pub fn window(&self) -> Nanos {
        self.window
    }

    /// `W` in ticks.
    pub fn window_ticks(&self) -> u64 {
        self.quanta.ticks_in(self.window)
    }

    /// The service-graph refresh interval `ΔW`.
    pub fn refresh(&self) -> Nanos {
        self.refresh
    }

    /// `ΔW` in ticks.
    pub fn refresh_ticks(&self) -> u64 {
        self.quanta.ticks_in(self.refresh)
    }

    /// The upper bound `T_u` on end-to-end transaction delay.
    pub fn max_delay(&self) -> Nanos {
        self.max_delay
    }

    /// `T_u` in ticks — the correlation lag bound.
    pub fn max_lag(&self) -> u64 {
        self.quanta.ticks_in(self.max_delay)
    }

    /// The spike threshold in standard deviations.
    pub fn spike_sigma(&self) -> f64 {
        self.spike_sigma
    }

    /// Minimum normalized correlation for a spike to count as causal
    /// evidence (suppresses spikes in near-empty windows).
    pub fn min_spike_value(&self) -> f64 {
        self.min_spike_value
    }

    /// The configured spike detector.
    pub fn spike_detector(&self) -> SpikeDetector {
        SpikeDetector::new(self.spike_sigma, self.spike_resolution_ticks)
    }

    /// The number of worker threads the online analyzer uses to refresh
    /// correlations (default: the platform's available parallelism).
    ///
    /// Results are bitwise identical for every worker count; `1` runs the
    /// whole refresh on the calling thread without spawning.
    pub fn num_workers(&self) -> usize {
        self.num_workers
    }

    /// The coarse-to-fine screening configuration, if enabled.
    ///
    /// `None` (the default) runs the single-tier pipeline unchanged.
    pub fn screening(&self) -> Option<&ScreeningConfig> {
        self.screening.as_ref()
    }

    /// The correlation backend used for from-scratch correlations
    /// (default: [`CorrelationBackend::Rle`], bit-for-bit compatible with
    /// previous releases).
    pub fn backend(&self) -> CorrelationBackend {
        self.backend
    }

    /// The explicit cost model for the [`CorrelationBackend::Auto`]
    /// backend, if one was supplied. `None` means the model is calibrated
    /// on the host when the engine is built.
    pub fn auto_cost_model(&self) -> Option<&CostModel> {
        self.auto_cost_model.as_ref()
    }

    /// The wire format tracer agents ship frames in (default:
    /// [`WireVersion::V1`], bit-for-bit compatible with previous
    /// releases).
    pub fn wire(&self) -> WireVersion {
        self.wire
    }

    /// How tracer agents reach the analyzer tier (default:
    /// [`Transport::InProcess`], the bit-identical channel anchor).
    pub fn transport(&self) -> Transport {
        self.transport
    }

    /// The edge-side data-reduction configuration, if enabled.
    ///
    /// `None` (the default) ships every edge at full resolution and keeps
    /// the pipeline bit-for-bit identical to previous releases.
    pub fn reduction(&self) -> Option<&ReductionConfig> {
        self.reduction.as_ref()
    }

    /// Whether the analyzer runs activity-gated incremental refreshes.
    ///
    /// When enabled, per-refresh cost tracks *activity* rather than
    /// inventory: pairs whose source and target windows provably carried
    /// no run-boundary change across the slide skip screening and
    /// correlation (their cached bound and `CorrSeries` carry forward
    /// bit-identically), roots whose entire support set is quiet reuse
    /// last refresh's `ServiceGraph`, and cold refills batch each
    /// client's fan-out through the shared-transform FFT entry point.
    /// `false` (the default) keeps every code path bit-for-bit identical
    /// to previous releases — and the skip machinery is itself proven
    /// (DESIGN.md §6.7, `tests/incremental_equivalence.rs`) to leave the
    /// discovered graphs bitwise unchanged when enabled.
    pub fn incremental(&self) -> bool {
        self.incremental
    }

    /// Instantiates the configured correlation engine.
    ///
    /// For [`CorrelationBackend::Auto`] without an explicit cost model
    /// this runs the one-shot calibration micro-benchmark (a few
    /// milliseconds; see [`CostModel::calibrate`]) — supply a model via
    /// the builder for fully deterministic construction.
    pub fn build_engine(&self) -> Box<dyn Correlator> {
        match self.backend {
            CorrelationBackend::Rle => Box::new(RleCorrelator),
            CorrelationBackend::Dense => Box::new(DenseCorrelator),
            CorrelationBackend::Sparse => Box::new(SparseCorrelator),
            CorrelationBackend::Fft => Box::new(FftCorrelator),
            CorrelationBackend::Auto => Box::new(match self.auto_cost_model {
                Some(model) => AutoCorrelator::new(model),
                None => AutoCorrelator::calibrated(),
            }),
        }
    }

    /// Builds the screening decision helper from this configuration, if
    /// screening is enabled. The spike floor is
    /// [`min_spike_value`](Self::min_spike_value): a pruned pair's bound
    /// proves every fine
    /// coefficient sits below the floor, so no spike it could produce
    /// would survive the pathmap's strength filter.
    pub fn screen(&self) -> Option<Screen> {
        self.screening
            .as_ref()
            .map(|sc| Screen::new(sc.decimation, self.min_spike_value, sc.hysteresis))
    }
}

/// Builder for [`PathmapConfig`].
#[derive(Debug, Clone)]
pub struct PathmapConfigBuilder {
    quanta: Quanta,
    omega_ticks: u64,
    window: Nanos,
    refresh: Nanos,
    max_delay: Nanos,
    spike_sigma: f64,
    spike_resolution_ticks: u64,
    min_spike_value: f64,
    num_workers: usize,
    screening: Option<ScreeningConfig>,
    backend: CorrelationBackend,
    auto_cost_model: Option<CostModel>,
    wire: WireVersion,
    transport: Transport,
    reduction: Option<ReductionConfig>,
    incremental: bool,
}

impl Default for PathmapConfigBuilder {
    fn default() -> Self {
        PathmapConfigBuilder {
            quanta: Quanta::from_millis(1),
            omega_ticks: 50,
            window: Nanos::from_minutes(3),
            refresh: Nanos::from_minutes(1),
            max_delay: Nanos::from_minutes(1),
            spike_sigma: 3.0,
            spike_resolution_ticks: 50,
            min_spike_value: 0.1,
            num_workers: crate::parallel::available_workers(),
            screening: None,
            backend: CorrelationBackend::default(),
            auto_cost_model: None,
            wire: WireVersion::default(),
            transport: Transport::default(),
            reduction: None,
            incremental: false,
        }
    }
}

impl PathmapConfigBuilder {
    /// Sets the time quantum `τ`.
    pub fn quanta(mut self, quanta: Quanta) -> Self {
        self.quanta = quanta;
        self
    }

    /// Sets the sampling window `ω` in ticks (paper default: 50).
    pub fn omega_ticks(mut self, ticks: u64) -> Self {
        self.omega_ticks = ticks;
        self
    }

    /// Sets the sliding window `W`.
    pub fn window(mut self, window: Nanos) -> Self {
        self.window = window;
        self
    }

    /// Sets the refresh interval `ΔW`.
    pub fn refresh(mut self, refresh: Nanos) -> Self {
        self.refresh = refresh;
        self
    }

    /// Sets the transaction-delay bound `T_u`.
    pub fn max_delay(mut self, max_delay: Nanos) -> Self {
        self.max_delay = max_delay;
        self
    }

    /// Sets the spike threshold in standard deviations.
    pub fn spike_sigma(mut self, sigma: f64) -> Self {
        self.spike_sigma = sigma;
        self
    }

    /// Sets the spike resolution window in ticks.
    pub fn spike_resolution_ticks(mut self, ticks: u64) -> Self {
        self.spike_resolution_ticks = ticks;
        self
    }

    /// Sets the minimum normalized correlation for causal evidence.
    pub fn min_spike_value(mut self, value: f64) -> Self {
        self.min_spike_value = value;
        self
    }

    /// Sets the refresh worker-pool size (clamped to at least 1; default
    /// is the platform's available parallelism). Output is bitwise
    /// identical for every setting; `1` never spawns threads.
    pub fn num_workers(mut self, workers: usize) -> Self {
        self.num_workers = workers.max(1);
        self
    }

    /// Enables coarse-to-fine candidate screening with the given
    /// parameters. The default (`None`) keeps the single-tier pipeline.
    pub fn screening(mut self, screening: ScreeningConfig) -> Self {
        self.screening = Some(screening);
        self
    }

    /// Selects the correlation backend (default:
    /// [`CorrelationBackend::Rle`], bit-for-bit compatible with previous
    /// releases).
    pub fn backend(mut self, backend: CorrelationBackend) -> Self {
        self.backend = backend;
        self
    }

    /// Supplies explicit cost-model constants for the
    /// [`CorrelationBackend::Auto`] backend instead of calibrating on the
    /// host — use for deterministic tests and reproducible runs.
    pub fn auto_cost_model(mut self, model: CostModel) -> Self {
        self.auto_cost_model = Some(model);
        self
    }

    /// Selects the tracer wire format (default: [`WireVersion::V1`],
    /// bit-for-bit compatible with previous releases).
    pub fn wire(mut self, wire: WireVersion) -> Self {
        self.wire = wire;
        self
    }

    /// Selects the tracer-to-analyzer transport (default:
    /// [`Transport::InProcess`], the bit-identical channel anchor).
    pub fn transport(mut self, transport: Transport) -> Self {
        self.transport = transport;
        self
    }

    /// Enables the edge-side data-reduction feedback loop with the given
    /// parameters. The default (`None`) ships every edge at full
    /// resolution. Requires screening and the v2 wire format.
    pub fn reduction(mut self, reduction: ReductionConfig) -> Self {
        self.reduction = Some(reduction);
        self
    }

    /// Enables or disables activity-gated incremental refresh (default:
    /// off, bit-for-bit identical to previous releases; see
    /// [`PathmapConfig::incremental`]).
    pub fn incremental(mut self, incremental: bool) -> Self {
        self.incremental = incremental;
        self
    }

    /// Applies environment-variable overrides (the CI configuration-matrix
    /// hook; tests opting in call this last, so a plain build is
    /// unaffected):
    ///
    /// * `E2EPROF_BACKEND` ∈ `rle | dense | sparse | fft | auto` — selects
    ///   the backend; `auto` uses the deterministic default cost model.
    /// * `E2EPROF_SCREENING` — `off` disables screening; an integer `k`
    ///   enables it with decimation `k` and default hysteresis.
    /// * `E2EPROF_WIRE` ∈ `v1 | v2` — selects the tracer wire format.
    /// * `E2EPROF_TRANSPORT` ∈ `inproc | tcp | unix` — selects the
    ///   tracer-to-analyzer transport.
    /// * `E2EPROF_REDUCTION` — `off` disables edge-side data reduction;
    ///   `on` enables it with defaults; an integer `k` enables it with
    ///   base decimation level `k`. Enabling reduction pulls in its
    ///   prerequisites (default screening, the v2 wire) unless the
    ///   environment explicitly disables them — an explicit
    ///   `E2EPROF_SCREENING=off` or `E2EPROF_WIRE=v1` alongside an
    ///   enabled reduction still fails the [`build`](Self::build)
    ///   invariants loudly.
    /// * `E2EPROF_INCREMENTAL` ∈ `off | on` — enables activity-gated
    ///   incremental refresh (default off).
    ///
    /// # Panics
    ///
    /// Panics on an unrecognized value so a typo in a CI matrix fails
    /// loudly instead of silently testing the default path.
    pub fn env_overrides(mut self) -> Self {
        if let Ok(v) = std::env::var("E2EPROF_BACKEND") {
            self.backend = match v.as_str() {
                "" | "rle" => CorrelationBackend::Rle,
                "dense" => CorrelationBackend::Dense,
                "sparse" => CorrelationBackend::Sparse,
                "fft" => CorrelationBackend::Fft,
                "auto" => {
                    self.auto_cost_model.get_or_insert_with(CostModel::default);
                    CorrelationBackend::Auto
                }
                other => panic!("E2EPROF_BACKEND has unknown value {other:?}"),
            };
        }
        if let Ok(v) = std::env::var("E2EPROF_SCREENING") {
            match v.as_str() {
                "" | "off" => self.screening = None,
                k => {
                    let decimation = k
                        .parse::<u64>()
                        .unwrap_or_else(|_| panic!("E2EPROF_SCREENING has unknown value {k:?}"));
                    self.screening = Some(ScreeningConfig {
                        decimation,
                        ..ScreeningConfig::default()
                    });
                }
            }
        }
        if let Ok(v) = std::env::var("E2EPROF_WIRE") {
            self.wire = match v.as_str() {
                "" | "v1" => WireVersion::V1,
                "v2" => WireVersion::V2,
                other => panic!("E2EPROF_WIRE has unknown value {other:?}"),
            };
        }
        if let Ok(v) = std::env::var("E2EPROF_TRANSPORT") {
            self.transport = match v.as_str() {
                "" | "inproc" => Transport::InProcess,
                "tcp" => Transport::Tcp,
                "unix" => Transport::Unix,
                other => panic!("E2EPROF_TRANSPORT has unknown value {other:?}"),
            };
        }
        if let Ok(v) = std::env::var("E2EPROF_REDUCTION") {
            match v.as_str() {
                "" | "off" => self.reduction = None,
                "on" => self.reduction = Some(ReductionConfig::default()),
                k => {
                    let base_level = k
                        .parse::<u64>()
                        .unwrap_or_else(|_| panic!("E2EPROF_REDUCTION has unknown value {k:?}"));
                    self.reduction = Some(ReductionConfig {
                        base_level,
                        ..ReductionConfig::default()
                    });
                }
            }
            if self.reduction.is_some() {
                // Reduction implies its prerequisites. Only an *explicit*
                // contradiction in the same environment is left in place so
                // build() rejects it loudly.
                let screening_env_off = matches!(
                    std::env::var("E2EPROF_SCREENING").as_deref(),
                    Ok("") | Ok("off")
                );
                if !screening_env_off {
                    self.screening.get_or_insert_with(ScreeningConfig::default);
                }
                let wire_env_v1 =
                    matches!(std::env::var("E2EPROF_WIRE").as_deref(), Ok("") | Ok("v1"));
                if !wire_env_v1 {
                    self.wire = WireVersion::V2;
                }
            }
        }
        if let Ok(v) = std::env::var("E2EPROF_INCREMENTAL") {
            self.incremental = match v.as_str() {
                "" | "off" => false,
                "on" => true,
                other => panic!("E2EPROF_INCREMENTAL has unknown value {other:?}"),
            };
        }
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if any parameter is degenerate (zero window, zero refresh,
    /// zero `ω`, zero `T_u`, refresh exceeding window).
    pub fn build(self) -> PathmapConfig {
        assert!(self.omega_ticks > 0, "sampling window must be positive");
        let cfg = PathmapConfig {
            quanta: self.quanta,
            omega_ticks: self.omega_ticks,
            window: self.window,
            refresh: self.refresh,
            max_delay: self.max_delay,
            spike_sigma: self.spike_sigma,
            spike_resolution_ticks: self.spike_resolution_ticks,
            min_spike_value: self.min_spike_value,
            num_workers: self.num_workers.max(1),
            screening: self.screening,
            backend: self.backend,
            auto_cost_model: self.auto_cost_model,
            wire: self.wire,
            transport: self.transport,
            reduction: self.reduction,
            incremental: self.incremental,
        };
        assert!(cfg.window_ticks() > 0, "window must span at least one tick");
        assert!(
            cfg.refresh_ticks() > 0,
            "refresh must span at least one tick"
        );
        assert!(cfg.max_lag() > 0, "max delay must span at least one tick");
        assert!(
            cfg.refresh_ticks() <= cfg.window_ticks(),
            "refresh interval cannot exceed the window"
        );
        if let Some(sc) = &cfg.screening {
            assert!(
                sc.decimation >= 2,
                "screening decimation must be at least 2 (1 is the fine tier)"
            );
            assert!(
                sc.decimation <= cfg.max_lag(),
                "screening decimation cannot exceed the lag bound T_u/τ \
                 (the online slack term assumes k <= max_lag)"
            );
            assert!(
                (0.0..1.0).contains(&sc.hysteresis),
                "screening hysteresis must lie in [0, 1)"
            );
            assert!(
                cfg.min_spike_value > 0.0,
                "screening needs a positive spike floor to prune against"
            );
        }
        if let Some(rc) = &cfg.reduction {
            assert!(
                cfg.screening.is_some(),
                "reduction requires screening (demotion is justified by the \
                 screening tier's pruning proof)"
            );
            assert!(
                cfg.wire == WireVersion::V2,
                "reduction requires the v2 wire format (coarse entries carry \
                 a per-series decimation-level tag)"
            );
            assert!(
                rc.base_level >= 2,
                "reduction base level must be at least 2"
            );
            assert!(rc.patience >= 1, "reduction patience must be at least 1");
        }
        cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_rubis_setup() {
        let cfg = PathmapConfig::default();
        assert_eq!(cfg.quanta(), Quanta::from_millis(1));
        assert_eq!(cfg.omega_ticks(), 50);
        assert_eq!(cfg.window_ticks(), 3 * 60 * 1000);
        assert_eq!(cfg.refresh_ticks(), 60 * 1000);
        assert_eq!(cfg.max_lag(), 60 * 1000);
        assert_eq!(cfg.spike_sigma(), 3.0);
    }

    #[test]
    fn builder_overrides() {
        let cfg = PathmapConfig::builder()
            .quanta(Quanta::from_secs(1))
            .omega_ticks(50)
            .window(Nanos::from_minutes(60))
            .refresh(Nanos::from_minutes(5))
            .max_delay(Nanos::from_minutes(2))
            .spike_sigma(2.5)
            .spike_resolution_ticks(10)
            .min_spike_value(0.1)
            .build();
        assert_eq!(cfg.window_ticks(), 3600);
        assert_eq!(cfg.refresh_ticks(), 300);
        assert_eq!(cfg.max_lag(), 120);
        assert_eq!(cfg.min_spike_value(), 0.1);
        assert_eq!(cfg.spike_detector().resolution(), 10);
    }

    #[test]
    fn num_workers_defaults_and_clamps() {
        assert!(PathmapConfig::default().num_workers() >= 1);
        assert_eq!(
            PathmapConfig::builder()
                .num_workers(0)
                .build()
                .num_workers(),
            1
        );
        assert_eq!(
            PathmapConfig::builder()
                .num_workers(4)
                .build()
                .num_workers(),
            4
        );
    }

    #[test]
    #[should_panic(expected = "refresh interval cannot exceed")]
    fn refresh_larger_than_window_rejected() {
        let _ = PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(20))
            .build();
    }

    #[test]
    fn screening_defaults_off_and_builds_a_screen_when_set() {
        let plain = PathmapConfig::default();
        assert!(plain.screening().is_none());
        assert!(plain.screen().is_none());

        let cfg = PathmapConfig::builder()
            .screening(ScreeningConfig {
                decimation: 16,
                hysteresis: 0.25,
            })
            .build();
        assert_eq!(cfg.screening().unwrap().decimation, 16);
        let screen = cfg.screen().unwrap();
        assert_eq!(screen.factor(), 16);
        assert!((screen.promote_threshold() - 0.1 * 0.75).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "decimation must be at least 2")]
    fn unit_decimation_rejected() {
        let _ = PathmapConfig::builder()
            .screening(ScreeningConfig {
                decimation: 1,
                hysteresis: 0.0,
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "cannot exceed the lag bound")]
    fn decimation_beyond_max_lag_rejected() {
        let _ = PathmapConfig::builder()
            .quanta(Quanta::from_secs(1))
            .window(Nanos::from_minutes(10))
            .refresh(Nanos::from_minutes(1))
            .max_delay(Nanos::from_secs(4))
            .screening(ScreeningConfig {
                decimation: 8,
                hysteresis: 0.0,
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "hysteresis must lie in")]
    fn out_of_range_hysteresis_rejected() {
        let _ = PathmapConfig::builder()
            .screening(ScreeningConfig {
                decimation: 8,
                hysteresis: 1.0,
            })
            .build();
    }

    #[test]
    #[should_panic(expected = "window must span")]
    fn sub_tick_window_rejected() {
        let _ = PathmapConfig::builder()
            .quanta(Quanta::from_secs(1))
            .window(Nanos::from_millis(10))
            .refresh(Nanos::from_millis(1))
            .build();
    }

    #[test]
    fn backend_defaults_to_rle() {
        let cfg = PathmapConfig::builder().build();
        assert_eq!(cfg.backend(), CorrelationBackend::Rle);
        assert!(cfg.auto_cost_model().is_none());
        assert_eq!(cfg.build_engine().name(), "rle-compression");
    }

    #[test]
    fn build_engine_honors_backend_selection() {
        for (backend, name) in [
            (CorrelationBackend::Rle, "rle-compression"),
            (CorrelationBackend::Dense, "no-compression"),
            (CorrelationBackend::Sparse, "burst-compression"),
            (CorrelationBackend::Fft, "fft"),
        ] {
            let cfg = PathmapConfig::builder().backend(backend).build();
            assert_eq!(cfg.build_engine().name(), name);
        }
        let cfg = PathmapConfig::builder()
            .backend(CorrelationBackend::Auto)
            .auto_cost_model(CostModel::default())
            .build();
        assert_eq!(cfg.backend(), CorrelationBackend::Auto);
        assert_eq!(cfg.build_engine().name(), "auto");
    }

    #[test]
    fn wire_defaults_to_v1_and_is_selectable() {
        assert_eq!(PathmapConfig::default().wire(), WireVersion::V1);
        let cfg = PathmapConfig::builder().wire(WireVersion::V2).build();
        assert_eq!(cfg.wire(), WireVersion::V2);
    }

    #[test]
    fn transport_defaults_to_in_process_and_is_selectable() {
        assert_eq!(PathmapConfig::default().transport(), Transport::InProcess);
        for t in [Transport::Tcp, Transport::Unix] {
            assert_eq!(PathmapConfig::builder().transport(t).build().transport(), t);
        }
    }

    #[test]
    fn incremental_defaults_off_and_is_selectable() {
        assert!(!PathmapConfig::default().incremental());
        assert!(PathmapConfig::builder()
            .incremental(true)
            .build()
            .incremental());
    }

    #[test]
    fn auto_cost_model_is_stored() {
        let model = CostModel::default();
        let cfg = PathmapConfig::builder()
            .backend(CorrelationBackend::Auto)
            .auto_cost_model(model)
            .build();
        assert_eq!(cfg.auto_cost_model(), Some(&model));
    }
}
