//! Ingesting external traces: application-level transaction logs.
//!
//! The Delta Revenue Pipeline analysis (Section 4.3) ran pathmap not on
//! packet captures but on *access logs* — application-level transactional
//! events with timestamps and server identities. This module is that
//! adapter for arbitrary deployments: feed it `(timestamp, src, dst)`
//! records from any log source (one CSV line per message is built in) and
//! it produces the same [`EdgeSignals`] the packet path produces, plus
//! inferred analysis roots.
//!
//! Request IDs, payloads, or log semantics are deliberately *not* needed:
//! pathmap is a black-box technique.

use crate::config::PathmapConfig;
use crate::graph::NodeLabels;
use crate::signals::EdgeSignals;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::Nanos;
use std::collections::{BTreeSet, HashMap};
use std::error::Error;
use std::fmt;
use std::io::BufRead;

/// One logged message: `src` sent something to `dst` at `at`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Timestamp (nanoseconds since the trace epoch, in the *observing*
    /// component's clock).
    pub at: Nanos,
    /// Sending component name.
    pub src: String,
    /// Receiving component name.
    pub dst: String,
}

/// Errors from parsing a log line.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParseError {
    /// The line does not have exactly three comma-separated fields.
    BadFieldCount {
        /// 1-based line number.
        line: usize,
    },
    /// The timestamp field is not an unsigned integer (nanoseconds).
    BadTimestamp {
        /// 1-based line number.
        line: usize,
    },
    /// An I/O error from the reader.
    Io(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::BadFieldCount { line } => {
                write!(f, "line {line}: expected `timestamp_ns,src,dst`")
            }
            ParseError::BadTimestamp { line } => {
                write!(f, "line {line}: timestamp is not an unsigned integer")
            }
            ParseError::Io(e) => write!(f, "read failed: {e}"),
        }
    }
}

impl Error for ParseError {}

/// Accumulates log records and converts them into pathmap inputs.
///
/// Component names are interned into dense [`NodeId`]s in first-seen
/// order. Records may arrive in any order; they are sorted per edge at
/// build time.
///
/// # Example
///
/// ```
/// use e2eprof_core::ingest::TraceIngest;
/// use e2eprof_core::PathmapConfig;
/// use e2eprof_timeseries::Nanos;
///
/// let log = "\
/// 1000000,client,web
/// 3000000,web,db
/// 9000000,db,web
/// ";
/// let mut ingest = TraceIngest::new();
/// ingest.read_csv(log.as_bytes())?;
/// assert_eq!(ingest.num_components(), 3);
/// assert_eq!(ingest.num_records(), 3);
/// let roots = ingest.infer_roots();
/// let labels = ingest.labels();
/// assert_eq!(labels.label(roots[0].0), "client");
/// assert_eq!(labels.label(roots[0].1), "web");
/// # Ok::<(), e2eprof_core::ingest::ParseError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct TraceIngest {
    names: Vec<String>,
    ids: HashMap<String, NodeId>,
    edges: HashMap<(NodeId, NodeId), Vec<Nanos>>,
}

impl TraceIngest {
    /// Creates an empty ingester.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = NodeId::new(self.names.len() as u32);
        self.names.push(name.to_owned());
        self.ids.insert(name.to_owned(), id);
        id
    }

    /// Adds one record.
    pub fn push(&mut self, record: LogRecord) {
        let src = self.intern(&record.src);
        let dst = self.intern(&record.dst);
        self.edges.entry((src, dst)).or_default().push(record.at);
    }

    /// Reads `timestamp_ns,src,dst` lines (blank lines and `#` comments
    /// skipped).
    ///
    /// One line buffer is reused for the whole stream and the fields are
    /// parsed as slices of it, so ingesting a multi-gigabyte log allocates
    /// only for names not interned yet — not per line.
    ///
    /// # Errors
    ///
    /// Returns the first malformed line or I/O failure.
    pub fn read_csv<R: BufRead>(&mut self, mut reader: R) -> Result<usize, ParseError> {
        let mut count = 0;
        let mut buf = String::new();
        let mut lineno = 0;
        loop {
            buf.clear();
            let n = reader
                .read_line(&mut buf)
                .map_err(|e| ParseError::Io(e.to_string()))?;
            if n == 0 {
                return Ok(count);
            }
            lineno += 1;
            let line = buf.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.splitn(3, ',');
            let (Some(ts), Some(src), Some(dst)) = (fields.next(), fields.next(), fields.next())
            else {
                return Err(ParseError::BadFieldCount { line: lineno });
            };
            let (src, dst) = (src.trim(), dst.trim());
            if src.is_empty() || dst.is_empty() {
                return Err(ParseError::BadFieldCount { line: lineno });
            }
            let at = ts
                .trim()
                .parse::<u64>()
                .map_err(|_| ParseError::BadTimestamp { line: lineno })?;
            let src = self.intern(src);
            let dst = self.intern(dst);
            self.edges
                .entry((src, dst))
                .or_default()
                .push(Nanos::from_nanos(at));
            count += 1;
        }
    }

    /// Number of distinct components seen.
    pub fn num_components(&self) -> usize {
        self.names.len()
    }

    /// Number of records ingested.
    pub fn num_records(&self) -> usize {
        self.edges.values().map(Vec::len).sum()
    }

    /// The component labels, indexed by the interned [`NodeId`]s.
    pub fn labels(&self) -> NodeLabels {
        NodeLabels::new(self.names.clone())
    }

    /// Infers analysis roots: components that only ever *send* are
    /// clients; each `(client, first-receiver)` pair is a root.
    ///
    /// This heuristic fits logs that record request traffic at service
    /// components (client-bound responses are then unattributed or
    /// absent). When the log does contain responses to clients — or
    /// whenever the operator simply knows the client set, which the paper
    /// assumes ("known to the front end") — supply roots directly to
    /// [`Pathmap::discover`](crate::Pathmap::discover) instead.
    pub fn infer_roots(&self) -> Vec<(NodeId, NodeId)> {
        let mut receives: BTreeSet<NodeId> = BTreeSet::new();
        for &(_, dst) in self.edges.keys() {
            receives.insert(dst);
        }
        let mut roots: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
        for &(src, dst) in self.edges.keys() {
            if !receives.contains(&src) {
                roots.insert((src, dst));
            }
        }
        roots.into_iter().collect()
    }

    /// The latest record timestamp (the natural `now` for analysis).
    pub fn horizon(&self) -> Nanos {
        self.edges
            .values()
            .flat_map(|v| v.iter().copied())
            .max()
            .unwrap_or(Nanos::ZERO)
    }

    /// Builds edge signals for the most recent fully-materialized window
    /// at `now` (same windowing as
    /// [`EdgeSignals::from_capture`](crate::EdgeSignals::from_capture)).
    pub fn build_signals(&self, cfg: &PathmapConfig, now: Nanos) -> EdgeSignals {
        let quanta = cfg.quanta();
        let max_lag = cfg.max_lag();
        let end = quanta.tick_of(now).saturating_sub(max_lag);
        let start = end.saturating_sub(cfg.window_ticks());
        let y_end = end + max_lag;
        let margin = Nanos::from_nanos(cfg.omega_ticks() * quanta.duration().as_nanos());
        let ts_lo = quanta.instant_of(start).saturating_sub(margin);
        let ts_hi = quanta.instant_of(y_end) + margin;

        let mut signals = HashMap::new();
        for (&edge, stamps) in &self.edges {
            let mut stamps: Vec<Nanos> = stamps
                .iter()
                .copied()
                .filter(|&t| t >= ts_lo && t < ts_hi)
                .collect();
            stamps.sort_unstable();
            let series = DensityEstimator::from_timestamps(quanta, cfg.omega_ticks(), &stamps);
            let clipped = series
                .slice(start.min(series.end()), y_end.min(series.end()).max(start))
                .to_rle();
            signals.insert(edge, clipped);
        }
        EdgeSignals::from_parts(quanta, (start, end), max_lag, signals)
    }
}

impl Extend<LogRecord> for TraceIngest {
    fn extend<T: IntoIterator<Item = LogRecord>>(&mut self, iter: T) {
        for r in iter {
            self.push(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathmap::Pathmap;

    fn record(ms: u64, src: &str, dst: &str) -> LogRecord {
        LogRecord {
            at: Nanos::from_millis(ms),
            src: src.into(),
            dst: dst.into(),
        }
    }

    #[test]
    fn interning_is_stable_first_seen() {
        let mut ing = TraceIngest::new();
        ing.push(record(1, "a", "b"));
        ing.push(record(2, "b", "c"));
        ing.push(record(3, "a", "b"));
        assert_eq!(ing.num_components(), 3);
        assert_eq!(ing.labels().label(NodeId::new(0)), "a");
        assert_eq!(ing.labels().label(NodeId::new(2)), "c");
        assert_eq!(ing.num_records(), 3);
    }

    #[test]
    fn csv_parses_and_skips_comments() {
        let log = "# header\n100,a,b\n\n200, b , c\n";
        let mut ing = TraceIngest::new();
        assert_eq!(ing.read_csv(log.as_bytes()).unwrap(), 2);
        assert_eq!(ing.num_components(), 3);
        assert_eq!(ing.horizon(), Nanos::from_nanos(200));
    }

    #[test]
    fn csv_rejects_malformed_lines() {
        let mut ing = TraceIngest::new();
        assert_eq!(
            ing.read_csv("100,a".as_bytes()),
            Err(ParseError::BadFieldCount { line: 1 })
        );
        assert_eq!(
            ing.read_csv("x,a,b".as_bytes()),
            Err(ParseError::BadTimestamp { line: 1 })
        );
        assert_eq!(
            ing.read_csv("100,,b".as_bytes()),
            Err(ParseError::BadFieldCount { line: 1 })
        );
    }

    #[test]
    fn csv_errors_report_physical_line_numbers() {
        // Skipped comment and blank lines still advance the line counter.
        let mut ing = TraceIngest::new();
        assert_eq!(
            ing.read_csv("# header\n\n100,a,b\nbogus,a,b\n".as_bytes()),
            Err(ParseError::BadTimestamp { line: 4 })
        );
    }

    #[test]
    fn roots_are_send_only_components() {
        let mut ing = TraceIngest::new();
        ing.push(record(1, "client", "web"));
        ing.push(record(2, "web", "db"));
        ing.push(record(3, "db", "web"));
        ing.push(record(4, "web", "client")); // client receives: still a root
        let roots = ing.infer_roots();
        // "client" receives the response, so strictly it is not
        // send-only... unless responses to clients are in the log. Check
        // the documented semantics: with the response logged, no root.
        assert!(roots.is_empty());

        // Without client-bound responses in the log, the root is found.
        let mut ing = TraceIngest::new();
        ing.push(record(1, "client", "web"));
        ing.push(record(2, "web", "db"));
        ing.push(record(3, "db", "web"));
        let roots = ing.infer_roots();
        assert_eq!(roots.len(), 1);
        let labels = ing.labels();
        assert_eq!(labels.label(roots[0].0), "client");
        assert_eq!(labels.label(roots[0].1), "web");
    }

    #[test]
    fn end_to_end_discovery_from_a_synthetic_log() {
        // Write a log for a two-tier system: requests every ~20ms with a
        // 5ms hop to the db and a 5ms response.
        let mut ing = TraceIngest::new();
        let mut t = 0u64;
        let mut hash = 12345u64;
        for _ in 0..2000 {
            hash = hash.wrapping_mul(6364136223846793005).wrapping_add(1);
            t += 10 + hash % 20; // irregular arrivals
            ing.push(record(t, "client", "web"));
            ing.push(record(t + 5, "web", "db"));
            ing.push(record(t + 10, "db", "web"));
        }
        let cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_secs(1))
            .build();
        let signals = ing.build_signals(&cfg, ing.horizon());
        let labels = ing.labels();
        let graphs = Pathmap::new(cfg).discover(&signals, &ing.infer_roots(), &labels);
        assert_eq!(graphs.len(), 1);
        let g = &graphs[0];
        assert!(g.has_edge_between("web", "db"), "{g}");
        assert!(g.has_edge_between("db", "web"), "{g}");
        let hop = g
            .edge(labels.id_of("web").unwrap(), labels.id_of("db").unwrap())
            .unwrap();
        let min = hop.min_delay().unwrap().as_millis_f64();
        assert!((3.0..8.0).contains(&min), "web->db at {min}ms");
    }
}
