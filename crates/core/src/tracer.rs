//! Node-side tracer agents — the userspace analogue of the paper's
//! `tracer` kernel module.
//!
//! Each service node runs an agent that (1) taps the node's packet capture,
//! (2) converts message timestamps into the density time series on the
//! node itself (offloading the central analyzer, Section 3.6), (3)
//! run-length-encodes the series, and (4) streams wire-encoded chunks to
//! the analyzer every `ΔW`.
//!
//! Signal ownership follows the paper's conventions: a node streams the
//! *receiver-side* series of every edge arriving at it, plus the
//! *sender-side* series of its edges toward (untraced) client nodes.

use crate::config::{PathmapConfig, WireVersion};
use crate::hashing::FxHashMap;
use crate::reduction::{effective_levels, HintState};
use bytes::Bytes;
use crossbeam::channel::Sender;
use e2eprof_netsim::capture::TraceKey;
use e2eprof_netsim::{CaptureStore, NodeId};
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{pyramid, wire, Nanos, RleSeries, Tick};
use std::collections::HashSet;

/// One message on the tracer→analyzer channel.
#[derive(Debug, Clone, PartialEq)]
pub enum TracerFrame {
    /// Wire-v1: one edge's RLE density chunk over `[previous drain tick,
    /// drain tick)`, encoded with [`wire::encode`].
    Series {
        /// The directed edge the series describes.
        edge: (NodeId, NodeId),
        /// Wire-encoded [`RleSeries`].
        payload: Bytes,
    },
    /// Wire-v2: every series one agent owns for one flush, batch-encoded
    /// with [`wire::encode_batch`] — the edges travel in-band as node
    /// indices.
    Batch {
        /// Wire-encoded batch frame.
        payload: Bytes,
    },
    /// Promote-triggered backfill: the retained fine window of an edge that
    /// just left decimation, batch-encoded like [`TracerFrame::Batch`]. The
    /// analyzer ingests it exactly like a batch; the distinct variant lets
    /// the transport and diagnostics tell warm-up traffic from steady-state
    /// streaming.
    Backfill {
        /// Wire-encoded batch frame carrying the fine retention window.
        payload: Bytes,
    },
}

/// Where a tracer agent delivers its frames.
///
/// The in-process pipeline uses a channel ([`ChannelSink`]); the network
/// transport plugs in a socket-backed link. Either way the agent's
/// capture loop never blocks on a slow consumer: a sink under
/// backpressure admits the new frame and reports how many *older* queued
/// frames it evicted to make room.
pub trait FrameSink: Send {
    /// Delivers one frame. Returns the number of previously queued frames
    /// dropped under backpressure to admit it (0 when nothing was lost).
    fn send_frame(&mut self, frame: TracerFrame) -> u64;

    /// Tells the sink which directed edges (as node-index pairs) this
    /// agent owns — transport sinks forward the set to their broker; the
    /// in-process sink has no use for it.
    fn announce(&mut self, edges: &[(u32, u32)]) {
        let _ = edges;
    }
}

/// The in-process [`FrameSink`]: an unbounded channel straight into the
/// analyzer. Never drops; a disconnected receiver discards frames (the
/// tracer must not crash the node it runs on) without counting them as
/// backpressure drops.
#[derive(Debug, Clone)]
pub struct ChannelSink(pub Sender<TracerFrame>);

impl FrameSink for ChannelSink {
    fn send_frame(&mut self, frame: TracerFrame) -> u64 {
        let _ = self.0.send(frame);
        0
    }
}

/// What one [`TracerAgent::poll`] did at the sink boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollOutcome {
    /// Every frame emitted this poll was admitted without loss; the
    /// payload is the number of frames handed to the sink.
    Sent(usize),
    /// The sink evicted this many older queued frames under backpressure
    /// while admitting this poll's output.
    Dropped(u64),
}

/// Sentinel for [`StreamState::coarse_sent`]: no coarse block shipped yet
/// since this stream was last demoted.
const COARSE_UNSET: u64 = u64::MAX;

#[derive(Debug)]
struct StreamState {
    estimator: DensityEstimator,
    cursor: usize,
    drained_to: Tick,
    /// Effective decimation level from the latest analyzer hints: 0 means
    /// full resolution, `k ≥ 2` means ship √(count)-amplitude blocks of
    /// `k` fine ticks.
    level: u64,
    /// Contiguous fine runs retained while demoted, bounded to the
    /// retention span — the payload of a promote-triggered backfill.
    ring: Option<RleSeries>,
    /// Fine-tick watermark (block aligned) up to which coarse blocks have
    /// been shipped; [`COARSE_UNSET`] right after a demotion.
    coarse_sent: u64,
}

/// A tracer agent for one service node.
pub struct TracerAgent {
    node: NodeId,
    clients: HashSet<NodeId>,
    config: PathmapConfig,
    streams: FxHashMap<TraceKey, StreamState>,
    sink: Box<dyn FrameSink>,
    /// Wire-encoding buffer reused across frames; each poll encodes into
    /// it and ships an exact-size copy, so the agent's per-frame cost does
    /// not include growing a fresh vector.
    frame_buf: Vec<u8>,
    /// The edge set last announced to the sink (as node-index pairs).
    announced: Vec<(u32, u32)>,
    /// Frames handed to the sink over the agent's lifetime.
    frames_emitted: u64,
    /// Older frames the sink reported evicted under backpressure.
    frames_dropped: u64,
    /// Latest reduction snapshot per analyzer shard.
    hints: FxHashMap<u32, HintState>,
    /// Per-edge decimation levels merged from `hints`.
    levels: FxHashMap<(u32, u32), u64>,
    /// Backfill frames emitted on promote transitions.
    backfills_emitted: u64,
}

impl std::fmt::Debug for TracerAgent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TracerAgent")
            .field("node", &self.node)
            .field("streams", &self.streams.len())
            .field("frames_emitted", &self.frames_emitted)
            .field("frames_dropped", &self.frames_dropped)
            .finish_non_exhaustive()
    }
}

impl TracerAgent {
    /// Creates an agent for `node` delivering over an in-process channel.
    /// `clients` are the untraced client nodes (the agent streams
    /// sender-side series for edges toward them).
    pub fn new(
        node: NodeId,
        clients: HashSet<NodeId>,
        config: PathmapConfig,
        tx: Sender<TracerFrame>,
    ) -> Self {
        TracerAgent::with_sink(node, clients, config, Box::new(ChannelSink(tx)))
    }

    /// Creates an agent delivering through an arbitrary [`FrameSink`] —
    /// the hook the network transport uses.
    pub fn with_sink(
        node: NodeId,
        clients: HashSet<NodeId>,
        config: PathmapConfig,
        sink: Box<dyn FrameSink>,
    ) -> Self {
        TracerAgent {
            node,
            clients,
            config,
            streams: FxHashMap::default(),
            sink,
            frame_buf: Vec::new(),
            announced: Vec::new(),
            frames_emitted: 0,
            frames_dropped: 0,
            hints: FxHashMap::default(),
            levels: FxHashMap::default(),
            backfills_emitted: 0,
        }
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Frames handed to the sink over the agent's lifetime.
    pub fn frames_emitted(&self) -> u64 {
        self.frames_emitted
    }

    /// Older queued frames the sink reported dropped under backpressure.
    pub fn frames_dropped(&self) -> u64 {
        self.frames_dropped
    }

    /// Backfill frames emitted on promote transitions over the agent's
    /// lifetime.
    pub fn backfills_emitted(&self) -> u64 {
        self.backfills_emitted
    }

    /// The effective decimation level this agent currently applies to
    /// `edge` (node-index pair): 0 = full resolution.
    pub fn effective_level(&self, edge: (u32, u32)) -> u64 {
        self.levels.get(&edge).copied().unwrap_or(0)
    }

    /// Fine ticks the retention ring spans: one analysis window plus the
    /// lag horizon, plus two refresh intervals of slack so the unshipped
    /// coarse tail never falls off before it is decimated.
    fn retention_ticks(&self) -> u64 {
        self.config.window_ticks() + self.config.max_lag() + 2 * self.config.refresh_ticks()
    }

    /// Applies one analyzer shard's reduction snapshot.
    ///
    /// Stores the snapshot (replacing this shard's previous one), merges
    /// all shards' snapshots into per-edge effective levels, and
    /// reconciles every live stream:
    ///
    /// * fine → demoted: the stream starts retaining fine runs and ships
    ///   only coarse blocks from the next [`poll`](TracerAgent::poll) on;
    /// * demoted → fine (*promote*): the retained fine window is shipped
    ///   immediately as one [`TracerFrame::Backfill`] so the analyzer's
    ///   fine correlator warms without waiting a full window;
    /// * level change while demoted: the coarse watermark realigns to the
    ///   new block size (the analyzer resets its coarse window on a level
    ///   mismatch anyway).
    ///
    /// Snapshots are full-state and idempotent — replaying the latest one
    /// after a reconnect converges to the same levels and emits no
    /// duplicate backfills.
    pub fn apply_hint_state(&mut self, state: &HintState) {
        self.hints.insert(state.shard, state.clone());
        self.levels = effective_levels(&self.hints);
        let mut emitted = 0u64;
        let mut dropped = 0u64;
        for (key, st) in self.streams.iter_mut() {
            let edge = (key.src.index() as u32, key.dst.index() as u32);
            let new_level = self.levels.get(&edge).copied().unwrap_or(0);
            if new_level == st.level {
                continue;
            }
            if new_level == 0 {
                // Promote: backfill the retained fine window, resume fine.
                if let Some(ring) = st.ring.take() {
                    if ring.support() > 0 {
                        let batch = [(edge, ring)];
                        wire::encode_batch_into(&batch, true, &mut self.frame_buf);
                        dropped += self.sink.send_frame(TracerFrame::Backfill {
                            payload: Bytes::copy_from_slice(&self.frame_buf),
                        });
                        emitted += 1;
                        self.backfills_emitted += 1;
                    }
                }
                st.coarse_sent = COARSE_UNSET;
            } else if st.level == 0 {
                // Fresh demotion: start retaining from the next poll.
                st.ring = None;
                st.coarse_sent = COARSE_UNSET;
            } else {
                // Demoted at a different factor: realign the watermark up
                // to the new block size; the skipped partial block is
                // never shipped mis-summed.
                if st.coarse_sent != COARSE_UNSET {
                    st.coarse_sent = st.coarse_sent.div_ceil(new_level) * new_level;
                }
            }
            st.level = new_level;
        }
        self.frames_emitted += emitted;
        self.frames_dropped += dropped;
    }

    /// Streams all series this agent owns up to tick `drain_to`.
    ///
    /// The caller guarantees that `capture` already contains every record
    /// this node will ever produce with local timestamp below
    /// `drain_to·τ + ω/2` (in practice: poll with `drain_to` at least
    /// `ω + max clock error` behind the current time).
    ///
    /// Every owned stream emits a frame per poll — possibly an empty chunk
    /// — so the analyzer's sliding windows stay contiguous.
    ///
    /// The returned [`PollOutcome`] surfaces what happened at the sink
    /// boundary: [`Sent`](PollOutcome::Sent) when every emitted frame was
    /// admitted losslessly, [`Dropped`](PollOutcome::Dropped) when the
    /// sink evicted older queued frames under backpressure. Drops also
    /// accumulate in [`frames_dropped`](TracerAgent::frames_dropped) —
    /// backpressure is observable, never silent.
    pub fn poll(&mut self, capture: &CaptureStore, drain_to: Tick) -> PollOutcome {
        // Discover streams this node owns.
        let mut owned: Vec<TraceKey> = Vec::new();
        for (src, dst) in capture.edges() {
            if dst == self.node {
                owned.push(TraceKey::at_receiver(src, dst));
            } else if src == self.node && self.clients.contains(&dst) {
                owned.push(TraceKey::at_sender(src, dst));
            }
        }
        owned.sort_unstable();
        let owned_edges: Vec<(u32, u32)> = owned
            .iter()
            .map(|k| (k.src.index() as u32, k.dst.index() as u32))
            .collect();
        if owned_edges != self.announced {
            self.sink.announce(&owned_edges);
            self.announced = owned_edges;
        }
        let mut emitted = 0usize;
        let mut dropped = 0u64;

        let quanta = self.config.quanta();
        let omega = self.config.omega_ticks();
        let horizon = Nanos::from_nanos(
            drain_to.index() * quanta.duration().as_nanos()
                + omega * quanta.duration().as_nanos() / 2,
        );
        let batched = self.config.wire() == WireVersion::V2;
        let reduction = self.config.reduction().is_some();
        let retention = self.retention_ticks();
        let mut batch: Vec<((u32, u32), RleSeries)> = Vec::new();
        let mut leveled: Vec<((u32, u32), u64, RleSeries)> = Vec::new();
        for key in owned {
            let edge = (key.src.index() as u32, key.dst.index() as u32);
            let initial_level = if reduction {
                self.levels.get(&edge).copied().unwrap_or(0)
            } else {
                0
            };
            let state = self.streams.entry(key).or_insert_with(|| StreamState {
                estimator: DensityEstimator::new(quanta, omega),
                cursor: 0,
                drained_to: Tick::ZERO,
                level: initial_level,
                ring: None,
                coarse_sent: COARSE_UNSET,
            });
            if drain_to <= state.drained_to && state.drained_to > Tick::ZERO {
                continue; // nothing new to drain for this stream
            }
            let new = capture.timestamps_since(key, state.cursor);
            let mut pushed = 0;
            for &ts in new {
                if ts >= horizon {
                    break;
                }
                state.estimator.push(ts);
                pushed += 1;
            }
            state.cursor += pushed;
            let chunk = state.estimator.drain_chunk(drain_to);
            state.drained_to = drain_to;
            if reduction && state.level > 0 {
                // Demoted: retain the fine chunk locally, ship only the
                // newly completed coarse blocks (if any are non-zero).
                let fine = chunk.to_rle();
                match &mut state.ring {
                    Some(ring) => ring.append_chunk(&fine),
                    None => state.ring = Some(fine),
                }
                let ring = state.ring.as_mut().expect("ring populated above");
                if ring.len() > retention {
                    let end = ring.end();
                    *ring = ring.slice(Tick::new(end.index() - retention), end);
                }
                let level = state.level;
                if state.coarse_sent == COARSE_UNSET || state.coarse_sent < ring.start().index() {
                    // Align up: a partial first block is skipped rather
                    // than shipped under-counted.
                    state.coarse_sent = ring.start().index().div_ceil(level) * level;
                }
                let complete_end = (drain_to.index() / level) * level;
                if complete_end > state.coarse_sent {
                    let fine_slice =
                        ring.slice(Tick::new(state.coarse_sent), Tick::new(complete_end));
                    state.coarse_sent = complete_end;
                    let coarse = pyramid::decimate_counts(&fine_slice, level);
                    // All-zero coarse chunks are suppressed outright; the
                    // analyzer's coarse store heals the gap by resetting.
                    if coarse.support() > 0 {
                        leveled.push((edge, level, coarse));
                    }
                }
                continue;
            }
            if batched {
                if reduction {
                    leveled.push((edge, 0, chunk.to_rle()));
                } else {
                    batch.push((edge, chunk.to_rle()));
                }
                continue;
            }
            wire::encode_into(&chunk.to_rle(), &mut self.frame_buf);
            let frame = TracerFrame::Series {
                edge: (key.src, key.dst),
                payload: Bytes::copy_from_slice(&self.frame_buf),
            };
            dropped += self.sink.send_frame(frame);
            emitted += 1;
        }
        if !batch.is_empty() {
            // One frame — and one allocation — per flush, not per edge.
            // Density amplitudes are √count, so the integer-amplitude
            // encoding is lossless here.
            wire::encode_batch_into(&batch, true, &mut self.frame_buf);
            dropped += self.sink.send_frame(TracerFrame::Batch {
                payload: Bytes::copy_from_slice(&self.frame_buf),
            });
            emitted += 1;
        }
        if !leveled.is_empty() {
            // Reduction path: fine (level 0) and coarse entries share one
            // level-tagged batch frame. Coarse amplitudes are √(block
            // count), so integer-amplitude coding stays lossless.
            wire::encode_batch_leveled_into(&leveled, true, &mut self.frame_buf);
            dropped += self.sink.send_frame(TracerFrame::Batch {
                payload: Bytes::copy_from_slice(&self.frame_buf),
            });
            emitted += 1;
        }
        self.frames_emitted += emitted as u64;
        self.frames_dropped += dropped;
        if dropped > 0 {
            PollOutcome::Dropped(dropped)
        } else {
            PollOutcome::Sent(emitted)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;
    use e2eprof_timeseries::RleSeries;
    use std::collections::HashMap;

    fn cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .build()
    }

    fn two_tier(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
        let cli = t.client("cli", class, web, Workload::poisson(40.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    /// Decodes a frame of either wire version into `(edge, chunk)` pairs.
    fn decode_frame(frame: &TracerFrame) -> Vec<((NodeId, NodeId), RleSeries)> {
        match frame {
            TracerFrame::Series { edge, payload } => {
                vec![(*edge, wire::decode(payload).expect("decodable frame"))]
            }
            TracerFrame::Batch { payload } | TracerFrame::Backfill { payload } => {
                wire::decode_batch(payload)
                    .expect("decodable batch frame")
                    .into_iter()
                    .map(|((src, dst), chunk)| ((NodeId::new(src), NodeId::new(dst)), chunk))
                    .collect()
            }
        }
    }

    #[test]
    fn agent_streams_owned_edges_only() {
        let mut sim = two_tier(1);
        sim.run_until(Nanos::from_secs(5));
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let mut agent = TracerAgent::new(web, HashSet::from([cli]), cfg(), tx);
        agent.poll(sim.captures(), Tick::new(4_000));
        let frames: Vec<TracerFrame> = rx.try_iter().collect();
        let mut edges: Vec<(NodeId, NodeId)> = frames
            .iter()
            .flat_map(decode_frame)
            .map(|(edge, _)| edge)
            .collect();
        edges.sort_unstable();
        // web owns: cli->web (recv), db->web (recv), web->cli (send).
        let db = NodeId::new(1);
        assert_eq!(edges, vec![(web, cli), (db, web), (cli, web)]);
    }

    #[test]
    fn chunks_are_contiguous_and_decodable() {
        let mut sim = two_tier(2);
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let mut agent = TracerAgent::new(web, HashSet::from([cli]), cfg(), tx);
        let mut assembled: HashMap<(NodeId, NodeId), RleSeries> = HashMap::new();
        for step in 1..=5u64 {
            sim.run_until(Nanos::from_secs(step * 2));
            // Drain 1s behind the simulation clock (≫ ω = 50 ms).
            agent.poll(sim.captures(), Tick::new(step * 2_000 - 1_000));
            for frame in rx.try_iter() {
                for (edge, chunk) in decode_frame(&frame) {
                    match assembled.get_mut(&edge) {
                        None => {
                            assembled.insert(edge, chunk);
                        }
                        Some(series) => series.append_chunk(&chunk), // panics if gap
                    }
                }
            }
        }
        let db = NodeId::new(1);
        let series = &assembled[&(cli, web)];
        assert_eq!(series.end(), Tick::new(9_000));
        assert!(series.support() > 0, "client arrivals must show up");
        assert!(assembled.contains_key(&(db, web)));
    }

    #[test]
    fn v2_poll_coalesces_all_owned_edges_into_one_batch_frame() {
        let poll = |config: PathmapConfig| {
            let mut sim = two_tier(6);
            sim.run_until(Nanos::from_secs(5));
            let (tx, rx) = unbounded();
            let web = NodeId::new(0);
            let cli = NodeId::new(2);
            let mut agent = TracerAgent::new(web, HashSet::from([cli]), config, tx);
            agent.poll(sim.captures(), Tick::new(4_000));
            rx.try_iter().collect::<Vec<TracerFrame>>()
        };
        let v1 = poll(cfg());
        let v2 = poll(
            PathmapConfig::builder()
                .window(Nanos::from_secs(10))
                .refresh(Nanos::from_secs(2))
                .max_delay(Nanos::from_secs(1))
                .wire(WireVersion::V2)
                .build(),
        );
        assert_eq!(v1.len(), 3, "v1 ships one frame per owned edge");
        assert_eq!(v2.len(), 1, "v2 coalesces the flush into one frame");
        assert!(matches!(v2[0], TracerFrame::Batch { .. }));
        // The batch carries the same series, bit-for-bit.
        let sort = |mut v: Vec<((NodeId, NodeId), RleSeries)>| {
            v.sort_by_key(|&(edge, _)| edge);
            v
        };
        let from_v1 = sort(v1.iter().flat_map(decode_frame).collect());
        let from_v2 = sort(decode_frame(&v2[0]));
        assert_eq!(from_v1, from_v2);
    }

    #[test]
    fn repeated_poll_at_same_tick_is_idempotent() {
        let mut sim = two_tier(3);
        sim.run_until(Nanos::from_secs(4));
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let mut agent = TracerAgent::new(web, HashSet::new(), cfg(), tx);
        agent.poll(sim.captures(), Tick::new(3_000));
        let first: Vec<_> = rx.try_iter().collect();
        agent.poll(sim.captures(), Tick::new(3_000));
        let second: Vec<_> = rx.try_iter().collect();
        assert!(!first.is_empty());
        assert!(second.is_empty(), "no duplicate frames for the same tick");
    }

    #[test]
    fn dropped_receiver_does_not_panic() {
        let mut sim = two_tier(4);
        sim.run_until(Nanos::from_secs(3));
        let (tx, rx) = unbounded();
        drop(rx);
        let web = NodeId::new(0);
        let mut agent = TracerAgent::new(web, HashSet::new(), cfg(), tx);
        agent.poll(sim.captures(), Tick::new(2_000)); // must not panic
    }

    /// A sink holding at most one frame: every admission past the first
    /// evicts the queued frame — the smallest honest backpressure model.
    struct OneSlotSink {
        queued: bool,
    }

    impl FrameSink for OneSlotSink {
        fn send_frame(&mut self, _frame: TracerFrame) -> u64 {
            let dropped = u64::from(self.queued);
            self.queued = true;
            dropped
        }
    }

    #[test]
    fn poll_surfaces_backpressure_drops_in_outcome_and_counters() {
        // Regression: poll used to `let _ =` the send, so a slow consumer
        // lost frames invisibly. Now the outcome and the agent counters
        // must both record every eviction.
        let mut sim = two_tier(8);
        sim.run_until(Nanos::from_secs(5));
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let mut agent = TracerAgent::with_sink(
            web,
            HashSet::from([cli]),
            cfg(),
            Box::new(OneSlotSink { queued: false }),
        );
        // web owns three edge streams, so one v1 poll emits three frames
        // into a one-slot sink: two evictions.
        let outcome = agent.poll(sim.captures(), Tick::new(4_000));
        assert_eq!(outcome, PollOutcome::Dropped(2));
        assert_eq!(agent.frames_emitted(), 3);
        assert_eq!(agent.frames_dropped(), 2);
    }

    #[test]
    fn lossless_poll_reports_sent_count() {
        let mut sim = two_tier(8);
        sim.run_until(Nanos::from_secs(5));
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let mut agent = TracerAgent::new(web, HashSet::from([cli]), cfg(), tx);
        let outcome = agent.poll(sim.captures(), Tick::new(4_000));
        assert_eq!(outcome, PollOutcome::Sent(3));
        assert_eq!(agent.frames_dropped(), 0);
        assert_eq!(rx.try_iter().count(), 3);
    }

    /// Records announced edge sets for assertion.
    type AnnounceLog = std::sync::Arc<std::sync::Mutex<Vec<Vec<(u32, u32)>>>>;
    struct AnnounceProbe(AnnounceLog);

    impl FrameSink for AnnounceProbe {
        fn send_frame(&mut self, _frame: TracerFrame) -> u64 {
            0
        }

        fn announce(&mut self, edges: &[(u32, u32)]) {
            self.0.lock().expect("probe lock").push(edges.to_vec());
        }
    }

    #[test]
    fn agent_announces_owned_edges_once_until_they_change() {
        let mut sim = two_tier(8);
        sim.run_until(Nanos::from_secs(5));
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let log = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let mut agent = TracerAgent::with_sink(
            web,
            HashSet::from([cli]),
            cfg(),
            Box::new(AnnounceProbe(log.clone())),
        );
        agent.poll(sim.captures(), Tick::new(3_000));
        agent.poll(sim.captures(), Tick::new(4_000));
        let announces = log.lock().expect("probe lock").clone();
        assert_eq!(announces.len(), 1, "stable edge set announced once");
        // web's owned streams: web->cli (send), db->web and cli->web (recv).
        assert_eq!(announces[0], vec![(0, 2), (1, 0), (2, 0)]);
    }
}
