//! Node-side tracer agents — the userspace analogue of the paper's
//! `tracer` kernel module.
//!
//! Each service node runs an agent that (1) taps the node's packet capture,
//! (2) converts message timestamps into the density time series on the
//! node itself (offloading the central analyzer, Section 3.6), (3)
//! run-length-encodes the series, and (4) streams wire-encoded chunks to
//! the analyzer every `ΔW`.
//!
//! Signal ownership follows the paper's conventions: a node streams the
//! *receiver-side* series of every edge arriving at it, plus the
//! *sender-side* series of its edges toward (untraced) client nodes.

use crate::config::{PathmapConfig, WireVersion};
use crate::hashing::FxHashMap;
use bytes::Bytes;
use crossbeam::channel::Sender;
use e2eprof_netsim::capture::TraceKey;
use e2eprof_netsim::{CaptureStore, NodeId};
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{wire, Nanos, RleSeries, Tick};
use std::collections::HashSet;

/// One message on the tracer→analyzer channel.
#[derive(Debug, Clone, PartialEq)]
pub enum TracerFrame {
    /// Wire-v1: one edge's RLE density chunk over `[previous drain tick,
    /// drain tick)`, encoded with [`wire::encode`].
    Series {
        /// The directed edge the series describes.
        edge: (NodeId, NodeId),
        /// Wire-encoded [`RleSeries`].
        payload: Bytes,
    },
    /// Wire-v2: every series one agent owns for one flush, batch-encoded
    /// with [`wire::encode_batch`] — the edges travel in-band as node
    /// indices.
    Batch {
        /// Wire-encoded batch frame.
        payload: Bytes,
    },
}

#[derive(Debug)]
struct StreamState {
    estimator: DensityEstimator,
    cursor: usize,
    drained_to: Tick,
}

/// A tracer agent for one service node.
#[derive(Debug)]
pub struct TracerAgent {
    node: NodeId,
    clients: HashSet<NodeId>,
    config: PathmapConfig,
    streams: FxHashMap<TraceKey, StreamState>,
    tx: Sender<TracerFrame>,
    /// Wire-encoding buffer reused across frames; each poll encodes into
    /// it and ships an exact-size copy, so the agent's per-frame cost does
    /// not include growing a fresh vector.
    frame_buf: Vec<u8>,
}

impl TracerAgent {
    /// Creates an agent for `node`. `clients` are the untraced client
    /// nodes (the agent streams sender-side series for edges toward them).
    pub fn new(
        node: NodeId,
        clients: HashSet<NodeId>,
        config: PathmapConfig,
        tx: Sender<TracerFrame>,
    ) -> Self {
        TracerAgent {
            node,
            clients,
            config,
            streams: FxHashMap::default(),
            tx,
            frame_buf: Vec::new(),
        }
    }

    /// The node this agent runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Streams all series this agent owns up to tick `drain_to`.
    ///
    /// The caller guarantees that `capture` already contains every record
    /// this node will ever produce with local timestamp below
    /// `drain_to·τ + ω/2` (in practice: poll with `drain_to` at least
    /// `ω + max clock error` behind the current time).
    ///
    /// Every owned stream emits a frame per poll — possibly an empty chunk
    /// — so the analyzer's sliding windows stay contiguous.
    pub fn poll(&mut self, capture: &CaptureStore, drain_to: Tick) {
        // Discover streams this node owns.
        let mut owned: Vec<TraceKey> = Vec::new();
        for (src, dst) in capture.edges() {
            if dst == self.node {
                owned.push(TraceKey::at_receiver(src, dst));
            } else if src == self.node && self.clients.contains(&dst) {
                owned.push(TraceKey::at_sender(src, dst));
            }
        }
        owned.sort_unstable();

        let quanta = self.config.quanta();
        let omega = self.config.omega_ticks();
        let horizon = Nanos::from_nanos(
            drain_to.index() * quanta.duration().as_nanos()
                + omega * quanta.duration().as_nanos() / 2,
        );
        let batched = self.config.wire() == WireVersion::V2;
        let mut batch: Vec<((u32, u32), RleSeries)> = Vec::new();
        for key in owned {
            let state = self.streams.entry(key).or_insert_with(|| StreamState {
                estimator: DensityEstimator::new(quanta, omega),
                cursor: 0,
                drained_to: Tick::ZERO,
            });
            if drain_to <= state.drained_to && state.drained_to > Tick::ZERO {
                continue; // nothing new to drain for this stream
            }
            let new = capture.timestamps_since(key, state.cursor);
            let mut pushed = 0;
            for &ts in new {
                if ts >= horizon {
                    break;
                }
                state.estimator.push(ts);
                pushed += 1;
            }
            state.cursor += pushed;
            let chunk = state.estimator.drain_chunk(drain_to);
            state.drained_to = drain_to;
            if batched {
                let edge = (key.src.index() as u32, key.dst.index() as u32);
                batch.push((edge, chunk.to_rle()));
                continue;
            }
            wire::encode_into(&chunk.to_rle(), &mut self.frame_buf);
            let frame = TracerFrame::Series {
                edge: (key.src, key.dst),
                payload: Bytes::copy_from_slice(&self.frame_buf),
            };
            // A disconnected analyzer just means the frame is dropped;
            // tracers must not crash the node they run on.
            let _ = self.tx.send(frame);
        }
        if !batch.is_empty() {
            // One frame — and one allocation — per flush, not per edge.
            // Density amplitudes are √count, so the integer-amplitude
            // encoding is lossless here.
            wire::encode_batch_into(&batch, true, &mut self.frame_buf);
            let _ = self.tx.send(TracerFrame::Batch {
                payload: Bytes::copy_from_slice(&self.frame_buf),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::unbounded;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;
    use e2eprof_timeseries::RleSeries;
    use std::collections::HashMap;

    fn cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .build()
    }

    fn two_tier(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
        let cli = t.client("cli", class, web, Workload::poisson(40.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    /// Decodes a frame of either wire version into `(edge, chunk)` pairs.
    fn decode_frame(frame: &TracerFrame) -> Vec<((NodeId, NodeId), RleSeries)> {
        match frame {
            TracerFrame::Series { edge, payload } => {
                vec![(*edge, wire::decode(payload).expect("decodable frame"))]
            }
            TracerFrame::Batch { payload } => wire::decode_batch(payload)
                .expect("decodable batch frame")
                .into_iter()
                .map(|((src, dst), chunk)| ((NodeId::new(src), NodeId::new(dst)), chunk))
                .collect(),
        }
    }

    #[test]
    fn agent_streams_owned_edges_only() {
        let mut sim = two_tier(1);
        sim.run_until(Nanos::from_secs(5));
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let mut agent = TracerAgent::new(web, HashSet::from([cli]), cfg(), tx);
        agent.poll(sim.captures(), Tick::new(4_000));
        let frames: Vec<TracerFrame> = rx.try_iter().collect();
        let mut edges: Vec<(NodeId, NodeId)> = frames
            .iter()
            .flat_map(decode_frame)
            .map(|(edge, _)| edge)
            .collect();
        edges.sort_unstable();
        // web owns: cli->web (recv), db->web (recv), web->cli (send).
        let db = NodeId::new(1);
        assert_eq!(edges, vec![(web, cli), (db, web), (cli, web)]);
    }

    #[test]
    fn chunks_are_contiguous_and_decodable() {
        let mut sim = two_tier(2);
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let cli = NodeId::new(2);
        let mut agent = TracerAgent::new(web, HashSet::from([cli]), cfg(), tx);
        let mut assembled: HashMap<(NodeId, NodeId), RleSeries> = HashMap::new();
        for step in 1..=5u64 {
            sim.run_until(Nanos::from_secs(step * 2));
            // Drain 1s behind the simulation clock (≫ ω = 50 ms).
            agent.poll(sim.captures(), Tick::new(step * 2_000 - 1_000));
            for frame in rx.try_iter() {
                for (edge, chunk) in decode_frame(&frame) {
                    match assembled.get_mut(&edge) {
                        None => {
                            assembled.insert(edge, chunk);
                        }
                        Some(series) => series.append_chunk(&chunk), // panics if gap
                    }
                }
            }
        }
        let db = NodeId::new(1);
        let series = &assembled[&(cli, web)];
        assert_eq!(series.end(), Tick::new(9_000));
        assert!(series.support() > 0, "client arrivals must show up");
        assert!(assembled.contains_key(&(db, web)));
    }

    #[test]
    fn v2_poll_coalesces_all_owned_edges_into_one_batch_frame() {
        let poll = |config: PathmapConfig| {
            let mut sim = two_tier(6);
            sim.run_until(Nanos::from_secs(5));
            let (tx, rx) = unbounded();
            let web = NodeId::new(0);
            let cli = NodeId::new(2);
            let mut agent = TracerAgent::new(web, HashSet::from([cli]), config, tx);
            agent.poll(sim.captures(), Tick::new(4_000));
            rx.try_iter().collect::<Vec<TracerFrame>>()
        };
        let v1 = poll(cfg());
        let v2 = poll(
            PathmapConfig::builder()
                .window(Nanos::from_secs(10))
                .refresh(Nanos::from_secs(2))
                .max_delay(Nanos::from_secs(1))
                .wire(WireVersion::V2)
                .build(),
        );
        assert_eq!(v1.len(), 3, "v1 ships one frame per owned edge");
        assert_eq!(v2.len(), 1, "v2 coalesces the flush into one frame");
        assert!(matches!(v2[0], TracerFrame::Batch { .. }));
        // The batch carries the same series, bit-for-bit.
        let sort = |mut v: Vec<((NodeId, NodeId), RleSeries)>| {
            v.sort_by_key(|&(edge, _)| edge);
            v
        };
        let from_v1 = sort(v1.iter().flat_map(decode_frame).collect());
        let from_v2 = sort(decode_frame(&v2[0]));
        assert_eq!(from_v1, from_v2);
    }

    #[test]
    fn repeated_poll_at_same_tick_is_idempotent() {
        let mut sim = two_tier(3);
        sim.run_until(Nanos::from_secs(4));
        let (tx, rx) = unbounded();
        let web = NodeId::new(0);
        let mut agent = TracerAgent::new(web, HashSet::new(), cfg(), tx);
        agent.poll(sim.captures(), Tick::new(3_000));
        let first: Vec<_> = rx.try_iter().collect();
        agent.poll(sim.captures(), Tick::new(3_000));
        let second: Vec<_> = rx.try_iter().collect();
        assert!(!first.is_empty());
        assert!(second.is_empty(), "no duplicate frames for the same tick");
    }

    #[test]
    fn dropped_receiver_does_not_panic() {
        let mut sim = two_tier(4);
        sim.run_until(Nanos::from_secs(3));
        let (tx, rx) = unbounded();
        drop(rx);
        let web = NodeId::new(0);
        let mut agent = TracerAgent::new(web, HashSet::new(), cfg(), tx);
        agent.poll(sim.captures(), Tick::new(2_000)); // must not panic
    }
}
