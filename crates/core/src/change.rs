//! Per-edge delay histories across refreshes — change detection (Fig. 7).
//!
//! One goal of online service-path analysis is detecting *changes* in path
//! performance: not just cumulative end-to-end delays but per-edge
//! fluctuations, for isolating bottlenecks, re-routing traffic, and
//! debugging anomalies. The tracker records each edge's hop delay at every
//! refresh and reports jumps exceeding a threshold.

use crate::graph::ServiceGraph;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::Nanos;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// One recorded observation of an edge's hop delay.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayPoint {
    /// When the refresh happened.
    pub at: Nanos,
    /// The edge's per-hop delay at that refresh.
    pub delay: Nanos,
}

/// A detected change: the hop delay jumped between consecutive refreshes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChangePoint {
    /// When the new delay was first observed.
    pub at: Nanos,
    /// The delay before the jump.
    pub before: Nanos,
    /// The delay after the jump.
    pub after: Nanos,
}

/// Records per-`(client, edge)` hop-delay histories across refreshes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ChangeTracker {
    history: BTreeMap<(NodeId, NodeId, NodeId), Vec<DelayPoint>>,
}

impl ChangeTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records every edge of every graph at refresh time `at`.
    pub fn record(&mut self, at: Nanos, graphs: &[ServiceGraph]) {
        for g in graphs {
            for e in g.edges() {
                if e.is_anchor() {
                    continue; // the anchoring client edge carries no delay
                }
                self.history
                    .entry((g.client, e.from, e.to))
                    .or_default()
                    .push(DelayPoint {
                        at,
                        delay: e.hop_delay,
                    });
            }
        }
    }

    /// The recorded history of `(client, from → to)`.
    pub fn history(&self, client: NodeId, from: NodeId, to: NodeId) -> &[DelayPoint] {
        self.history
            .get(&(client, from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// All tracked `(client, from, to)` keys.
    pub fn keys(&self) -> impl Iterator<Item = (NodeId, NodeId, NodeId)> + '_ {
        self.history.keys().copied()
    }

    /// Consecutive-refresh jumps of at least `threshold` on one edge.
    pub fn changes(
        &self,
        client: NodeId,
        from: NodeId,
        to: NodeId,
        threshold: Nanos,
    ) -> Vec<ChangePoint> {
        let h = self.history(client, from, to);
        h.windows(2)
            .filter_map(|w| {
                let delta = if w[1].delay >= w[0].delay {
                    w[1].delay - w[0].delay
                } else {
                    w[0].delay - w[1].delay
                };
                (delta >= threshold).then_some(ChangePoint {
                    at: w[1].at,
                    before: w[0].delay,
                    after: w[1].delay,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::GraphEdge;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn graph_with_delay(ms: u64) -> ServiceGraph {
        let mut g = ServiceGraph::new(n(0), "c".into(), n(1));
        g.add_vertex(n(1), "a".into());
        g.add_vertex(n(2), "b".into());
        g.add_edge(GraphEdge {
            from: n(1),
            to: n(2),
            spikes: vec![crate::graph::DelaySpike {
                delay: Nanos::from_millis(ms),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(ms),
        });
        g
    }

    #[test]
    fn history_accumulates_in_order() {
        let mut t = ChangeTracker::new();
        for (i, ms) in [5u64, 5, 25, 25].iter().enumerate() {
            t.record(Nanos::from_secs(i as u64 * 60), &[graph_with_delay(*ms)]);
        }
        let h = t.history(n(0), n(1), n(2));
        assert_eq!(h.len(), 4);
        assert_eq!(h[2].delay, Nanos::from_millis(25));
        assert_eq!(h[2].at, Nanos::from_secs(120));
    }

    #[test]
    fn jump_detected_at_threshold() {
        let mut t = ChangeTracker::new();
        for (i, ms) in [5u64, 6, 26, 27].iter().enumerate() {
            t.record(Nanos::from_secs(i as u64), &[graph_with_delay(*ms)]);
        }
        let changes = t.changes(n(0), n(1), n(2), Nanos::from_millis(10));
        assert_eq!(changes.len(), 1);
        assert_eq!(changes[0].at, Nanos::from_secs(2));
        assert_eq!(changes[0].before, Nanos::from_millis(6));
        assert_eq!(changes[0].after, Nanos::from_millis(26));
    }

    #[test]
    fn downward_jumps_also_detected() {
        let mut t = ChangeTracker::new();
        for (i, ms) in [30u64, 5].iter().enumerate() {
            t.record(Nanos::from_secs(i as u64), &[graph_with_delay(*ms)]);
        }
        let changes = t.changes(n(0), n(1), n(2), Nanos::from_millis(10));
        assert_eq!(changes.len(), 1);
    }

    #[test]
    fn untracked_edges_are_empty() {
        let t = ChangeTracker::new();
        assert!(t.history(n(0), n(1), n(2)).is_empty());
        assert!(t
            .changes(n(0), n(1), n(2), Nanos::from_millis(1))
            .is_empty());
    }

    #[test]
    fn anchor_edges_skipped() {
        let mut t = ChangeTracker::new();
        let mut g = ServiceGraph::new(n(0), "c".into(), n(1));
        g.add_edge(GraphEdge::anchor(n(0), n(1)));
        t.record(Nanos::ZERO, &[g]);
        assert_eq!(t.keys().count(), 0);
    }
}
