//! Per-edge density signals for one analysis window.
//!
//! Pathmap correlates the *source* signal (the client's request arrivals as
//! seen at the front end) against *target* signals (every candidate edge).
//! So that every lag in `[0, T_u/τ)` is fully materialized, the source
//! window ends `T_u` before the newest captured data: causality can only be
//! attributed to requests old enough to have completed.

use crate::config::PathmapConfig;
use e2eprof_netsim::{CaptureStore, NodeId};
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{Nanos, Quanta, RleSeries, Tick};
use std::collections::{BTreeMap, HashMap};

/// The edge signals of one analysis window.
#[derive(Debug, Clone)]
pub struct EdgeSignals {
    quanta: Quanta,
    /// Source analysis window `[start, end)` in ticks.
    window: (Tick, Tick),
    max_lag: u64,
    /// Per directed edge: the preferred-observer density series, spanning
    /// (up to) `[window.0, window.1 + max_lag)`.
    signals: HashMap<(NodeId, NodeId), RleSeries>,
    adjacency: BTreeMap<NodeId, Vec<NodeId>>,
}

impl EdgeSignals {
    /// Builds signals from raw parts (used by the online analyzer).
    pub fn from_parts(
        quanta: Quanta,
        window: (Tick, Tick),
        max_lag: u64,
        signals: HashMap<(NodeId, NodeId), RleSeries>,
    ) -> Self {
        let mut adjacency: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for &(src, dst) in signals.keys() {
            adjacency.entry(src).or_default().push(dst);
        }
        for targets in adjacency.values_mut() {
            targets.sort_unstable();
        }
        EdgeSignals {
            quanta,
            window,
            max_lag,
            signals,
            adjacency,
        }
    }

    /// Builds signals offline from a capture store, analysing the most
    /// recent window that is fully materialized at time `now`: the source
    /// window is `[now − T_u − W, now − T_u)`.
    ///
    /// Each edge's signal prefers the receiver-side observation, falling
    /// back to the sender side (edges into untraced clients).
    pub fn from_capture(capture: &CaptureStore, cfg: &PathmapConfig, now: Nanos) -> Self {
        let quanta = cfg.quanta();
        let max_lag = cfg.max_lag();
        let end = quanta.tick_of(now).saturating_sub(max_lag);
        let start = end.saturating_sub(cfg.window_ticks());
        let y_end = end + max_lag;
        // Timestamps influencing ticks >= start begin at start·τ − ω/2.
        let margin = Nanos::from_nanos(cfg.omega_ticks() * quanta.duration().as_nanos());
        let ts_lo = quanta.instant_of(start).saturating_sub(margin);
        let ts_hi = quanta.instant_of(y_end) + margin;

        let mut signals = HashMap::new();
        for (src, dst) in capture.edges().collect::<Vec<_>>() {
            let all = capture.edge_signal(src, dst);
            let lo = all.partition_point(|&t| t < ts_lo);
            let hi = all.partition_point(|&t| t < ts_hi);
            let series = DensityEstimator::from_timestamps(quanta, cfg.omega_ticks(), &all[lo..hi]);
            let clipped = series
                .slice(start.min(series.end()), y_end.min(series.end()).max(start))
                .to_rle();
            signals.insert((src, dst), clipped);
        }
        Self::from_parts(quanta, (start, end), max_lag, signals)
    }

    /// The time quantum.
    pub fn quanta(&self) -> Quanta {
        self.quanta
    }

    /// The source analysis window `[start, end)` in ticks.
    pub fn window(&self) -> (Tick, Tick) {
        self.window
    }

    /// The correlation lag bound in ticks.
    pub fn max_lag(&self) -> u64 {
        self.max_lag
    }

    /// The nodes `node` sent messages to within the window's horizon.
    pub fn edges_from(&self, node: NodeId) -> &[NodeId] {
        self.adjacency.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All edges with signals.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.signals.keys().copied()
    }

    /// The *source* signal of `src → dst`: the series sliced to the
    /// analysis window (requests whose causality is being traced).
    pub fn source_signal(&self, src: NodeId, dst: NodeId) -> Option<RleSeries> {
        self.signals.get(&(src, dst)).map(|s| {
            s.slice(
                self.window.0.max(s.start()),
                self.window.1.min(s.end()).max(self.window.0),
            )
        })
    }

    /// The *target* signal of `src → dst`: the full retained span
    /// (extending `max_lag` past the source window).
    pub fn target_signal(&self, src: NodeId, dst: NodeId) -> Option<&RleSeries> {
        self.signals.get(&(src, dst))
    }

    /// The `factor`-decimated view of every signal, for the coarse
    /// screening tier: each coarse tick sums `factor` fine ticks, the
    /// quantum scales accordingly, the window covers the fine window's
    /// coarse blocks, and the lag bound becomes the conservative cover
    /// `⌊(L−1)/k⌋ + 2` (see [`e2eprof_xcorr::screen`]).
    pub fn decimate(&self, factor: u64) -> EdgeSignals {
        assert!(factor > 0, "decimation factor must be positive");
        let quanta = Quanta::from_nanos(self.quanta.duration().as_nanos() * factor);
        let window = (
            Tick::new(self.window.0.index() / factor),
            Tick::new(self.window.1.index().div_ceil(factor)),
        );
        let max_lag = e2eprof_xcorr::screen::coarse_lag_bound(self.max_lag, factor);
        let signals = self
            .signals
            .iter()
            .map(|(&edge, s)| (edge, s.decimate(factor)))
            .collect();
        Self::from_parts(quanta, window, max_lag, signals)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;

    fn two_tier() -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let db = t.service("db", ServiceConfig::new(DelayDist::constant_millis(5)));
        let cli = t.client("cli", class, web, Workload::poisson(40.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), 11)
    }

    fn small_cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_secs(2))
            .build()
    }

    #[test]
    fn signals_cover_all_traced_edges() {
        let mut sim = two_tier();
        sim.run_until(Nanos::from_secs(30));
        let cfg = small_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let (web, db, cli) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        // Forward, return, and client-facing edges all have signals.
        for edge in [(cli, web), (web, db), (db, web), (web, cli)] {
            assert!(signals.target_signal(edge.0, edge.1).is_some(), "{edge:?}");
        }
        assert_eq!(signals.edges_from(web), &[db, cli]);
    }

    #[test]
    fn window_excludes_unmaterialized_tail() {
        let mut sim = two_tier();
        sim.run_until(Nanos::from_secs(30));
        let cfg = small_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let (start, end) = signals.window();
        // end = now − T_u = 28s; start = end − W = 8s (in ms ticks).
        assert_eq!(end, Tick::new(28_000));
        assert_eq!(start, Tick::new(8_000));
        let x = signals
            .source_signal(NodeId::new(2), NodeId::new(0))
            .unwrap();
        assert_eq!(x.start(), start);
        assert_eq!(x.end(), end);
        // Target extends past the source window for lag coverage.
        let y = signals
            .target_signal(NodeId::new(0), NodeId::new(1))
            .unwrap();
        assert!(y.end() > end);
    }

    #[test]
    fn source_signal_has_traffic() {
        let mut sim = two_tier();
        sim.run_until(Nanos::from_secs(30));
        let cfg = small_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let x = signals
            .source_signal(NodeId::new(2), NodeId::new(0))
            .unwrap();
        // ~40 req/s over a 20 s window, each smeared over ω=50 ticks.
        assert!(x.stats().sum() > 100.0);
    }

    #[test]
    fn decimate_preserves_edges_and_mass() {
        let mut sim = two_tier();
        sim.run_until(Nanos::from_secs(30));
        let cfg = small_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let k = 8;
        let coarse = signals.decimate(k);

        assert_eq!(
            coarse.quanta().duration().as_nanos(),
            signals.quanta().duration().as_nanos() * k
        );
        assert_eq!(coarse.window().0, Tick::new(signals.window().0.index() / k));
        assert_eq!(
            coarse.window().1,
            Tick::new(signals.window().1.index().div_ceil(k))
        );
        assert_eq!(
            coarse.max_lag(),
            e2eprof_xcorr::screen::coarse_lag_bound(signals.max_lag(), k)
        );
        let edges: Vec<_> = signals.edges().collect();
        assert_eq!(coarse.edges().count(), edges.len());
        for (src, dst) in edges {
            let fine = signals.target_signal(src, dst).unwrap();
            let c = coarse.target_signal(src, dst).unwrap();
            // Decimation sums, so total mass is preserved exactly-ish.
            assert!(
                (fine.stats().sum() - c.stats().sum()).abs() < 1e-6,
                "{src:?}->{dst:?}"
            );
            assert_eq!(c, &fine.decimate(k));
        }
        // Adjacency survives the rebuild.
        assert_eq!(
            coarse.edges_from(NodeId::new(0)),
            signals.edges_from(NodeId::new(0))
        );
    }

    #[test]
    fn short_trace_clamps_gracefully() {
        let mut sim = two_tier();
        sim.run_until(Nanos::from_secs(1)); // shorter than W + T_u
        let cfg = small_cfg();
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        // Window is degenerate but nothing panics and signals exist.
        let (start, end) = signals.window();
        assert!(start <= end);
    }
}
