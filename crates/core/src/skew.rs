//! Clock-skew estimation (paper Section 3.8).
//!
//! The same messages observed at both ends of one edge yield two copies of
//! one signal, offset by `skew + network delay`. Cross-correlating the
//! sender-side series `T^x_{x→y}` with the receiver-side series
//! `T^y_{x→y}` puts a spike at exactly that offset. Subtracting an
//! independently known (or passively measured) network delay isolates the
//! skew.

use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{Nanos, Quanta};
use e2eprof_xcorr::{normalize, rle, SpikeDetector};

/// The result of a skew estimation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewEstimate {
    /// Receiver clock minus sender clock at message-crossing time,
    /// *including* the network delay (positive: the receiver stamps later).
    pub offset_ns: i64,
    /// Peak normalized correlation supporting the estimate.
    pub strength: f64,
}

impl SkewEstimate {
    /// The skew after removing a known network delay.
    pub fn skew_minus_network(&self, network_delay: Nanos) -> i64 {
        self.offset_ns - network_delay.as_nanos() as i64
    }
}

/// Estimates the receiver−sender clock offset from the two ends' local
/// timestamps of the *same* messages on one edge.
///
/// `max_offset` bounds the search in both directions. Returns `None` when
/// no distinguishable spike exists (e.g. empty traces).
///
/// # Example
///
/// ```
/// use e2eprof_core::skew::estimate_skew;
/// use e2eprof_timeseries::{Nanos, Quanta};
///
/// // Receiver's clock runs 5 ms ahead; network adds 1 ms.
/// let sender: Vec<Nanos> = (0..600u64)
///     .map(|i| Nanos::from_millis(i * 37 % 10_000))
///     .collect();
/// let mut sender = sender; sender.sort();
/// let receiver: Vec<Nanos> = sender.iter().map(|t| *t + Nanos::from_millis(6)).collect();
/// let est = estimate_skew(&sender, &receiver, Quanta::from_millis(1), 3, 100).unwrap();
/// assert_eq!(est.offset_ns, 6_000_000);
/// assert_eq!(est.skew_minus_network(Nanos::from_millis(1)), 5_000_000);
/// ```
pub fn estimate_skew(
    sender_ts: &[Nanos],
    receiver_ts: &[Nanos],
    quanta: Quanta,
    omega_ticks: u64,
    max_offset_ticks: u64,
) -> Option<SkewEstimate> {
    if sender_ts.is_empty() || receiver_ts.is_empty() {
        return None;
    }
    let x = DensityEstimator::from_timestamps(quanta, omega_ticks, sender_ts).to_rle();
    let y = DensityEstimator::from_timestamps(quanta, omega_ticks, receiver_ts).to_rle();
    let detector = SpikeDetector::new(3.0, omega_ticks.max(1));

    // Positive offsets: receiver stamps later than sender.
    let raw_pos = rle::correlate(&x, &y, max_offset_ticks + 1);
    let rho_pos = normalize::normalize(&raw_pos, &x, &y);
    // Negative offsets: correlate the other way around.
    let raw_neg = rle::correlate(&y, &x, max_offset_ticks + 1);
    let rho_neg = normalize::normalize(&raw_neg, &y, &x);

    let best = |rho: &e2eprof_xcorr::CorrSeries| {
        detector
            .detect(rho.values())
            .into_iter()
            .max_by(|a, b| a.value.partial_cmp(&b.value).expect("finite"))
    };
    let pos = best(&rho_pos);
    let neg = best(&rho_neg);
    let tick_ns = quanta.duration().as_nanos() as i64;
    match (pos, neg) {
        (Some(p), Some(n)) => {
            if p.value >= n.value {
                Some(SkewEstimate {
                    offset_ns: p.lag as i64 * tick_ns,
                    strength: p.value,
                })
            } else {
                Some(SkewEstimate {
                    offset_ns: -(n.lag as i64) * tick_ns,
                    strength: n.value,
                })
            }
        }
        (Some(p), None) => Some(SkewEstimate {
            offset_ns: p.lag as i64 * tick_ns,
            strength: p.value,
        }),
        (None, Some(n)) => Some(SkewEstimate {
            offset_ns: -(n.lag as i64) * tick_ns,
            strength: n.value,
        }),
        (None, None) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Irregular message timestamps (hash-scattered, sorted).
    fn trace(n: u64, span_ms: u64, seed: u64) -> Vec<Nanos> {
        let mut ts: Vec<Nanos> = (0..n)
            .map(|i| {
                let h = (i ^ seed).wrapping_mul(0x9e3779b97f4a7c15);
                Nanos::from_micros((h % (span_ms * 1000)).max(1))
            })
            .collect();
        ts.sort();
        ts
    }

    #[test]
    fn positive_offset_detected() {
        let s = trace(500, 20_000, 3);
        let r: Vec<Nanos> = s.iter().map(|t| *t + Nanos::from_millis(7)).collect();
        let est = estimate_skew(&s, &r, Quanta::from_millis(1), 3, 50).unwrap();
        assert_eq!(est.offset_ns, 7_000_000);
        assert!(est.strength > 0.8);
    }

    #[test]
    fn negative_offset_detected() {
        // Receiver's clock runs *behind* despite the network delay.
        let s = trace(500, 20_000, 5);
        let r: Vec<Nanos> = s
            .iter()
            .map(|t| t.saturating_sub(Nanos::from_millis(4)))
            .collect();
        let est = estimate_skew(&s, &r, Quanta::from_millis(1), 3, 50).unwrap();
        assert_eq!(est.offset_ns, -4_000_000);
    }

    #[test]
    fn zero_offset_detected() {
        let s = trace(500, 20_000, 7);
        let est = estimate_skew(&s, &s, Quanta::from_millis(1), 3, 50).unwrap();
        assert_eq!(est.offset_ns, 0);
    }

    #[test]
    fn empty_traces_yield_none() {
        assert!(estimate_skew(&[], &[], Quanta::from_millis(1), 3, 50).is_none());
    }

    #[test]
    fn network_delay_subtraction() {
        let est = SkewEstimate {
            offset_ns: 6_000_000,
            strength: 1.0,
        };
        assert_eq!(est.skew_minus_network(Nanos::from_millis(2)), 4_000_000);
    }
}
