//! The central online analyzer.
//!
//! Consumes wire-encoded density chunks streamed by [`TracerAgent`]s,
//! maintains per-edge sliding windows, and republishes service graphs
//! every `ΔW`. Correlations are updated *incrementally*: each refresh only
//! processes the `ΔW` ticks appended and evicted since the previous
//! refresh (the optimization that keeps pathmap's per-refresh cost flat as
//! `W` grows — Fig. 9).
//!
//! Refreshes are *sharded*: the `(client, candidate-edge)` correlator map
//! is partitioned into contiguous shards of its stable key order and the
//! append/evict corrections run on a scoped worker pool
//! ([`PathmapConfig::num_workers`]); path discovery (normalization + spike
//! detection) then runs one root per worker against the precomputed
//! series. Every worker count produces bitwise identical graphs — see
//! [`parallel`] for the determinism contract.
//!
//! [`TracerAgent`]: crate::tracer::TracerAgent

use crate::change::ChangeTracker;
use crate::config::{PathmapConfig, ReductionConfig};
use crate::graph::{NodeLabels, ServiceGraph};
use crate::hashing::FxHashMap;
use crate::parallel;
use crate::pathmap::{CorrelationProvider, IncrementalStats, Pathmap, ScreeningStats};
use crate::reduction::HintState;
use crate::signals::EdgeSignals;
use crate::tracer::TracerFrame;
use crossbeam::channel::{Receiver, Sender};
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::pyramid::DecimatedWindow;
use e2eprof_timeseries::window::SlidingWindow;
use e2eprof_timeseries::{wire, Nanos, RleSeries, Tick};
use e2eprof_xcorr::incremental::IncrementalCorrelator;
use e2eprof_xcorr::screen::{self, Screen};
use e2eprof_xcorr::{CorrSeries, Correlator};
use std::collections::{HashMap, HashSet};

/// Key of one maintained correlator: the client whose arrival signal is
/// the correlation source, and the candidate edge under test.
type PairKey = (NodeId, (NodeId, NodeId));

/// Online state of the coarse-to-fine screening tier
/// ([`PathmapConfig::screening`]).
///
/// Every fine sliding window gets a `k`-decimated twin, and every tracked
/// `(client, edge)` pair a cheap coarse incremental correlator — *pruned*
/// pairs keep only this coarse state, their full-resolution correlators
/// are dropped. Each refresh advances the coarse tier first, upper-bounds
/// every pair's fine normalized correlation (see
/// [`e2eprof_xcorr::screen`]), and applies the promote/demote hysteresis
/// before the fine tier runs.
#[derive(Debug)]
struct ScreeningState {
    screen: Screen,
    /// Coarse-tier lag bound `⌊(L−1)/k⌋ + 2`.
    coarse_lag: u64,
    /// Decimated twin of each edge's sliding window.
    decimated: FxHashMap<(NodeId, NodeId), DecimatedWindow>,
    /// Coarse correlator per tracked pair (active *and* pruned).
    coarse: FxHashMap<PairKey, IncrementalCorrelator>,
    /// Whether each tracked pair currently runs at full resolution.
    active: FxHashMap<PairKey, bool>,
    /// Counters of the most recent refresh.
    stats: ScreeningStats,
}

/// Per-edge reduction status on the analyzer side. Absence from the status
/// map means the edge streams at full resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EdgeStatus {
    /// The tracer was asked to ship only coarse blocks of `level` fine
    /// ticks (√(block count) amplitudes).
    Demoted {
        /// Fine ticks per coarse block.
        level: u64,
    },
    /// A promote hint is on its way to the tracer; the edge leaves this
    /// state when its fine stream (backfill first) resumes.
    Promoting,
}

/// Coarse image of one demoted edge. Fed from level-tagged wire entries
/// once the tracer applies the hint, and from decimated still-arriving
/// fine chunks in the interim — [`screen::coarse_overlap`] only reads the
/// support, so the two amplitude conventions may mix freely.
#[derive(Debug)]
struct CoarseStore {
    level: u64,
    win: DecimatedWindow,
}

impl CoarseStore {
    fn new(level: u64, fine_capacity: u64) -> Self {
        CoarseStore {
            level,
            win: DecimatedWindow::new(fine_capacity, level),
        }
    }
}

/// Counters of the edge-side reduction tier (see
/// [`OnlineAnalyzer::reduction_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReductionStats {
    /// Edges demoted to coarse streaming over the analyzer's lifetime.
    pub demotions: u64,
    /// Demoted edges promoted back to full resolution over the analyzer's
    /// lifetime.
    pub promotions: u64,
    /// Edges currently demoted (or awaiting their promote backfill).
    pub reduced_now: usize,
}

/// Online state of the edge-side data-reduction tier
/// ([`PathmapConfig::reduction`]): the analyzer half of the
/// analyzer→tracer feedback loop.
#[derive(Debug)]
struct ReductionState {
    cfg: ReductionConfig,
    /// This analyzer's shard index and tier width, stamped into every
    /// [`HintState`] snapshot (tracer-side merge intersects across shards).
    shard: u32,
    of: u32,
    status: FxHashMap<(NodeId, NodeId), EdgeStatus>,
    /// Consecutive refreshes each candidate edge has been fully
    /// screened-dead (demotion fires at `cfg.patience`).
    cold: FxHashMap<(NodeId, NodeId), u32>,
    /// Coarse image per demoted edge, for the promote-overlap check.
    stores: FxHashMap<(NodeId, NodeId), CoarseStore>,
    /// Whether the demoted-edge set changed since the last
    /// [`OnlineAnalyzer::take_hints`].
    dirty: bool,
    demotions: u64,
    promotions: u64,
}

impl ReductionState {
    /// Folds a still-arriving fine chunk of a demoted edge into its coarse
    /// store (the tracer has not applied the demote hint yet).
    fn feed_fine(&mut self, edge: (NodeId, NodeId), chunk: &RleSeries, fine_capacity: u64) {
        let level = match self.status.get(&edge) {
            Some(EdgeStatus::Demoted { level }) => *level,
            _ => return,
        };
        let store = self
            .stores
            .entry(edge)
            .or_insert_with(|| CoarseStore::new(level, fine_capacity));
        store.win.append_or_reset(chunk);
    }

    /// Appends one wire-ingested coarse chunk (already decimated by
    /// `level`) to the edge's store. A level mismatch — the tracer caught
    /// up with a newer hint — resets the store to the new resolution.
    fn feed_coarse(
        &mut self,
        edge: (NodeId, NodeId),
        level: u64,
        chunk: &RleSeries,
        fine_capacity: u64,
    ) {
        let store = self
            .stores
            .entry(edge)
            .or_insert_with(|| CoarseStore::new(level, fine_capacity));
        if store.level != level {
            *store = CoarseStore::new(level, fine_capacity);
        }
        store.win.append_coarse_or_reset(chunk);
    }
}

/// Cross-refresh memory of the activity-gated incremental tier
/// ([`PathmapConfig::incremental`]): everything the next refresh needs to
/// *prove* that carrying a pair's accumulated products (or a whole root's
/// graph) forward unchanged is bitwise identical to recomputing it.
///
/// The soundness contract lives in DESIGN.md §6.7. In short, a window is
/// *quiet* for a refresh when its change epoch is unchanged since the
/// previous refresh **and** it has no runs in the boundary regions the
/// window slide adds or evicts (padded by `4k` ticks when the screening
/// tier's decimated twins are live, to cover coarse block and fold
/// boundaries). Every append/evict correction term of a quiet pair is a
/// sum of zero products, so skipping the advance and sliding the recorded
/// window is a bitwise no-op.
#[derive(Debug, Default)]
struct IncrementalState {
    /// Geometry of the last completed refresh: `(start, end, data_end)`.
    prev: Option<(Tick, Tick, Tick)>,
    /// Change-epoch snapshot of every fine window at that refresh.
    epochs: FxHashMap<(NodeId, NodeId), u64>,
    /// Cached Phase-0 screen bound per pair, tagged with the
    /// classification it was computed under (the bound's early-exit
    /// threshold depends on it, so reuse requires the same tag).
    bounds: FxHashMap<PairKey, (f64, bool)>,
    /// Pairs the screening tier pruned in that refresh.
    pruned: HashSet<PairKey>,
    /// Cached per-root discovery result and the pair support set the
    /// root's exploration touched.
    roots: FxHashMap<(NodeId, NodeId), (Option<ServiceGraph>, Vec<PairKey>)>,
    /// Sorted signal-edge key set of that refresh. Any change — an edge
    /// appearing, vanishing, or moving through the reduction tier —
    /// dirties every root, because exploration enumerates candidate
    /// edges from this set.
    fingerprint: Vec<(NodeId, NodeId)>,
    /// Counters of the most recent refresh.
    stats: IncrementalStats,
}

/// Counters for the refresh maintenance path's correlation-series buffers:
/// how many per-pair advances copied into a buffer retained from the
/// previous refresh versus having to grow (or first-allocate) one. In
/// steady state `reused` keeps rising while `allocated` stays constant —
/// the correlate hot path performs no heap allocation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchCounters {
    /// Advances whose output fit in a buffer kept from the last refresh.
    pub reused: u64,
    /// Advances that allocated or grew their output buffer.
    pub allocated: u64,
}

/// The online pathmap analyzer.
#[derive(Debug)]
pub struct OnlineAnalyzer {
    config: PathmapConfig,
    pathmap: Pathmap,
    roots: Vec<(NodeId, NodeId)>,
    /// Every client node in the deployment — a superset of the clients in
    /// `roots`. Discovery must know all of them even when this analyzer
    /// shard owns only some roots (see [`Pathmap::discover_pooled_among`]).
    universe: HashSet<NodeId>,
    labels: NodeLabels,
    rx: Receiver<TracerFrame>,
    windows: FxHashMap<(NodeId, NodeId), SlidingWindow>,
    incs: FxHashMap<(NodeId, (NodeId, NodeId)), IncrementalCorrelator>,
    change: ChangeTracker,
    /// Capacity of each sliding window, in ticks.
    capacity: u64,
    /// Subscribers receiving every refresh's graphs.
    subscribers: Vec<Sender<GraphUpdate>>,
    /// Coarse screening tier, when configured.
    screening: Option<ScreeningState>,
    /// Edge-side data-reduction tier, when configured.
    reduction: Option<ReductionState>,
    /// Per-pair correlation-series buffers retained across refreshes: the
    /// sharded advance phase copies each pair's products into last
    /// refresh's buffer instead of cloning a fresh allocation.
    corr_cache: FxHashMap<PairKey, CorrSeries>,
    /// Buffer-reuse counters accumulated across refreshes.
    scratch: ScratchCounters,
    /// Activity-gated incremental tier, when configured.
    incremental: Option<IncrementalState>,
}

/// One published refresh: the paper's envisioned "pluggable" service
/// interface — subscribers "receive real-time information about their
/// service paths and systems' health in general" (Section 5).
#[derive(Debug, Clone)]
pub struct GraphUpdate {
    /// Wall-clock label of the refresh.
    pub at: Nanos,
    /// The refreshed service graphs (shared, immutable).
    pub graphs: std::sync::Arc<Vec<ServiceGraph>>,
}

impl OnlineAnalyzer {
    /// Creates an analyzer fed by `rx`, analyzing every root.
    pub fn new(
        config: PathmapConfig,
        roots: Vec<(NodeId, NodeId)>,
        labels: NodeLabels,
        rx: Receiver<TracerFrame>,
    ) -> Self {
        let universe = roots.iter().map(|&(c, _)| c).collect();
        OnlineAnalyzer::with_universe(config, roots, universe, labels, rx)
    }

    /// Creates an analyzer *shard*: it ingests every edge stream on `rx`
    /// but discovers graphs only for its owned `roots`, while `universe`
    /// names every client in the whole deployment so exploration never
    /// recurses through another shard's client nodes. With `universe`
    /// equal to the roots' clients this is exactly [`new`](Self::new);
    /// concatenating the graphs of shards holding contiguous root chunks
    /// (in shard order) reproduces the single-analyzer output bit for
    /// bit.
    pub fn with_universe(
        config: PathmapConfig,
        roots: Vec<(NodeId, NodeId)>,
        universe: HashSet<NodeId>,
        labels: NodeLabels,
        rx: Receiver<TracerFrame>,
    ) -> Self {
        // Retain enough history for the source window, the lag horizon,
        // and one refresh interval of eviction corrections.
        let capacity = config.window_ticks() + config.max_lag() + 2 * config.refresh_ticks();
        let pathmap = Pathmap::new(config.clone());
        let screening = config.screen().map(|screen| ScreeningState {
            coarse_lag: screen::coarse_lag_bound(config.max_lag(), screen.factor()),
            screen,
            decimated: FxHashMap::default(),
            coarse: FxHashMap::default(),
            active: FxHashMap::default(),
            stats: ScreeningStats::default(),
        });
        let incremental = config.incremental().then(IncrementalState::default);
        let reduction = config.reduction().map(|&cfg| ReductionState {
            cfg,
            shard: 0,
            of: 1,
            status: FxHashMap::default(),
            cold: FxHashMap::default(),
            stores: FxHashMap::default(),
            dirty: false,
            demotions: 0,
            promotions: 0,
        });
        OnlineAnalyzer {
            config,
            pathmap,
            roots,
            universe,
            labels,
            rx,
            windows: FxHashMap::default(),
            incs: FxHashMap::default(),
            change: ChangeTracker::new(),
            capacity,
            subscribers: Vec::new(),
            screening,
            reduction,
            corr_cache: FxHashMap::default(),
            scratch: ScratchCounters::default(),
            incremental,
        }
    }

    /// Subscribes to refresh results. Every non-empty refresh is published
    /// to all live subscribers; disconnected receivers are dropped
    /// silently.
    pub fn subscribe(&mut self) -> Receiver<GraphUpdate> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.subscribers.push(tx);
        rx
    }

    /// The analysis configuration.
    pub fn config(&self) -> &PathmapConfig {
        &self.config
    }

    /// Drains all pending tracer frames into the sliding windows. Returns
    /// the number of frames ingested.
    ///
    /// Both wire formats are accepted on the same channel. A v1 frame
    /// decodes to one owned chunk and appends as before; a v2 batch frame
    /// is walked by a zero-copy [`wire::FrameCursor`] whose runs stream
    /// straight into [`SlidingWindow::extend_runs`] — in steady state (no
    /// screening) ingest materializes no intermediate series at all. With
    /// screening enabled each batch entry is materialized once so the
    /// decimated twin can fold the same chunk.
    ///
    /// Stream discontinuities heal automatically: a restarted tracer's
    /// replayed history is deduplicated (only novel ticks append), and a
    /// true gap (frames lost in transit) resets that edge's window, with
    /// the affected incremental correlators falling back to a from-scratch
    /// computation on the next refresh.
    ///
    /// # Panics
    ///
    /// Panics if a frame fails to decode — a tracer bug, not a recoverable
    /// condition.
    pub fn ingest(&mut self) -> usize {
        let mut count = 0;
        // Scratch for materializing batch entries when screening needs a
        // full chunk; retained across frames so steady-state screening
        // ingest reuses one allocation.
        let mut scratch_runs: Vec<e2eprof_timeseries::rle::Run> = Vec::new();
        while let Ok(frame) = self.rx.try_recv() {
            self.ingest_frame(&frame, &mut scratch_runs);
            count += 1;
        }
        count
    }

    /// Ingests exactly `frames` tracer frames, *blocking* until they
    /// arrive (or every sender disconnects, whichever comes first), and
    /// returns the number actually ingested.
    ///
    /// This is the deterministic synchronization primitive for the
    /// distributed pipeline: the driving side counts the frames its
    /// agents emitted, and the analyzer side blocks until that many have
    /// crossed the transport — no sleeps, no timing assumptions, and a
    /// refresh never runs against a partially delivered flush.
    ///
    /// # Panics
    ///
    /// Panics if a frame fails to decode, like [`ingest`](Self::ingest).
    pub fn ingest_expected(&mut self, frames: usize) -> usize {
        let mut count = 0;
        let mut scratch_runs: Vec<e2eprof_timeseries::rle::Run> = Vec::new();
        while count < frames {
            match self.rx.recv() {
                Ok(frame) => {
                    self.ingest_frame(&frame, &mut scratch_runs);
                    count += 1;
                }
                Err(_) => break,
            }
        }
        count
    }

    /// Applies one tracer frame to the sliding windows (either wire
    /// format; see [`ingest`](Self::ingest) for the decoding contract).
    fn ingest_frame(
        &mut self,
        frame: &TracerFrame,
        scratch_runs: &mut Vec<e2eprof_timeseries::rle::Run>,
    ) {
        let capacity = self.capacity;
        match frame {
            TracerFrame::Series { edge, payload } => {
                let chunk = wire::decode(payload).expect("undecodable tracer frame");
                let healed = self.apply_chunk(*edge, &chunk);
                if healed {
                    self.invalidate_correlators(*edge);
                }
            }
            // A backfill is ingested exactly like a batch: the promoted
            // edge's retained fine window arrives as one (possibly
            // gap-healing) chunk.
            TracerFrame::Batch { payload } | TracerFrame::Backfill { payload } => {
                let mut cursor = wire::FrameCursor::new(payload).expect("undecodable tracer frame");
                while let Some(entry) = cursor.next_entry().expect("undecodable tracer frame") {
                    let edge = (NodeId::new(entry.key.0), NodeId::new(entry.key.1));
                    if entry.level > 0 {
                        // Level-tagged coarse entry of a demoted edge:
                        // stream it into the edge's coarse store, never
                        // into the fine window.
                        scratch_runs.clear();
                        while let Some(run) = cursor.next_run().expect("undecodable tracer frame") {
                            scratch_runs.push(run);
                        }
                        let chunk = RleSeries::from_parts(
                            entry.start,
                            entry.len,
                            std::mem::take(scratch_runs),
                        );
                        if let Some(red) = &mut self.reduction {
                            red.feed_coarse(edge, entry.level, &chunk, capacity);
                        }
                        *scratch_runs = {
                            let mut v = chunk.into_runs();
                            v.clear();
                            v
                        };
                        continue;
                    }
                    let healed = if self.screening.is_some() {
                        scratch_runs.clear();
                        while let Some(run) = cursor.next_run().expect("undecodable tracer frame") {
                            scratch_runs.push(run);
                        }
                        let chunk = RleSeries::from_parts(
                            entry.start,
                            entry.len,
                            std::mem::take(scratch_runs),
                        );
                        let healed = self.apply_chunk(edge, &chunk);
                        *scratch_runs = {
                            let mut v = chunk.into_runs();
                            v.clear();
                            v
                        };
                        healed
                    } else {
                        self.windows
                            .entry(edge)
                            .or_insert_with(|| SlidingWindow::new(capacity))
                            .extend_runs(
                                entry.start,
                                entry.len,
                                std::iter::from_fn(|| {
                                    cursor.next_run().expect("undecodable tracer frame")
                                }),
                            )
                    };
                    if healed {
                        self.invalidate_correlators(edge);
                    }
                }
            }
        }
    }

    /// Appends one owned chunk to an edge's fine window (and its decimated
    /// twin, when screening is enabled). Returns whether the window healed
    /// a gap.
    fn apply_chunk(&mut self, edge: (NodeId, NodeId), chunk: &RleSeries) -> bool {
        let capacity = self.capacity;
        if let Some(red) = &mut self.reduction {
            match red.status.get(&edge) {
                Some(EdgeStatus::Promoting) => {
                    // The fine stream resumed (backfill or first live
                    // chunk): the promote round-trip is complete.
                    red.status.remove(&edge);
                    red.stores.remove(&edge);
                }
                Some(EdgeStatus::Demoted { .. }) => {
                    // The tracer has not applied the demote hint yet (or
                    // another shard keeps the edge fine): keep the coarse
                    // image warm so the promote check sees activity.
                    red.feed_fine(edge, chunk, capacity);
                }
                None => {}
            }
        }
        let healed = self
            .windows
            .entry(edge)
            .or_insert_with(|| SlidingWindow::new(capacity))
            .append_or_reset(chunk);
        if let Some(scr) = &mut self.screening {
            // The decimated twin sees the same chunk stream, so its
            // heal events coincide with the fine window's.
            let factor = scr.screen.factor();
            scr.decimated
                .entry(edge)
                .or_insert_with(|| DecimatedWindow::new(capacity, factor))
                .append_or_reset(chunk);
        }
        healed
    }

    /// Invalidates every correlator involving a reset edge.
    fn invalidate_correlators(&mut self, reset: (NodeId, NodeId)) {
        self.incs
            .retain(|&(client, edge), _| edge != reset && client != reset.0);
        if let Some(scr) = &mut self.screening {
            scr.coarse
                .retain(|&(client, edge), _| edge != reset && client != reset.0);
            scr.active
                .retain(|&(client, edge), _| edge != reset && client != reset.0);
        }
        // A healed gap replaces window content wholesale without the
        // epoch/boundary bookkeeping the quiet predicate relies on; heals
        // are rare (data loss, promote backfills), so drop the whole
        // cross-refresh memory rather than reason about partial validity.
        if let Some(st) = &mut self.incremental {
            *st = IncrementalState::default();
        }
    }

    /// The newest tick for which *every* stream has data (streams drained
    /// to different points can only be analyzed up to the common prefix).
    ///
    /// Edges demoted by the reduction tier are excluded: their fine
    /// windows stop advancing once the tracer applies the hint, and the
    /// analysis frontier must not stall on them.
    pub fn common_end(&self) -> Option<Tick> {
        let reduced = self.reduction.as_ref().map(|red| &red.status);
        self.windows
            .iter()
            .filter(|(edge, _)| reduced.is_none_or(|status| !status.contains_key(edge)))
            .map(|(_, w)| w.end())
            .min()
    }

    /// Runs one refresh: discovers the current service graphs from the
    /// retained windows and records them in the change tracker under the
    /// wall-clock label `at`.
    ///
    /// Returns an empty vec until enough data is buffered for one full
    /// analysis window.
    pub fn refresh(&mut self, at: Nanos) -> Vec<ServiceGraph> {
        let Some(data_end) = self.common_end() else {
            return Vec::new();
        };
        let max_lag = self.config.max_lag();
        let window_ticks = self.config.window_ticks();
        if data_end.index() < max_lag + window_ticks {
            return Vec::new();
        }
        let end = data_end.saturating_sub(max_lag);
        let start = end.saturating_sub(window_ticks);

        // Activity gate ([`PathmapConfig::incremental`]): take the
        // cross-refresh memory out of `self` so the phases below can
        // borrow disjoint fields, and compute each window's *quiet* flag
        // against the previous refresh's geometry. A window is quiet when
        // its change epoch is unchanged (no nonzero content entered or
        // left retention) and it has no runs in the two boundary regions
        // the slide touches — everything the slide's append/evict
        // corrections could read. The `4k` padding covers the coarse
        // twins: their block and fold boundaries move in `k`-tick steps
        // and their lag bound overshoots the fine horizon by up to `3k`
        // ticks (see DESIGN.md §6.7).
        let mut inc_state = self.incremental.take();
        if let Some(st) = inc_state.as_mut() {
            st.stats = IncrementalStats::default();
        }
        let quiet: FxHashMap<(NodeId, NodeId), bool> = match inc_state
            .as_ref()
            .and_then(|st| st.prev.map(|prev| (prev, st)))
        {
            Some(((start0, end0, _), st)) => {
                let pad = self
                    .screening
                    .as_ref()
                    .map(|scr| 4 * scr.screen.factor())
                    .unwrap_or(0);
                self.windows
                    .iter()
                    .map(|(&edge, w)| {
                        let q = st.epochs.get(&edge) == Some(&w.epoch())
                            && !w.has_runs_in(
                                Tick::new(start0.index().saturating_sub(pad)),
                                Tick::new(start.index() + max_lag + pad),
                            )
                            && !w.has_runs_in(
                                Tick::new(end0.index().saturating_sub(pad)),
                                Tick::new(data_end.index() + pad),
                            );
                        (edge, q)
                    })
                    .collect()
            }
            None => FxHashMap::default(),
        };

        // Materialize the per-edge signal views. Edges demoted by the
        // reduction tier are invisible to discovery — their fine windows
        // are stale by design and their coarse image only serves the
        // promote-overlap check.
        let reduced = self.reduction.as_ref().map(|red| &red.status);
        let mut signals_map = HashMap::new();
        for (&edge, window) in &self.windows {
            if reduced.is_some_and(|status| status.contains_key(&edge)) {
                continue;
            }
            signals_map.insert(edge, window.view(start, data_end));
        }
        // Sorted signal-edge key set: candidate-edge enumeration is
        // key-driven, so an unchanged fingerprint plus per-pair quietness
        // is what certifies a cached root graph (see Phase 2).
        let fingerprint: Vec<(NodeId, NodeId)> = if inc_state.is_some() {
            let mut keys: Vec<(NodeId, NodeId)> = signals_map.keys().copied().collect();
            keys.sort_unstable();
            keys
        } else {
            Vec::new()
        };
        let signals =
            EdgeSignals::from_parts(self.config.quanta(), (start, end), max_lag, signals_map);

        let fronts: HashMap<NodeId, NodeId> = self.roots.iter().copied().collect();
        let num_workers = self.config.num_workers();
        let engine = self.pathmap.engine();

        // Phase 0 — coarse screening tier (when configured): advance the
        // cheap decimated correlator of *every* tracked pair, upper-bound
        // each pair's fine normalized correlation, and promote/demote
        // against the hysteresis thresholds. Demoted pairs lose their fine
        // correlator here and are skipped by discovery below; promoted
        // pairs get a fresh fine correlator that Phase 1 fills by a
        // from-scratch recompute over the retained window.
        let inc_ref = &mut inc_state;
        let pruned: Option<HashSet<PairKey>> = self.screening.as_mut().map(|scr| {
            let ScreeningState {
                screen,
                coarse_lag,
                decimated,
                coarse,
                active,
                stats,
            } = scr;
            let k = screen.factor();
            let coarse_lag = *coarse_lag;
            // Safety net: every fine-tracked pair must have coarse state.
            for &key in self.incs.keys() {
                coarse
                    .entry(key)
                    .or_insert_with(|| IncrementalCorrelator::new(coarse_lag));
                active.entry(key).or_insert(true);
            }
            let decimated = &*decimated;
            // Coarse source window covering the fine window's blocks.
            let cs = Tick::new(start.index() / k);
            let ce = Tick::new(end.index().div_ceil(k));

            let mut centries: Vec<(PairKey, IncrementalCorrelator)> = coarse.drain().collect();
            centries.sort_unstable_by_key(|&(key, _)| key);
            // Per-client fine/coarse source views and per-edge coarse
            // target views, built once and shared by every pair.
            let mut fine_sources: HashMap<NodeId, Option<RleSeries>> = HashMap::new();
            let mut coarse_sources: HashMap<NodeId, Option<RleSeries>> = HashMap::new();
            for &((client, _), _) in &centries {
                fine_sources.entry(client).or_insert_with(|| {
                    fronts
                        .get(&client)
                        .and_then(|&front| signals.source_signal(client, front))
                });
                coarse_sources.entry(client).or_insert_with(|| {
                    fronts.get(&client).and_then(|&front| {
                        decimated
                            .get(&(client, front))
                            .map(|d| d.coarse().view(cs, ce))
                    })
                });
            }
            let mut coarse_targets: HashMap<(NodeId, NodeId), RleSeries> = HashMap::new();
            for &((_, edge), _) in &centries {
                if let Some(d) = decimated.get(&edge) {
                    coarse_targets
                        .entry(edge)
                        .or_insert_with(|| d.coarse().view(cs, d.coarse().end()));
                }
            }

            struct CoarseItem<'a> {
                key: PairKey,
                inc: IncrementalCorrelator,
                xc: Option<&'a RleSeries>,
                yc: Option<&'a RleSeries>,
                x: Option<&'a RleSeries>,
                y: Option<&'a RleSeries>,
                bound: Option<f64>,
                /// Activity-gated skip: carry bound and accumulator
                /// forward verbatim (see DESIGN.md §6.7).
                skip: bool,
            }
            let coarse_lookup =
                |e: (NodeId, NodeId)| decimated.get(&e).map(DecimatedWindow::coarse);
            let fronts_ref = &fronts;
            let screen = *screen;
            let quiet_ref = &quiet;
            let mut items: Vec<CoarseItem<'_>> = centries
                .into_iter()
                .map(|(key, inc)| {
                    let xc = coarse_sources.get(&key.0).and_then(Option::as_ref);
                    let yc = coarse_targets.get(&key.1);
                    let x = fine_sources.get(&key.0).and_then(Option::as_ref);
                    let y = signals.target_signal(key.1 .0, key.1 .1);
                    // A quiet pair whose cached bound was computed under
                    // the same classification (the bound's early-exit
                    // threshold depends on it) and whose coarse
                    // correlator could advance exactly keeps bound and
                    // accumulator verbatim.
                    let mut skip = false;
                    let mut bound = None;
                    if let Some(st) = inc_ref.as_ref() {
                        if st.prev.is_some()
                            && xc.is_some()
                            && yc.is_some()
                            && x.is_some()
                            && y.is_some()
                            && pair_is_quiet(quiet_ref, fronts_ref, key)
                        {
                            if let Some(&(b0, was0)) = st.bounds.get(&key) {
                                let was = active.get(&key).copied().unwrap_or(true);
                                if was == was0
                                    && advance_possible(
                                        &inc,
                                        key.0,
                                        key.1,
                                        coarse_lag,
                                        (cs, ce),
                                        &coarse_lookup,
                                        fronts_ref,
                                    )
                                {
                                    skip = true;
                                    bound = Some(b0);
                                }
                            }
                        }
                    }
                    CoarseItem {
                        key,
                        inc,
                        xc,
                        yc,
                        x,
                        y,
                        bound,
                        skip,
                    }
                })
                .collect();
            let active_ref = &*active;
            parallel::for_each_sharded_mut(&mut items, num_workers, |item| {
                if item.skip {
                    // Proven-quiet pair: every append/evict correction
                    // term is a sum of zero products, so sliding the
                    // recorded window is bitwise equivalent to the
                    // advance; the cached bound rides in `item.bound`.
                    item.inc.slide((cs, ce));
                    return;
                }
                let (Some(xc), Some(yc), Some(x), Some(y)) = (item.xc, item.yc, item.x, item.y)
                else {
                    // A signal vanished this window: carry the coarse state
                    // over untouched and keep the prior classification.
                    return;
                };
                advance_pair(
                    &mut item.inc,
                    engine,
                    item.key.0,
                    item.key.1,
                    xc,
                    yc,
                    coarse_lag,
                    (cs, ce),
                    &coarse_lookup,
                    fronts_ref,
                );
                // Slack covering fine products the folded coarse blocks
                // cannot see yet: the decimated twins fold only complete
                // k-blocks, so up to k−1 ticks at each stream's head are
                // unfolded. For non-negative series, Σ x(t)·y(t+d) over
                // any tick set is at most (Σx)·(Σy) over covering spans.
                let x_fold = fronts_ref
                    .get(&item.key.0)
                    .and_then(|&front| decimated.get(&(item.key.0, front)))
                    .map(|d| Tick::new(d.coarse().end().index() * k))
                    .unwrap_or(Tick::ZERO);
                let y_fold = decimated
                    .get(&item.key.1)
                    .map(|d| Tick::new(d.coarse().end().index() * k))
                    .unwrap_or(Tick::ZERO);
                let mut slack = 0.0;
                if x_fold < end {
                    let xs = x.slice(x_fold.max(start), end).stats().sum();
                    let ys = y.slice(x_fold.max(y.start()), y.end()).stats().sum();
                    slack += xs * ys;
                }
                if y_fold < data_end {
                    let lo = Tick::new((y_fold.index() + 1).saturating_sub(max_lag));
                    let xs = x.slice(lo.max(start), end).stats().sum();
                    let ys = y.slice(y_fold.max(y.start()), y.end()).stats().sum();
                    slack += xs * ys;
                }
                // Scan only far enough to decide: once the running bound
                // clears this pair's hysteresis threshold it stays active
                // regardless of the exact maximum, so live pairs exit
                // after a handful of lags (see `max_rho_bound_until`).
                let was = active_ref.get(&item.key).copied().unwrap_or(true);
                let stop_at = screen.decision_threshold(was) - screen::BOUND_MARGIN;
                let corr = item.inc.corr();
                item.bound = Some(screen::max_rho_bound_until(
                    corr, k, x, y, max_lag, slack, stop_at,
                ));
            });

            // Serial decision pass in stable key order.
            if let Some(st) = inc_ref.as_mut() {
                st.bounds.clear();
            }
            let mut pruned_set = HashSet::new();
            let mut refresh_stats = ScreeningStats::default();
            for item in items {
                refresh_stats.candidates += 1;
                if let Some(st) = inc_ref.as_mut() {
                    st.stats.coarse_pairs += 1;
                    if item.skip {
                        st.stats.coarse_skipped += 1;
                    }
                }
                if let Some(bound) = item.bound {
                    let was = active.get(&item.key).copied().unwrap_or(true);
                    if let Some(st) = inc_ref.as_mut() {
                        st.bounds.insert(item.key, (bound, was));
                    }
                    let now = screen.next_active(bound, was);
                    active.insert(item.key, now);
                    if !now {
                        self.incs.remove(&item.key);
                    } else if !was {
                        self.incs
                            .entry(item.key)
                            .or_insert_with(|| IncrementalCorrelator::new(max_lag));
                    }
                }
                if !active.get(&item.key).copied().unwrap_or(true) {
                    refresh_stats.pruned += 1;
                    pruned_set.insert(item.key);
                }
                coarse.insert(item.key, item.inc);
            }
            *stats = refresh_stats;
            pruned_set
        });

        // Phase 0.5 — edge-side reduction decisions (when configured):
        // promote demoted edges whose coarse image overlaps a root signal
        // within the lag horizon, and demote edges whose every owned
        // (client, edge) pair screening has kept pruned for `patience`
        // consecutive refreshes. The resulting hint snapshot is picked up
        // by the driver via [`take_hints`](Self::take_hints).
        if let (Some(red), Some(scr)) = (self.reduction.as_mut(), self.screening.as_mut()) {
            reduction_pass(
                red,
                scr,
                &self.windows,
                &mut self.incs,
                &mut self.corr_cache,
                &fronts,
                window_ticks,
                max_lag,
                self.capacity,
            );
        }

        // Phase 1 — advance every tracked correlator by the window delta,
        // sharded over the worker pool in stable key order. Each pair owns
        // its accumulator and only *reads* the shared windows, so its
        // arithmetic is identical no matter which shard (or thread) runs
        // it; the merge below reassembles the map in the same sorted key
        // order for every worker count.
        let mut entries: Vec<(PairKey, IncrementalCorrelator)> = self.incs.drain().collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        let mut sources: HashMap<NodeId, Option<RleSeries>> = HashMap::new();
        for &((client, _), _) in &entries {
            sources.entry(client).or_insert_with(|| {
                fronts
                    .get(&client)
                    .and_then(|&front| signals.source_signal(client, front))
            });
        }
        struct AdvanceItem<'a> {
            key: PairKey,
            inc: IncrementalCorrelator,
            x: Option<&'a RleSeries>,
            y: Option<&'a RleSeries>,
            /// Output buffer taken from the previous refresh's cache
            /// (`None` for pairs advanced for the first time); the worker
            /// copies the refreshed products into it in place.
            corr: Option<CorrSeries>,
            /// Whether this refresh actually advanced the pair.
            advanced: bool,
            /// Whether the output copy had to allocate or grow.
            grew: bool,
            /// Activity-gated skip: slide the window and keep the cached
            /// series verbatim (see DESIGN.md §6.7).
            skipped: bool,
        }
        let windows = &self.windows;
        let fronts_ref = &fronts;
        let fine_lookup = |e: (NodeId, NodeId)| windows.get(&e);
        let quiet_ref = &quiet;
        let corr_cache = &mut self.corr_cache;
        let mut items: Vec<AdvanceItem<'_>> = entries
            .into_iter()
            .map(|(key, inc)| {
                let x = sources.get(&key.0).and_then(Option::as_ref);
                let y = signals.target_signal(key.1 .0, key.1 .1);
                let corr = corr_cache.remove(&key);
                // A quiet pair with a cached series whose correlator
                // could advance exactly is a proven bitwise no-op: both
                // correction spans lie inside run-free regions.
                let skipped = inc_state.as_ref().is_some_and(|st| {
                    st.prev.is_some()
                        && x.is_some()
                        && y.is_some()
                        && corr.is_some()
                        && pair_is_quiet(quiet_ref, fronts_ref, key)
                        && advance_possible(
                            &inc,
                            key.0,
                            key.1,
                            max_lag,
                            (start, end),
                            &fine_lookup,
                            fronts_ref,
                        )
                });
                AdvanceItem {
                    key,
                    inc,
                    x,
                    y,
                    corr,
                    advanced: false,
                    grew: false,
                    skipped,
                }
            })
            .collect();
        // Whatever the item construction did not take back out belongs to
        // pairs no longer tracked; drop it so discovery never reads stale
        // series (re-inserted below for pairs that did advance).
        corr_cache.clear();
        // Shared-transform batched refill: with the incremental tier on,
        // pairs needing a from-scratch recompute are grouped per client
        // (items are in sorted key order, so one client's pairs are
        // contiguous) and computed by a single `correlate_fanout` call —
        // an FFT-capable engine forward-transforms the shared source
        // once per padded size instead of once per pair. The fanout is
        // bitwise identical to per-pair `correlate` for every engine, so
        // this only moves work, never results.
        if inc_state.is_some() {
            let mut i = 0;
            while i < items.len() {
                let client = items[i].key.0;
                let mut group: Vec<usize> = Vec::new();
                let mut j = i;
                while j < items.len() && items[j].key.0 == client {
                    let it = &items[j];
                    if !it.skipped
                        && it.x.is_some()
                        && it.y.is_some()
                        && !advance_possible(
                            &it.inc,
                            it.key.0,
                            it.key.1,
                            max_lag,
                            (start, end),
                            &fine_lookup,
                            fronts_ref,
                        )
                    {
                        group.push(j);
                    }
                    j += 1;
                }
                if let Some(&g0) = group.first() {
                    let x = items[g0].x.expect("grouped on Some");
                    let ys: Vec<&RleSeries> = group
                        .iter()
                        .map(|&gi| items[gi].y.expect("grouped on Some"))
                        .collect();
                    let corrs = engine.correlate_fanout(x, &ys, max_lag);
                    for (&gi, corr) in group.iter().zip(corrs) {
                        let item = &mut items[gi];
                        if item.inc.max_lag() != max_lag {
                            item.inc = IncrementalCorrelator::new(max_lag);
                        }
                        // Equivalent to `refill` over the same span; the
                        // sharded advance below then finds the window
                        // already in place and no-ops.
                        item.inc.install(corr, (x.start(), x.end()));
                    }
                }
                i = j;
            }
        }
        parallel::for_each_sharded_mut(&mut items, num_workers, |item| {
            if item.skipped {
                // Proven-quiet pair: sliding the recorded window is
                // bitwise equivalent to the advance, and the cached
                // series in `item.corr` already equals the accumulator.
                item.inc.slide((start, end));
                item.advanced = true;
                return;
            }
            // Pairs whose signals vanished this window are carried over
            // untouched — discovery cannot visit them either.
            if let (Some(x), Some(y)) = (item.x, item.y) {
                advance_pair(
                    &mut item.inc,
                    engine,
                    item.key.0,
                    item.key.1,
                    x,
                    y,
                    max_lag,
                    (start, end),
                    &fine_lookup,
                    fronts_ref,
                );
                let slot = item.corr.get_or_insert_with(|| CorrSeries::zeros(0));
                item.grew = slot.capacity() < item.inc.corr().values().len();
                slot.copy_from(item.inc.corr());
                item.advanced = true;
            }
        });
        // Pairs skipped this refresh, for the dirty-root partition below:
        // a clean root's every support pair must have carried bitwise.
        let mut p1_skipped: HashSet<PairKey> = HashSet::new();
        for item in items {
            if let Some(st) = inc_state.as_mut() {
                st.stats.fine_pairs += 1;
                if item.skipped {
                    st.stats.fine_skipped += 1;
                    p1_skipped.insert(item.key);
                }
            }
            if item.advanced {
                if item.grew {
                    self.scratch.allocated += 1;
                } else {
                    self.scratch.reused += 1;
                }
                if let Some(corr) = item.corr {
                    self.corr_cache.insert(item.key, corr);
                }
            }
            self.incs.insert(item.key, item.inc);
        }

        // Phase 2 — path discovery (normalization + spike detection), one
        // root per worker, served from the precomputed series. Each pair
        // first reached this refresh belongs to exactly one client (hence
        // one worker), so its correlator is created in the worker's local
        // map — no lock — and merged back in stable root order.
        // With the incremental tier on, roots are first partitioned into
        // clean and dirty: a root is clean when the signal-edge
        // fingerprint is unchanged and every pair its last exploration
        // touched either stayed screened-out or carried its series
        // bitwise (Phase-1 skip). Exploration is deterministic in those
        // inputs, so a clean root's recompute would reproduce last
        // refresh's graph bit for bit — splice in the cached clone
        // instead and discover only the dirty subset.
        let record_touched = inc_state.is_some();
        let make_provider = || CachedProvider {
            cache: &self.corr_cache,
            engine,
            windows: &self.windows,
            fronts: &fronts,
            window: (start, end),
            fresh: HashMap::new(),
            screened: pruned.as_ref(),
            touched: record_touched.then(Vec::new),
        };
        let mut providers: Vec<CachedProvider<'_>> = Vec::new();
        let graphs: Vec<ServiceGraph> = if let Some(st) = inc_state.as_mut() {
            let reusable = st.prev.is_some() && st.fingerprint == fingerprint;
            let clean: Vec<bool> = self
                .roots
                .iter()
                .map(|root| {
                    reusable
                        && st.roots.get(root).is_some_and(|(_, support)| {
                            support.iter().all(|p| {
                                p1_skipped.contains(p)
                                    || (st.pruned.contains(p)
                                        && pruned.as_ref().is_some_and(|s| s.contains(p)))
                            })
                        })
                })
                .collect();
            st.stats.roots = self.roots.len() as u64;
            st.stats.reused_roots = clean.iter().filter(|&&c| c).count() as u64;
            let dirty_roots: Vec<(NodeId, NodeId)> = self
                .roots
                .iter()
                .zip(&clean)
                .filter(|&(_, &c)| !c)
                .map(|(&r, _)| r)
                .collect();
            let results = self.pathmap.discover_each_among(
                &signals,
                &dirty_roots,
                &self.universe,
                &self.labels,
                num_workers,
                make_provider,
            );
            // Reassemble in stable root order and rebuild the cache.
            let mut graphs = Vec::new();
            let mut cache = FxHashMap::default();
            let mut results = results.into_iter();
            for (&root, &is_clean) in self.roots.iter().zip(&clean) {
                if is_clean {
                    let entry = st.roots.get(&root).expect("clean root is cached").clone();
                    graphs.extend(entry.0.clone());
                    cache.insert(root, entry);
                } else {
                    let (graph, provider) = results.next().expect("one result per dirty root");
                    let mut support = provider.touched.clone().unwrap_or_default();
                    support.sort_unstable();
                    support.dedup();
                    graphs.extend(graph.clone());
                    cache.insert(root, (graph, support));
                    providers.push(provider);
                }
            }
            st.roots = cache;
            graphs
        } else {
            let (graphs, provs) = self.pathmap.discover_pooled_among(
                &signals,
                &self.roots,
                &self.universe,
                &self.labels,
                num_workers,
                make_provider,
            );
            providers = provs;
            graphs
        };
        for provider in providers {
            if let Some(scr) = &mut self.screening {
                // Pairs first reached this refresh enter the coarse tier
                // as active; their coarse correlator fills from scratch
                // (cheaply) on the next refresh.
                let coarse_lag = scr.coarse_lag;
                for &key in provider.fresh.keys() {
                    scr.coarse
                        .entry(key)
                        .or_insert_with(|| IncrementalCorrelator::new(coarse_lag));
                    scr.active.insert(key, true);
                }
            }
            self.incs.extend(provider.fresh);
        }
        // Snapshot this refresh's geometry, epochs, and pruned set: the
        // reference frame the next refresh's quiet predicate is proven
        // against. (The bounds and root caches were refreshed in place.)
        if let Some(mut st) = inc_state {
            st.prev = Some((start, end, data_end));
            st.epochs = self
                .windows
                .iter()
                .map(|(&edge, w)| (edge, w.epoch()))
                .collect();
            st.pruned = pruned.clone().unwrap_or_default();
            st.fingerprint = fingerprint;
            self.incremental = Some(st);
        }
        self.change.record(at, &graphs);
        if !graphs.is_empty() && !self.subscribers.is_empty() {
            let update = GraphUpdate {
                at,
                graphs: std::sync::Arc::new(graphs.clone()),
            };
            self.subscribers
                .retain(|tx| tx.send(update.clone()).is_ok());
        }
        graphs
    }

    /// The per-edge delay histories across refreshes.
    pub fn change_tracker(&self) -> &ChangeTracker {
        &self.change
    }

    /// Screening counters of the most recent refresh: how many tracked
    /// pairs the coarse tier examined and how many it pruned. `None` when
    /// screening is disabled.
    pub fn screening_stats(&self) -> Option<ScreeningStats> {
        self.screening.as_ref().map(|scr| scr.stats)
    }

    /// Counters of the activity-gated incremental tier's most recent
    /// refresh: how many coarse and fine pairs were skipped and how many
    /// root graphs were reused. `None` when [`PathmapConfig::incremental`]
    /// is off.
    pub fn incremental_stats(&self) -> Option<IncrementalStats> {
        self.incremental.as_ref().map(|st| st.stats)
    }

    /// Correlation-series buffer-reuse counters accumulated across
    /// refreshes (see [`ScratchCounters`]): in steady state `allocated`
    /// stops growing while `reused` keeps climbing, the observable form of
    /// the allocation-free correlate hot path.
    pub fn scratch_counters(&self) -> ScratchCounters {
        self.scratch
    }

    /// Declares this analyzer's position in a sharded tier: `shard` of
    /// `of`. Stamped into every hint snapshot so tracers can intersect the
    /// verdicts of all shards (an edge is only decimated once every shard
    /// agrees). The default is `0` of `1` — a lone analyzer's hints take
    /// effect directly.
    ///
    /// # Panics
    ///
    /// Panics if `shard >= of` or `of == 0`.
    pub fn set_reduction_shard(&mut self, shard: u32, of: u32) {
        assert!(of > 0 && shard < of, "invalid shard {shard} of {of}");
        if let Some(red) = &mut self.reduction {
            red.shard = shard;
            red.of = of;
        }
    }

    /// Takes the pending hint snapshot, if the demoted-edge set changed
    /// since the last call (or [`refresh`](Self::refresh) never demoted
    /// anything — then always `None`). The snapshot is full-state and
    /// idempotent; the driver routes it to every tracer agent, directly
    /// in process or as a `Hint` control frame over the transport.
    pub fn take_hints(&mut self) -> Option<HintState> {
        let red = self.reduction.as_mut()?;
        if !red.dirty {
            return None;
        }
        red.dirty = false;
        let mut edges: Vec<((u32, u32), u64)> = red
            .status
            .iter()
            .filter_map(|(&(a, b), &status)| match status {
                EdgeStatus::Demoted { level } => {
                    Some(((a.index() as u32, b.index() as u32), level))
                }
                // Promoting edges leave the snapshot — that is exactly
                // what tells the tracer to backfill and resume fine.
                EdgeStatus::Promoting => None,
            })
            .collect();
        edges.sort_unstable();
        Some(HintState {
            shard: red.shard,
            of: red.of,
            edges,
        })
    }

    /// Counters of the edge-side reduction tier; `None` when
    /// [`PathmapConfig::reduction`] is off.
    pub fn reduction_stats(&self) -> Option<ReductionStats> {
        self.reduction.as_ref().map(|red| ReductionStats {
            demotions: red.demotions,
            promotions: red.promotions,
            reduced_now: red.status.len(),
        })
    }
}

/// One refresh's reduction decisions (see the Phase 0.5 comment in
/// [`OnlineAnalyzer::refresh`]): promote-by-overlap first, then
/// demote-by-screening, with each verdict extended to the edge's
/// response stream (the reverse direction is never a screening pair, so
/// it rides its request stream's status both ways). A free function
/// over the analyzer's disjoint fields so it can run while `refresh`
/// holds the engine borrow.
///
/// Promotion is sound by the screening cover bound: zero support overlap
/// between a root's coarse image and the edge's coarse image across the
/// admissible coarse lags certifies every fine product in the window is
/// zero (see [`screen::coarse_overlap`]) — overlap is the *only* event
/// that could make a demoted edge correlate again, so firing on any
/// overlap can never leave a true edge demoted.
#[allow(clippy::too_many_arguments)]
fn reduction_pass(
    red: &mut ReductionState,
    scr: &mut ScreeningState,
    windows: &FxHashMap<(NodeId, NodeId), SlidingWindow>,
    incs: &mut FxHashMap<PairKey, IncrementalCorrelator>,
    corr_cache: &mut FxHashMap<PairKey, CorrSeries>,
    fronts: &HashMap<NodeId, NodeId>,
    window_ticks: u64,
    max_lag: u64,
    capacity: u64,
) {
    // Promote: any support overlap between a root's coarse source image
    // and a demoted edge's coarse store revives the edge.
    let mut demoted: Vec<((NodeId, NodeId), u64)> = red
        .status
        .iter()
        .filter_map(|(&edge, &status)| match status {
            EdgeStatus::Demoted { level } => Some((edge, level)),
            EdgeStatus::Promoting => None,
        })
        .collect();
    demoted.sort_unstable();
    // Root sources decimated once per (client, level), not per edge.
    let mut src_cache: FxHashMap<(NodeId, u64), RleSeries> = FxHashMap::default();
    for (edge, level) in demoted {
        let Some(store) = red.stores.get(&edge) else {
            continue;
        };
        let y = store.win.coarse().series();
        if y.support() == 0 {
            continue;
        }
        let coarse_lags = screen::coarse_lag_bound(max_lag, level);
        let hit = fronts.iter().any(|(&client, &front)| {
            let x = src_cache.entry((client, level)).or_insert_with(|| {
                windows
                    .get(&(client, front))
                    .map(|w| w.series().decimate(level))
                    .unwrap_or_else(|| RleSeries::empty(Tick::ZERO, 0))
            });
            screen::coarse_overlap(x, &y, coarse_lags)
        });
        if hit {
            red.status.insert(edge, EdgeStatus::Promoting);
            red.dirty = true;
            red.promotions += 1;
            // The response stream was demoted with this edge (see the
            // demote pass below); its density is the request's shifted by
            // the service time, so the overlap that revives the request
            // revives the conversation — promote both sides together
            // rather than waiting for the reverse image to clear the
            // coarse-lag test on its own.
            let rev = (edge.1, edge.0);
            if matches!(red.status.get(&rev), Some(EdgeStatus::Demoted { .. })) {
                red.status.insert(rev, EdgeStatus::Promoting);
                red.promotions += 1;
            }
        }
    }

    // Demote: an edge is a candidate when screening currently prunes the
    // (client, edge) pair of *every* root this shard owns — and the edge
    // carries no root signal itself. Candidates must stay cold for
    // `patience` consecutive refreshes before the hint fires.
    if fronts.is_empty() {
        return;
    }
    let mut edges: Vec<(NodeId, NodeId)> = windows.keys().copied().collect();
    edges.sort_unstable();
    for edge in edges {
        if red.status.contains_key(&edge) {
            continue;
        }
        let is_root_signal = fronts.contains_key(&edge.0);
        let all_dead = !is_root_signal
            && fronts
                .keys()
                .all(|&client| scr.active.get(&(client, edge)) == Some(&false));
        if !all_dead {
            red.cold.remove(&edge);
            continue;
        }
        let cold = red.cold.entry(edge).or_insert(0);
        *cold += 1;
        if *cold < red.cfg.patience {
            continue;
        }
        red.cold.remove(&edge);
        // Adaptive level: denser edges cost more bytes, so decimate them
        // harder; sparse edges keep the base factor (their coarse image
        // is nearly free either way).
        let support = windows
            .get(&edge)
            .map(|w| w.series().support())
            .unwrap_or(0);
        let frac = support as f64 / window_ticks.max(1) as f64;
        let level = if frac >= 0.2 {
            4 * red.cfg.base_level
        } else if frac >= 0.05 {
            2 * red.cfg.base_level
        } else {
            red.cfg.base_level
        };
        demote_edge(red, scr, incs, corr_cache, edge, level, capacity);
        // A reduction verdict is about the conversation, not one
        // direction of it: the response stream `(b, a)` is never a
        // screening pair (discovery correlates roots against request
        // edges only), so it inherits the request stream's demotion —
        // otherwise every pruned edge keeps shipping its return path at
        // full resolution forever. The reverse edge stays fine when it
        // carries a root signal or is itself screened active for any
        // root (mutual-traffic topologies).
        let rev = (edge.1, edge.0);
        if rev != edge
            && !red.status.contains_key(&rev)
            && !fronts.contains_key(&rev.0)
            && !fronts
                .keys()
                .any(|&client| scr.active.get(&(client, rev)) == Some(&true))
        {
            if let Some(w) = windows.get(&rev) {
                let frac = w.series().support() as f64 / window_ticks.max(1) as f64;
                let level = if frac >= 0.2 {
                    4 * red.cfg.base_level
                } else if frac >= 0.05 {
                    2 * red.cfg.base_level
                } else {
                    red.cfg.base_level
                };
                demote_edge(red, scr, incs, corr_cache, rev, level, capacity);
            }
        }
    }
}

/// Flips one edge to [`EdgeStatus::Demoted`] and drops every fine and
/// coarse pair state touching it — the fresh [`CoarseStore`] is the
/// edge's only remaining footprint.
fn demote_edge(
    red: &mut ReductionState,
    scr: &mut ScreeningState,
    incs: &mut FxHashMap<PairKey, IncrementalCorrelator>,
    corr_cache: &mut FxHashMap<PairKey, CorrSeries>,
    edge: (NodeId, NodeId),
    level: u64,
    capacity: u64,
) {
    red.status.insert(edge, EdgeStatus::Demoted { level });
    red.stores.insert(edge, CoarseStore::new(level, capacity));
    red.cold.remove(&edge);
    red.dirty = true;
    red.demotions += 1;
    incs.retain(|&(_, e), _| e != edge);
    scr.coarse.retain(|&(_, e), _| e != edge);
    scr.active.retain(|&(_, e), _| e != edge);
    scr.decimated.remove(&edge);
    corr_cache.retain(|&(_, e), _| e != edge);
}

/// Advances one `(client, edge)` correlator to the source window `window`;
/// the refreshed lagged products are left in `inc.corr()`.
///
/// This is the single code path for correlator maintenance: the sharded
/// pre-advance and the serial fallback both call it with the same
/// arguments, which is what makes parallel refreshes bitwise identical to
/// serial ones. The retained history is reached through `lookup` so the
/// same code advances both tiers: the fine tier passes the raw sliding
/// windows, the coarse screening tier passes their decimated twins.
///
/// `engine` serves only the cold path — a pair's first window (or a window
/// after a stream heal) is a one-shot from-scratch computation where any
/// stateless engine applies; warm windows stay on the exact incremental
/// RLE corrections.
/// Whether the windows in quiet-flag map `quiet` say both signals of
/// `key` — the client's root signal on its `(client, front)` edge and the
/// candidate edge itself — were quiet this refresh. Windows with no flag
/// (newly appeared) are never quiet.
fn pair_is_quiet(
    quiet: &FxHashMap<(NodeId, NodeId), bool>,
    fronts: &HashMap<NodeId, NodeId>,
    key: PairKey,
) -> bool {
    fronts
        .get(&key.0)
        .is_some_and(|&front| quiet.get(&(key.0, front)).copied().unwrap_or(false))
        && quiet.get(&key.1).copied().unwrap_or(false)
}

/// Whether [`advance_pair`] would take the exact incremental path for
/// this pair (as opposed to a from-scratch refill): the recorded window
/// overlaps the target window correctly and both streams retain history
/// back to the recorded start. The activity-gated skip and the batched
/// refill pre-pass both consult this predicate so their decisions mirror
/// the maintenance path exactly.
fn advance_possible<'w>(
    inc: &IncrementalCorrelator,
    client: NodeId,
    edge: (NodeId, NodeId),
    max_lag: u64,
    window: (Tick, Tick),
    lookup: &impl Fn((NodeId, NodeId)) -> Option<&'w SlidingWindow>,
    fronts: &HashMap<NodeId, NodeId>,
) -> bool {
    if inc.max_lag() != max_lag {
        return false;
    }
    let (ws, we) = window;
    let x_window = fronts
        .get(&client)
        .and_then(|&front| lookup((client, front)));
    match (inc.window(), x_window) {
        (Some((s, e)), Some(xw)) => {
            s <= ws && e >= ws && e <= we && xw.start() <= s && {
                // y history for the eviction span [s, ws + L).
                lookup(edge).map(|yw| yw.start() <= s).unwrap_or(false)
            }
        }
        _ => false,
    }
}

#[allow(clippy::too_many_arguments)]
fn advance_pair<'w>(
    inc: &mut IncrementalCorrelator,
    engine: &dyn Correlator,
    client: NodeId,
    edge: (NodeId, NodeId),
    x: &RleSeries,
    y: &RleSeries,
    max_lag: u64,
    window: (Tick, Tick),
    lookup: &impl Fn((NodeId, NodeId)) -> Option<&'w SlidingWindow>,
    fronts: &HashMap<NodeId, NodeId>,
) {
    let (ws, we) = window;
    if inc.max_lag() != max_lag {
        *inc = IncrementalCorrelator::new(max_lag);
    }
    // Determine whether an exact incremental advance is possible. The x
    // signal is always the client's root signal, retained on the
    // (client, front) window — needed for eviction corrections that
    // reach before the current view.
    if advance_possible(inc, client, edge, max_lag, window, lookup, fronts) {
        let (s, e) = inc.window().expect("checked");
        let xw = fronts
            .get(&client)
            .and_then(|&front| lookup((client, front)))
            .expect("checked");
        let yw = lookup(edge).expect("checked");
        let y_horizon = yw.end();
        if e < we {
            inc.append(&xw.view(e, we), &yw.view(e, y_horizon));
        }
        inc.evict_to(
            ws,
            &xw.view(s, ws),
            &yw.view(s, (ws + max_lag).min(y_horizon)),
        );
    } else {
        inc.refill(engine, x, y);
    }
}

/// One discovery worker's view of the refresh's correlation evidence:
/// series precomputed by the sharded advance phase, plus a worker-local
/// map of correlators created for pairs first reached during this
/// discovery pass (harvested and merged by the analyzer afterwards — a
/// pair's client belongs to exactly one root, so local maps never
/// conflict).
struct CachedProvider<'a> {
    cache: &'a FxHashMap<PairKey, CorrSeries>,
    /// Engine for the one-shot cold computation of first-reached pairs.
    engine: &'a dyn Correlator,
    windows: &'a FxHashMap<(NodeId, NodeId), SlidingWindow>,
    /// Each client's front-end node: the client's source signal lives on
    /// the `(client, front)` edge.
    fronts: &'a HashMap<NodeId, NodeId>,
    /// Current source window.
    window: (Tick, Tick),
    fresh: HashMap<PairKey, IncrementalCorrelator>,
    /// Pairs the coarse screening tier pruned this refresh: discovery
    /// skips them without touching (or creating) fine correlators.
    screened: Option<&'a HashSet<PairKey>>,
    /// When the incremental tier is on, every pair this root's
    /// exploration consulted — the root's *support set*, which decides
    /// whether its cached graph may be reused next refresh.
    touched: Option<Vec<PairKey>>,
}

impl CorrelationProvider for CachedProvider<'_> {
    fn correlate(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries {
        if let Some(touched) = &mut self.touched {
            touched.push((client, edge));
        }
        if let Some(corr) = self.cache.get(&(client, edge)) {
            return corr.clone();
        }
        let inc = self
            .fresh
            .entry((client, edge))
            .or_insert_with(|| IncrementalCorrelator::new(max_lag));
        let windows = self.windows;
        advance_pair(
            inc,
            self.engine,
            client,
            edge,
            x,
            y,
            max_lag,
            self.window,
            &move |e| windows.get(&e),
            self.fronts,
        );
        inc.corr().clone()
    }

    fn screened_out(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        _x: &RleSeries,
        _y: &RleSeries,
        _max_lag: u64,
    ) -> bool {
        if let Some(touched) = &mut self.touched {
            touched.push((client, edge));
        }
        self.screened
            .is_some_and(|pruned| pruned.contains(&(client, edge)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathmap::roots_from_topology;
    use crate::tracer::TracerAgent;
    use crossbeam::channel::unbounded;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;
    use std::collections::HashSet;

    fn cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .build()
    }

    fn two_tier(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let db = t.service("db", ServiceConfig::new(DelayDist::exponential_millis(8)));
        let cli = t.client("cli", class, web, Workload::poisson(40.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    /// Drives a sim with tracer agents on all services and an analyzer,
    /// returning the graphs of the last refresh.
    fn drive_online(
        mut sim: Simulation,
        config: PathmapConfig,
        total_secs: u64,
    ) -> (Vec<ServiceGraph>, OnlineAnalyzer) {
        let roots = roots_from_topology(sim.topology());
        let universe = roots.iter().map(|&(c, _)| c).collect();
        let (graphs, analyzer, _) =
            drive_online_among(&mut sim, config, total_secs, roots, universe);
        (graphs, analyzer)
    }

    /// Like [`drive_online`] but with an explicit owned-root subset and
    /// client universe (the sharded-analyzer shape), returning the agents
    /// too. Routes analyzer hint snapshots back to every agent after each
    /// refresh — the in-process form of the reduction feedback loop.
    fn drive_online_among(
        sim: &mut Simulation,
        config: PathmapConfig,
        total_secs: u64,
        roots: Vec<(NodeId, NodeId)>,
        universe: HashSet<NodeId>,
    ) -> (Vec<ServiceGraph>, OnlineAnalyzer, Vec<TracerAgent>) {
        let (tx, rx) = unbounded();
        let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
        let mut agents: Vec<TracerAgent> = sim
            .topology()
            .services()
            .into_iter()
            .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
            .collect();
        let mut analyzer = OnlineAnalyzer::with_universe(
            config.clone(),
            roots,
            universe,
            NodeLabels::from_topology(sim.topology()),
            rx,
        );
        let mut last = Vec::new();
        for step in 1..=(total_secs / 2) {
            let now = Nanos::from_secs(step * 2);
            sim.run_until(now);
            // Drain 1 s behind the clock (safely past ω).
            let drain = Tick::new(step * 2_000 - 1_000);
            for a in &mut agents {
                a.poll(sim.captures(), drain);
            }
            analyzer.ingest();
            let graphs = analyzer.refresh(now);
            if let Some(hint) = analyzer.take_hints() {
                for a in &mut agents {
                    a.apply_hint_state(&hint);
                }
            }
            if !graphs.is_empty() {
                last = graphs;
            }
        }
        (last, analyzer, agents)
    }

    fn run_online(seed: u64, total_secs: u64) -> (Vec<ServiceGraph>, OnlineAnalyzer) {
        drive_online(two_tier(seed), cfg(), total_secs)
    }

    /// Like [`two_tier`] but with a single deterministic burst: arrivals
    /// every 25 ms for the first 10 s, then total silence — long enough
    /// for every nonzero tick to leave retention so the activity gate's
    /// quiet predicate can fire on the tail refreshes.
    fn two_tier_bursty(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let db = t.service("db", ServiceConfig::new(DelayDist::exponential_millis(8)));
        let arrivals: Vec<Nanos> = (0..400).map(|i| Nanos::from_millis(i * 25)).collect();
        let cli = t.client("cli", class, web, Workload::trace(arrivals));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    /// The activity gate must actually *skip* once the deployment goes
    /// idle (non-vacuous coverage of the slide path), while the final
    /// graphs stay equivalent to the eager run.
    #[test]
    fn incremental_skips_idle_windows_and_matches_eager() {
        let cfg_on = PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .incremental(true)
            .build();
        let (eager, _) = drive_online(two_tier_bursty(5), cfg(), 80);
        let (gated, analyzer) = drive_online(two_tier_bursty(5), cfg_on, 80);
        assert_graphs_equivalent(&eager, &gated);
        let stats = analyzer.incremental_stats().expect("incremental tier on");
        assert!(
            stats.fine_skipped > 0,
            "deep-idle refresh skipped no fine pair: {stats:?}"
        );
        assert!(
            stats.reused_roots > 0,
            "deep-idle refresh reused no root graph: {stats:?}"
        );
    }

    /// Asserts two graph sets are structurally identical (edge sets, spike
    /// lags, hop delays, bottleneck flags) with spike strengths within
    /// 1e-9 — the tolerance for promoted pairs whose full-resolution
    /// recompute sums the same products in a different order.
    fn assert_graphs_equivalent(plain: &[ServiceGraph], screened: &[ServiceGraph]) {
        assert_eq!(plain.len(), screened.len(), "graph count differs");
        for (ga, gb) in plain.iter().zip(screened) {
            assert_eq!(ga.client_label, gb.client_label);
            let key = |g: &ServiceGraph| {
                let mut edges: Vec<_> = g
                    .edges()
                    .iter()
                    .map(|e| {
                        (
                            (e.from, e.to),
                            e.spikes.iter().map(|s| s.delay).collect::<Vec<_>>(),
                            e.hop_delay,
                        )
                    })
                    .collect();
                edges.sort();
                edges
            };
            assert_eq!(key(ga), key(gb), "edge structure differs:\n{ga}\nvs\n{gb}");
            let bn = |g: &ServiceGraph| {
                let mut v: Vec<_> = g
                    .vertices()
                    .iter()
                    .map(|v| (v.label.clone(), v.bottleneck))
                    .collect();
                v.sort();
                v
            };
            assert_eq!(bn(ga), bn(gb), "bottleneck flags differ");
            for ea in ga.edges() {
                let eb = gb.edge(ea.from, ea.to).expect("edge sets already equal");
                for (sa, sb) in ea.spikes.iter().zip(&eb.spikes) {
                    assert!(
                        (sa.strength - sb.strength).abs() < 1e-9,
                        "strength drift: {} vs {}",
                        sa.strength,
                        sb.strength
                    );
                }
            }
        }
    }

    #[test]
    fn online_pipeline_discovers_the_path() {
        let (graphs, _) = run_online(5, 30);
        assert_eq!(graphs.len(), 1, "no graphs produced online");
        let g = &graphs[0];
        assert!(g.has_edge_between("web", "db"), "missing web->db:\n{g}");
        assert!(g.has_edge_between("db", "web"));
        assert!(g.has_edge_between("web", "cli"));
    }

    #[test]
    fn refresh_before_enough_data_is_empty() {
        let (_tx, rx) = unbounded::<TracerFrame>();
        let mut analyzer = OnlineAnalyzer::new(cfg(), vec![], NodeLabels::default(), rx);
        assert!(analyzer.refresh(Nanos::from_secs(1)).is_empty());
    }

    #[test]
    fn incremental_matches_offline_discovery() {
        // The online (incremental) analysis must find the same edges as an
        // offline from-scratch pass over the same horizon.
        let (online, analyzer) = run_online(7, 30);
        let mut sim = two_tier(7);
        sim.run_until(Nanos::from_secs(30));
        let config = analyzer.config().clone();
        let pm = Pathmap::new(config.clone());
        // Offline window aligned with the analyzer's final refresh: the
        // analyzer drained to 29s, so analyze as of 29s.
        let signals = crate::signals::EdgeSignals::from_capture(
            sim.captures(),
            &config,
            Nanos::from_secs(29),
        );
        let offline = pm.discover(
            &signals,
            &roots_from_topology(sim.topology()),
            &NodeLabels::from_topology(sim.topology()),
        );
        let edges = |gs: &[ServiceGraph]| {
            let mut v: Vec<(NodeId, NodeId)> =
                gs[0].edges().iter().map(|e| (e.from, e.to)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(edges(&online), edges(&offline));
    }

    #[test]
    fn subscribers_receive_refreshes() {
        let mut sim = two_tier(13);
        let (tx, rx) = unbounded();
        let config = cfg();
        let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
        let mut agents: Vec<TracerAgent> = sim
            .topology()
            .services()
            .into_iter()
            .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
            .collect();
        let mut analyzer = OnlineAnalyzer::new(
            config,
            roots_from_topology(sim.topology()),
            NodeLabels::from_topology(sim.topology()),
            rx,
        );
        let sub = analyzer.subscribe();
        let dropped = analyzer.subscribe();
        drop(dropped); // disconnected subscriber must not break publishing
        for step in 1..=10u64 {
            let now = Nanos::from_secs(step * 2);
            sim.run_until(now);
            for a in &mut agents {
                a.poll(
                    sim.captures(),
                    e2eprof_timeseries::Tick::new(step * 2_000 - 1_000),
                );
            }
            analyzer.ingest();
            let _ = analyzer.refresh(now);
        }
        let updates: Vec<GraphUpdate> = sub.try_iter().collect();
        assert!(updates.len() >= 3, "got {} updates", updates.len());
        assert!(updates.windows(2).all(|w| w[0].at < w[1].at));
        assert!(!updates.last().unwrap().graphs.is_empty());
    }

    #[test]
    fn screened_online_matches_unscreened() {
        for seed in [5, 9] {
            let screened_cfg = PathmapConfig::builder()
                .window(Nanos::from_secs(10))
                .refresh(Nanos::from_secs(2))
                .max_delay(Nanos::from_secs(1))
                .screening(crate::config::ScreeningConfig {
                    decimation: 8,
                    hysteresis: 0.5,
                })
                .build();
            let (plain, _) = run_online(seed, 30);
            let (screened, analyzer) = drive_online(two_tier(seed), screened_cfg, 30);
            assert_graphs_equivalent(&plain, &screened);
            // Dense Poisson traffic keeps every pair live; the coarse tier
            // still classified them all.
            let stats = analyzer.screening_stats().expect("screening enabled");
            assert!(stats.candidates > 0, "stats: {stats:?}");
        }
    }

    #[test]
    fn online_screening_prunes_wide_fanout_and_matches() {
        let base = PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_millis(500))
            .build();
        let screened_cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_millis(500))
            .screening(crate::config::ScreeningConfig {
                decimation: 8,
                hysteresis: 0.5,
            })
            .build();
        let (plain, _) = drive_online(crate::testutil::wide_fanout_sim(8, 17), base, 30);
        let (screened, analyzer) =
            drive_online(crate::testutil::wide_fanout_sim(8, 17), screened_cfg, 30);
        assert_graphs_equivalent(&plain, &screened);
        let stats = analyzer.screening_stats().expect("screening enabled");
        assert!(
            stats.pruned > 0,
            "expected dead backends pruned online, stats: {stats:?}"
        );
        assert!(stats.candidates > stats.pruned, "stats: {stats:?}");
    }

    #[test]
    fn v2_wire_matches_v1_graphs_exactly() {
        // The batched zero-copy ingest path must be observationally
        // identical to the per-series v1 path — including with screening,
        // which exercises the batch-entry materialization fallback.
        let (plain, _) = run_online(5, 30);
        let v2_cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .wire(crate::config::WireVersion::V2)
            .build();
        let (v2, _) = drive_online(two_tier(5), v2_cfg, 30);
        assert_graphs_equivalent(&plain, &v2);
        let v2_screened_cfg = PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .wire(crate::config::WireVersion::V2)
            .screening(crate::config::ScreeningConfig {
                decimation: 8,
                hysteresis: 0.5,
            })
            .build();
        let (v2_screened, analyzer) = drive_online(two_tier(5), v2_screened_cfg, 30);
        assert_graphs_equivalent(&plain, &v2_screened);
        assert!(analyzer.screening_stats().expect("screening on").candidates > 0);
    }

    #[test]
    fn steady_state_refresh_stops_allocating_series_buffers() {
        // Drive the online pipeline past warm-up, snapshot the buffer
        // counters, then keep refreshing: the correlate maintenance path
        // must only *reuse* retained buffers from then on.
        let mut sim = two_tier(11);
        let config = cfg();
        let (tx, rx) = unbounded();
        let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
        let mut agents: Vec<TracerAgent> = sim
            .topology()
            .services()
            .into_iter()
            .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
            .collect();
        let mut analyzer = OnlineAnalyzer::new(
            config.clone(),
            roots_from_topology(sim.topology()),
            NodeLabels::from_topology(sim.topology()),
            rx,
        );
        let mut drive = |analyzer: &mut OnlineAnalyzer,
                         sim: &mut Simulation,
                         steps: std::ops::RangeInclusive<u64>| {
            for step in steps {
                let now = Nanos::from_secs(step * 2);
                sim.run_until(now);
                let drain = Tick::new(step * 2_000 - 1_000);
                for a in &mut agents {
                    a.poll(sim.captures(), drain);
                }
                analyzer.ingest();
                let _ = analyzer.refresh(now);
            }
        };
        drive(&mut analyzer, &mut sim, 1..=12);
        let warm = analyzer.scratch_counters();
        assert!(warm.allocated > 0, "no pair ever advanced: {warm:?}");
        drive(&mut analyzer, &mut sim, 13..=20);
        let after = analyzer.scratch_counters();
        assert_eq!(
            after.allocated, warm.allocated,
            "steady-state refreshes allocated series buffers: {warm:?} -> {after:?}"
        );
        assert!(
            after.reused > warm.reused,
            "no buffer reuse recorded: {warm:?} -> {after:?}"
        );
    }

    /// Fanout-test config: V2 wire + screening, optionally with the
    /// edge-reduction tier on top.
    fn fanout_cfg(reduction: Option<crate::config::ReductionConfig>) -> PathmapConfig {
        let mut b = PathmapConfig::builder()
            .window(Nanos::from_secs(20))
            .refresh(Nanos::from_secs(5))
            .max_delay(Nanos::from_millis(500))
            .wire(crate::config::WireVersion::V2)
            .screening(crate::config::ScreeningConfig {
                decimation: 8,
                hysteresis: 0.5,
            });
        if let Some(red) = reduction {
            b = b.reduction(red);
        }
        b.build()
    }

    /// Runs a fanout sim owning only the first root (`cli`) — the sharded
    /// shape under which the noise tier's edges are dead for every owned
    /// root and hence demotable.
    fn run_fanout_owning_cli(
        mut sim: Simulation,
        config: PathmapConfig,
        total_secs: u64,
    ) -> (Vec<ServiceGraph>, OnlineAnalyzer, Vec<TracerAgent>) {
        let mut roots = roots_from_topology(sim.topology());
        roots.sort_unstable();
        let universe: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
        roots.truncate(1);
        drive_online_among(&mut sim, config, total_secs, roots, universe)
    }

    #[test]
    fn reduction_demotes_dead_fanout_and_matches_graphs() {
        let (plain, ..) = run_fanout_owning_cli(
            crate::testutil::wide_fanout_sim(8, 17),
            fanout_cfg(None),
            36,
        );
        let (reduced, analyzer, agents) = run_fanout_owning_cli(
            crate::testutil::wide_fanout_sim(8, 17),
            fanout_cfg(Some(crate::config::ReductionConfig::default())),
            36,
        );
        assert_graphs_equivalent(&plain, &reduced);
        let stats = analyzer.reduction_stats().expect("reduction enabled");
        assert!(
            stats.demotions > 0,
            "dead backends never demoted: {stats:?}"
        );
        assert!(stats.reduced_now > 0, "stats: {stats:?}");
        assert_eq!(stats.promotions, 0, "disjoint noise must stay demoted");
        // The hints actually reached the agents: at least one stream runs
        // decimated at the end of the run.
        let decimating = agents
            .iter()
            .any(|a| (0..12u32).any(|i| (0..12u32).any(|j| a.effective_level((i, j)) > 0)));
        assert!(decimating, "no agent applied a nonzero decimation level");
    }

    #[test]
    fn reduction_promotes_on_overlap_and_backfills() {
        let (plain, ..) = run_fanout_owning_cli(
            crate::testutil::shifting_fanout_sim(4, 23, 60.0),
            fanout_cfg(None),
            56,
        );
        let (reduced, analyzer, agents) = run_fanout_owning_cli(
            crate::testutil::shifting_fanout_sim(4, 23, 60.0),
            fanout_cfg(Some(crate::config::ReductionConfig::default())),
            56,
        );
        assert_graphs_equivalent(&plain, &reduced);
        let stats = analyzer.reduction_stats().expect("reduction enabled");
        assert!(stats.demotions > 0, "stats: {stats:?}");
        assert!(
            stats.promotions > 0,
            "overlapping noise must promote: {stats:?}"
        );
        let backfills: u64 = agents.iter().map(|a| a.backfills_emitted()).sum();
        assert!(backfills > 0, "promotes must trigger a fine backfill");
    }

    #[test]
    fn change_tracker_accumulates_refreshes() {
        let (_, analyzer) = run_online(9, 30);
        let keys: Vec<_> = analyzer.change_tracker().keys().collect();
        assert!(!keys.is_empty());
        let (c, f, t) = keys[0];
        assert!(analyzer.change_tracker().history(c, f, t).len() >= 2);
    }
}
