//! The central online analyzer.
//!
//! Consumes wire-encoded density chunks streamed by [`TracerAgent`]s,
//! maintains per-edge sliding windows, and republishes service graphs
//! every `ΔW`. Correlations are updated *incrementally*: each refresh only
//! processes the `ΔW` ticks appended and evicted since the previous
//! refresh (the optimization that keeps pathmap's per-refresh cost flat as
//! `W` grows — Fig. 9).
//!
//! [`TracerAgent`]: crate::tracer::TracerAgent

use crate::change::ChangeTracker;
use crate::config::PathmapConfig;
use crate::graph::{NodeLabels, ServiceGraph};
use crate::pathmap::{CorrelationProvider, Pathmap};
use crate::signals::EdgeSignals;
use crate::tracer::TracerFrame;
use crossbeam::channel::{Receiver, Sender};
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::window::SlidingWindow;
use e2eprof_timeseries::{wire, Nanos, RleSeries, Tick};
use e2eprof_xcorr::incremental::IncrementalCorrelator;
use e2eprof_xcorr::CorrSeries;
use std::collections::HashMap;

/// The online pathmap analyzer.
#[derive(Debug)]
pub struct OnlineAnalyzer {
    config: PathmapConfig,
    pathmap: Pathmap,
    roots: Vec<(NodeId, NodeId)>,
    labels: NodeLabels,
    rx: Receiver<TracerFrame>,
    windows: HashMap<(NodeId, NodeId), SlidingWindow>,
    incs: HashMap<(NodeId, (NodeId, NodeId)), IncrementalCorrelator>,
    change: ChangeTracker,
    /// Capacity of each sliding window, in ticks.
    capacity: u64,
    /// Subscribers receiving every refresh's graphs.
    subscribers: Vec<Sender<GraphUpdate>>,
}

/// One published refresh: the paper's envisioned "pluggable" service
/// interface — subscribers "receive real-time information about their
/// service paths and systems' health in general" (Section 5).
#[derive(Debug, Clone)]
pub struct GraphUpdate {
    /// Wall-clock label of the refresh.
    pub at: Nanos,
    /// The refreshed service graphs (shared, immutable).
    pub graphs: std::sync::Arc<Vec<ServiceGraph>>,
}

impl OnlineAnalyzer {
    /// Creates an analyzer fed by `rx`.
    pub fn new(
        config: PathmapConfig,
        roots: Vec<(NodeId, NodeId)>,
        labels: NodeLabels,
        rx: Receiver<TracerFrame>,
    ) -> Self {
        // Retain enough history for the source window, the lag horizon,
        // and one refresh interval of eviction corrections.
        let capacity = config.window_ticks() + config.max_lag() + 2 * config.refresh_ticks();
        let pathmap = Pathmap::new(config.clone());
        OnlineAnalyzer {
            config,
            pathmap,
            roots,
            labels,
            rx,
            windows: HashMap::new(),
            incs: HashMap::new(),
            change: ChangeTracker::new(),
            capacity,
            subscribers: Vec::new(),
        }
    }

    /// Subscribes to refresh results. Every non-empty refresh is published
    /// to all live subscribers; disconnected receivers are dropped
    /// silently.
    pub fn subscribe(&mut self) -> Receiver<GraphUpdate> {
        let (tx, rx) = crossbeam::channel::unbounded();
        self.subscribers.push(tx);
        rx
    }

    /// The analysis configuration.
    pub fn config(&self) -> &PathmapConfig {
        &self.config
    }

    /// Drains all pending tracer frames into the sliding windows. Returns
    /// the number of frames ingested.
    ///
    /// Stream discontinuities heal automatically: a restarted tracer's
    /// replayed history is deduplicated (only novel ticks append), and a
    /// true gap (frames lost in transit) resets that edge's window, with
    /// the affected incremental correlators falling back to a from-scratch
    /// computation on the next refresh.
    ///
    /// # Panics
    ///
    /// Panics if a frame fails to decode — a tracer bug, not a recoverable
    /// condition.
    pub fn ingest(&mut self) -> usize {
        let mut count = 0;
        let capacity = self.capacity;
        while let Ok(frame) = self.rx.try_recv() {
            let chunk = wire::decode(&frame.payload).expect("undecodable tracer frame");
            let healed = self
                .windows
                .entry(frame.edge)
                .or_insert_with(|| SlidingWindow::new(capacity))
                .append_or_reset(&chunk);
            if healed {
                // Invalidate correlators involving the reset edge.
                self.incs
                    .retain(|&(client, edge), _| edge != frame.edge && client != frame.edge.0);
            }
            count += 1;
        }
        count
    }

    /// The newest tick for which *every* stream has data (streams drained
    /// to different points can only be analyzed up to the common prefix).
    pub fn common_end(&self) -> Option<Tick> {
        self.windows.values().map(|w| w.end()).min()
    }

    /// Runs one refresh: discovers the current service graphs from the
    /// retained windows and records them in the change tracker under the
    /// wall-clock label `at`.
    ///
    /// Returns an empty vec until enough data is buffered for one full
    /// analysis window.
    pub fn refresh(&mut self, at: Nanos) -> Vec<ServiceGraph> {
        let Some(data_end) = self.common_end() else {
            return Vec::new();
        };
        let max_lag = self.config.max_lag();
        let window_ticks = self.config.window_ticks();
        if data_end.index() < max_lag + window_ticks {
            return Vec::new();
        }
        let end = data_end.saturating_sub(max_lag);
        let start = end.saturating_sub(window_ticks);

        // Materialize the per-edge signal views.
        let mut signals_map = HashMap::new();
        for (&edge, window) in &self.windows {
            signals_map.insert(edge, window.view(start, data_end));
        }
        let signals =
            EdgeSignals::from_parts(self.config.quanta(), (start, end), max_lag, signals_map);

        let fronts: HashMap<NodeId, NodeId> = self.roots.iter().copied().collect();
        let mut provider = IncrementalProvider {
            windows: &self.windows,
            incs: &mut self.incs,
            window: (start, end),
            fronts,
        };
        let graphs = self
            .pathmap
            .discover_with(&signals, &self.roots, &self.labels, &mut provider);
        self.change.record(at, &graphs);
        if !graphs.is_empty() && !self.subscribers.is_empty() {
            let update = GraphUpdate {
                at,
                graphs: std::sync::Arc::new(graphs.clone()),
            };
            self.subscribers
                .retain(|tx| tx.send(update.clone()).is_ok());
        }
        graphs
    }

    /// The per-edge delay histories across refreshes.
    pub fn change_tracker(&self) -> &ChangeTracker {
        &self.change
    }
}

/// Correlation provider that maintains one incremental correlator per
/// `(client, edge)` pair, advancing it by the window delta instead of
/// recomputing — with a from-scratch fallback whenever the retained
/// history cannot support an exact advance.
struct IncrementalProvider<'a> {
    windows: &'a HashMap<(NodeId, NodeId), SlidingWindow>,
    incs: &'a mut HashMap<(NodeId, (NodeId, NodeId)), IncrementalCorrelator>,
    /// Current source window.
    window: (Tick, Tick),
    /// Each client's front-end node: the client's source signal lives on
    /// the `(client, front)` edge.
    fronts: HashMap<NodeId, NodeId>,
}

impl CorrelationProvider for IncrementalProvider<'_> {
    fn correlate(
        &mut self,
        client: NodeId,
        edge: (NodeId, NodeId),
        x: &RleSeries,
        y: &RleSeries,
        max_lag: u64,
    ) -> CorrSeries {
        let (ws, we) = self.window;
        let inc = self
            .incs
            .entry((client, edge))
            .or_insert_with(|| IncrementalCorrelator::new(max_lag));
        if inc.max_lag() != max_lag {
            *inc = IncrementalCorrelator::new(max_lag);
        }
        // The x signal is always the client's root signal, retained on the
        // (client, front) window — needed for eviction corrections that
        // reach before the current view.
        let x_window = self
            .fronts
            .get(&client)
            .and_then(|front| self.windows.get(&(client, *front)));
        // Determine whether an exact incremental advance is possible.
        let advance_ok = match (inc.window(), x_window) {
            (Some((s, e)), Some(xw)) => {
                s <= ws && e >= ws && e <= we && xw.start() <= s && {
                    // y history for the eviction span [s, ws + L).
                    self.windows
                        .get(&edge)
                        .map(|yw| yw.start() <= s)
                        .unwrap_or(false)
                }
            }
            _ => false,
        };
        if advance_ok {
            let (s, e) = inc.window().expect("checked");
            let xw = x_window.expect("checked");
            let yw = self.windows.get(&edge).expect("checked");
            let y_horizon = yw.end();
            if e < we {
                inc.append(&xw.view(e, we), &yw.view(e, y_horizon));
            }
            inc.evict_to(ws, &xw.view(s, ws), &yw.view(s, (ws + max_lag).min(y_horizon)));
        } else {
            inc.reset();
            inc.append(x, y);
        }
        inc.corr().clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pathmap::roots_from_topology;
    use crate::tracer::TracerAgent;
    use crossbeam::channel::unbounded;
    use e2eprof_netsim::prelude::*;
    use e2eprof_netsim::Route;
    use std::collections::HashSet;

    fn cfg() -> PathmapConfig {
        PathmapConfig::builder()
            .window(Nanos::from_secs(10))
            .refresh(Nanos::from_secs(2))
            .max_delay(Nanos::from_secs(1))
            .build()
    }

    fn two_tier(seed: u64) -> Simulation {
        let mut t = TopologyBuilder::new();
        let class = t.service_class("c");
        let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
        let db = t.service("db", ServiceConfig::new(DelayDist::exponential_millis(8)));
        let cli = t.client("cli", class, web, Workload::poisson(40.0));
        t.connect(cli, web, DelayDist::constant_millis(1));
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        Simulation::new(t.build().unwrap(), seed)
    }

    /// Drives a sim with tracer agents on all services and an analyzer,
    /// returning the graphs of the last refresh.
    fn run_online(seed: u64, total_secs: u64) -> (Vec<ServiceGraph>, OnlineAnalyzer) {
        let mut sim = two_tier(seed);
        let (tx, rx) = unbounded();
        let config = cfg();
        let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
        let mut agents: Vec<TracerAgent> = sim
            .topology()
            .services()
            .into_iter()
            .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
            .collect();
        let mut analyzer = OnlineAnalyzer::new(
            config.clone(),
            roots_from_topology(sim.topology()),
            NodeLabels::from_topology(sim.topology()),
            rx,
        );
        let mut last = Vec::new();
        for step in 1..=(total_secs / 2) {
            let now = Nanos::from_secs(step * 2);
            sim.run_until(now);
            // Drain 1 s behind the clock (safely past ω).
            let drain = Tick::new(step * 2_000 - 1_000);
            for a in &mut agents {
                a.poll(sim.captures(), drain);
            }
            analyzer.ingest();
            let graphs = analyzer.refresh(now);
            if !graphs.is_empty() {
                last = graphs;
            }
        }
        (last, analyzer)
    }

    #[test]
    fn online_pipeline_discovers_the_path() {
        let (graphs, _) = run_online(5, 30);
        assert_eq!(graphs.len(), 1, "no graphs produced online");
        let g = &graphs[0];
        assert!(g.has_edge_between("web", "db"), "missing web->db:\n{g}");
        assert!(g.has_edge_between("db", "web"));
        assert!(g.has_edge_between("web", "cli"));
    }

    #[test]
    fn refresh_before_enough_data_is_empty() {
        let (_tx, rx) = unbounded::<TracerFrame>();
        let mut analyzer = OnlineAnalyzer::new(
            cfg(),
            vec![],
            NodeLabels::default(),
            rx,
        );
        assert!(analyzer.refresh(Nanos::from_secs(1)).is_empty());
    }

    #[test]
    fn incremental_matches_offline_discovery() {
        // The online (incremental) analysis must find the same edges as an
        // offline from-scratch pass over the same horizon.
        let (online, analyzer) = run_online(7, 30);
        let mut sim = two_tier(7);
        sim.run_until(Nanos::from_secs(30));
        let config = analyzer.config().clone();
        let pm = Pathmap::new(config.clone());
        // Offline window aligned with the analyzer's final refresh: the
        // analyzer drained to 29s, so analyze as of 29s.
        let signals = crate::signals::EdgeSignals::from_capture(
            sim.captures(),
            &config,
            Nanos::from_secs(29),
        );
        let offline = pm.discover(
            &signals,
            &roots_from_topology(sim.topology()),
            &NodeLabels::from_topology(sim.topology()),
        );
        let edges = |gs: &[ServiceGraph]| {
            let mut v: Vec<(NodeId, NodeId)> =
                gs[0].edges().iter().map(|e| (e.from, e.to)).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(edges(&online), edges(&offline));
    }

    #[test]
    fn subscribers_receive_refreshes() {
        let mut sim = two_tier(13);
        let (tx, rx) = unbounded();
        let config = cfg();
        let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
        let mut agents: Vec<TracerAgent> = sim
            .topology()
            .services()
            .into_iter()
            .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
            .collect();
        let mut analyzer = OnlineAnalyzer::new(
            config,
            roots_from_topology(sim.topology()),
            NodeLabels::from_topology(sim.topology()),
            rx,
        );
        let sub = analyzer.subscribe();
        let dropped = analyzer.subscribe();
        drop(dropped); // disconnected subscriber must not break publishing
        for step in 1..=10u64 {
            let now = Nanos::from_secs(step * 2);
            sim.run_until(now);
            for a in &mut agents {
                a.poll(sim.captures(), e2eprof_timeseries::Tick::new(step * 2_000 - 1_000));
            }
            analyzer.ingest();
            let _ = analyzer.refresh(now);
        }
        let updates: Vec<GraphUpdate> = sub.try_iter().collect();
        assert!(updates.len() >= 3, "got {} updates", updates.len());
        assert!(updates.windows(2).all(|w| w[0].at < w[1].at));
        assert!(!updates.last().unwrap().graphs.is_empty());
    }

    #[test]
    fn change_tracker_accumulates_refreshes() {
        let (_, analyzer) = run_online(9, 30);
        let keys: Vec<_> = analyzer.change_tracker().keys().collect();
        assert!(!keys.is_empty());
        let (c, f, t) = keys[0];
        assert!(analyzer.change_tracker().history(c, f, t).len() >= 2);
    }
}
