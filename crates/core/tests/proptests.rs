//! Property-based tests of the pathmap algorithm on randomized chain and
//! fork topologies: the forward path must always be discovered when the
//! signal is adequate, never an edge that carried no traffic, and the
//! parallel implementation must agree with the sequential one.

use e2eprof_core::prelude::*;
use e2eprof_netsim::prelude::*;
use e2eprof_netsim::Route;
use proptest::prelude::*;

fn test_cfg() -> PathmapConfig {
    PathmapConfig::builder()
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_secs(2))
        .build()
}

/// A chain with randomized (but adequately provisioned) service times.
fn chain_sim(service_ms: &[u64], rate: f64, seed: u64) -> Simulation {
    let mut t = TopologyBuilder::new();
    let class = t.service_class("c");
    let services: Vec<NodeId> = service_ms
        .iter()
        .enumerate()
        .map(|(i, &ms)| {
            t.service(
                &format!("s{i}"),
                ServiceConfig::new(DelayDist::normal_millis(ms, (ms / 4).max(1))).with_servers(4),
            )
        })
        .collect();
    let cli = t.client("cli", class, services[0], Workload::poisson(rate));
    t.connect(cli, services[0], DelayDist::constant_millis(1));
    for w in services.windows(2) {
        t.connect(w[0], w[1], DelayDist::constant_millis(1));
    }
    for (i, &s) in services.iter().enumerate() {
        if i + 1 < services.len() {
            t.route(s, class, Route::fixed(services[i + 1]));
        } else {
            t.route(s, class, Route::terminal());
        }
    }
    Simulation::new(t.build().expect("valid chain"), seed)
}

fn discover(sim: &Simulation) -> Vec<ServiceGraph> {
    let cfg = test_cfg();
    let pm = Pathmap::new(cfg.clone());
    let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
    pm.discover(
        &signals,
        &roots_from_topology(sim.topology()),
        &NodeLabels::from_topology(sim.topology()),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn forward_chain_always_discovered(
        depth in 2usize..5,
        base_ms in 3u64..15,
        rate in 15.0f64..40.0,
        seed in 0u64..500,
    ) {
        let service: Vec<u64> = (0..depth).map(|i| base_ms + 2 * i as u64).collect();
        let mut sim = chain_sim(&service, rate, seed);
        sim.run_until(Nanos::from_secs(30));
        let graphs = discover(&sim);
        prop_assert_eq!(graphs.len(), 1);
        let g = &graphs[0];
        for i in 0..depth - 1 {
            prop_assert!(
                g.has_edge_between(&format!("s{i}"), &format!("s{}", i + 1)),
                "missing s{i}->s{}:\n{}", i + 1, g
            );
        }
        // Cumulative delays are monotone along the forward chain.
        let mut prev = Nanos::ZERO;
        for i in 0..depth - 1 {
            let e = g.edges().iter().find(|e| {
                g.label_of(e.from) == format!("s{i}") && g.label_of(e.to) == format!("s{}", i + 1)
            }).expect("edge just checked");
            let cum = e.min_delay().expect("non-empty");
            prop_assert!(cum > prev, "cum not monotone at hop {i}");
            prev = cum;
        }
    }

    #[test]
    fn no_phantom_edges(
        depth in 2usize..4,
        seed in 0u64..500,
    ) {
        // Every discovered edge must correspond to traffic that actually
        // flowed (present in the capture's edge list).
        let service: Vec<u64> = vec![5; depth];
        let mut sim = chain_sim(&service, 25.0, seed);
        sim.run_until(Nanos::from_secs(30));
        let traffic: std::collections::HashSet<(NodeId, NodeId)> =
            sim.captures().edges().collect();
        for g in discover(&sim) {
            for e in g.edges() {
                if e.is_anchor() {
                    continue; // the anchoring client edge
                }
                prop_assert!(
                    traffic.contains(&(e.from, e.to)),
                    "edge {}->{} has no traffic", e.from, e.to
                );
            }
        }
    }

    #[test]
    fn parallel_discovery_matches_sequential(
        seed in 0u64..500,
    ) {
        // Two clients with separate branches: parallel per-root discovery
        // must produce the identical graphs, in root order.
        let mut t = TopologyBuilder::new();
        let c1 = t.service_class("a");
        let c2 = t.service_class("b");
        let front = t.service("front", ServiceConfig::new(DelayDist::normal_millis(3, 1)).with_servers(4));
        let s1 = t.service("s1", ServiceConfig::new(DelayDist::normal_millis(10, 2)).with_servers(4));
        let s2 = t.service("s2", ServiceConfig::new(DelayDist::normal_millis(14, 3)).with_servers(4));
        let k1 = t.client("k1", c1, front, Workload::poisson(20.0));
        let k2 = t.client("k2", c2, front, Workload::poisson(20.0));
        t.connect(k1, front, DelayDist::constant_millis(1));
        t.connect(k2, front, DelayDist::constant_millis(1));
        t.connect(front, s1, DelayDist::constant_millis(1));
        t.connect(front, s2, DelayDist::constant_millis(1));
        t.route(front, c1, Route::fixed(s1));
        t.route(front, c2, Route::fixed(s2));
        t.route(s1, c1, Route::terminal());
        t.route(s2, c2, Route::terminal());
        let mut sim = Simulation::new(t.build().expect("valid"), seed);
        sim.run_until(Nanos::from_secs(30));

        let cfg = test_cfg();
        let pm = Pathmap::new(cfg.clone());
        let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
        let roots = roots_from_topology(sim.topology());
        let labels = NodeLabels::from_topology(sim.topology());
        let sequential = pm.discover(&signals, &roots, &labels);
        let parallel = pm.discover_parallel(&signals, &roots, &labels);
        prop_assert_eq!(sequential, parallel);
    }

    #[test]
    fn discovery_is_deterministic(seed in 0u64..500) {
        let mut a = chain_sim(&[5, 9], 25.0, seed);
        let mut b = chain_sim(&[5, 9], 25.0, seed);
        a.run_until(Nanos::from_secs(25));
        b.run_until(Nanos::from_secs(25));
        prop_assert_eq!(discover(&a), discover(&b));
    }
}
