//! End-to-end analysis benchmarks: pathmap discovery (production RLE
//! engine), the convolution baseline, and signal extraction from a
//! capture store.

use criterion::{criterion_group, criterion_main, Criterion};
use e2eprof_bench::rubis_scenario;
use e2eprof_core::convolution;
use e2eprof_core::pathmap::Pathmap;
use e2eprof_core::signals::EdgeSignals;
use e2eprof_timeseries::Nanos;

fn bench_pathmap(c: &mut Criterion) {
    let scenario = rubis_scenario(Nanos::from_secs(15), Nanos::from_secs(2), 42);

    let mut group = c.benchmark_group("pathmap_discovery");
    group.sample_size(20);

    group.bench_function("pathmap_rle_w15s", |b| {
        let pm = Pathmap::new(scenario.config.clone());
        b.iter(|| pm.discover(&scenario.signals, &scenario.roots, &scenario.labels));
    });

    group.bench_function("convolution_baseline_w15s", |b| {
        let base = convolution::baseline(&scenario.config);
        let signals = EdgeSignals::from_capture(
            scenario.rubis.sim().captures(),
            base.config(),
            scenario.rubis.sim().now(),
        );
        b.iter(|| base.discover(&signals, &scenario.roots, &scenario.labels));
    });

    group.bench_function("signal_extraction_w15s", |b| {
        b.iter(|| {
            EdgeSignals::from_capture(
                scenario.rubis.sim().captures(),
                &scenario.config,
                scenario.rubis.sim().now(),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_pathmap);
criterion_main!(benches);
