//! Per-refresh cost of the activity-gated incremental tier on a wide,
//! mostly-idle mesh.
//!
//! 560 independent client → web → db stacks (1120 services) all warm up
//! for the first 12 s; afterwards only 24 stacks (~4% of the mesh) keep
//! receiving traffic. Once the silent stacks' warm-up activity leaves
//! retention, their windows' change epochs freeze and an activity-gated
//! analyzer can prove their pairs quiet — skipping the fine advance,
//! normalization, spike detection, and root discovery for the idle ~90%
//! of the deployment, while the eager analyzer re-walks everything each
//! refresh.
//!
//! Replays the same captured trace through two analyzers — incremental
//! off and on — timing only the `refresh` calls over the deep-idle
//! steady state, and asserts the published graphs are **bit-for-bit
//! identical** (spike strengths via `to_bits`) at every refresh: the
//! gate is a pure performance lever, never an accuracy trade. Asserts a
//! ≥3× refresh speedup. Results go to stdout and
//! `BENCH_incremental_refresh.json`.

use crossbeam::channel::unbounded;
use e2eprof_bench::{mesh_sim, write_bench_json, JsonValue};
use e2eprof_core::analyzer::OnlineAnalyzer;
use e2eprof_core::graph::{NodeLabels, ServiceGraph};
use e2eprof_core::pathmap::{roots_from_topology, IncrementalStats};
use e2eprof_core::tracer::TracerAgent;
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::prelude::*;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::{Nanos, Quanta, Tick};
use std::collections::HashSet;
use std::time::{Duration, Instant};

const STACKS: usize = 560;
const ACTIVE: usize = 24;
const STEP_MS: u64 = 100;
const WARM_SECS: f64 = 12.0;
const TOTAL_SECS: f64 = 50.0;
const REFRESH_MS: u64 = 2_000;
const STEPS: u64 = 24;
/// First refresh of the measured steady state: the silent stacks' last
/// warm-up runs (≤ ~12.1 s) leave window retention — bumping each
/// window's epoch one final time — once the retained span slides past
/// them (~t = 28 s); from step 16 (t = 32 s) every refresh sees frozen
/// epochs and run-free boundary regions on the idle 95% of the mesh.
const MEASURE_FROM: u64 = 16;

fn config(incremental: bool) -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(10))
        .refresh(Nanos::from_millis(REFRESH_MS))
        .max_delay(Nanos::from_secs(1))
        .incremental(incremental)
        .build()
}

/// Replays the finished run's captures through a fresh analyzer,
/// returning every refresh's graphs, the summed steady-state refresh
/// time, and the final refresh's incremental statistics (when enabled).
fn replay(
    sim: &Simulation,
    incremental: bool,
) -> (Vec<Vec<ServiceGraph>>, Duration, Option<IncrementalStats>) {
    let config = config(incremental);
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config,
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );

    let mut measured = Duration::ZERO;
    let mut all = Vec::new();
    for step in 1..=STEPS {
        let now = Nanos::from_millis(step * REFRESH_MS);
        let drain = Tick::new(step * REFRESH_MS - 1_000);
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        let t0 = Instant::now();
        let graphs = analyzer.refresh(now);
        let elapsed = t0.elapsed();
        if step >= MEASURE_FROM {
            measured += elapsed;
        }
        all.push(graphs);
    }
    (all, measured, analyzer.incremental_stats())
}

/// Bitwise comparison: vertex sets, edge sets, hop delays, and spike
/// strengths via `f64::to_bits` — exact equality, no tolerance.
fn assert_graphs_identical(eager: &[ServiceGraph], gated: &[ServiceGraph], step: usize) {
    assert_eq!(eager.len(), gated.len(), "step {step}: graph count differs");
    let canon = |graphs: &[ServiceGraph]| {
        let mut v: Vec<_> = graphs
            .iter()
            .map(|g| {
                let mut vertices: Vec<_> = g
                    .vertices()
                    .iter()
                    .map(|v| (v.label.clone(), v.bottleneck))
                    .collect();
                vertices.sort();
                let mut edges: Vec<_> = g
                    .edges()
                    .iter()
                    .map(|e| {
                        (
                            (e.from, e.to),
                            e.hop_delay,
                            e.spikes
                                .iter()
                                .map(|s| (s.delay, s.strength.to_bits()))
                                .collect::<Vec<_>>(),
                        )
                    })
                    .collect();
                edges.sort();
                (g.client_label.clone(), vertices, edges)
            })
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        canon(eager),
        canon(gated),
        "step {step}: incremental run diverged bitwise"
    );
}

fn main() {
    let mut sim = mesh_sim(STACKS, ACTIVE, STEP_MS, WARM_SECS, TOTAL_SECS, 41);
    sim.run_until(Nanos::from_secs(STEPS * REFRESH_MS / 1_000 + 2));
    println!(
        "incremental_refresh: {STACKS} stacks ({} services), {ACTIVE} active after warm-up \
         ({:.1}% of the mesh), {STEPS} refreshes ({} measured), {} packets captured",
        2 * STACKS,
        100.0 * ACTIVE as f64 / STACKS as f64,
        STEPS - MEASURE_FROM + 1,
        sim.captures().total_packets(),
    );

    let (eager, off, _) = replay(&sim, false);
    let (gated, on, stats) = replay(&sim, true);
    for (i, (a, b)) in eager.iter().zip(&gated).enumerate() {
        assert_graphs_identical(a, b, i + 1);
    }
    let productive = eager.iter().filter(|g| !g.is_empty()).count();
    assert!(
        productive >= (STEPS as usize) / 2,
        "mesh produced only {productive} productive refreshes"
    );
    let stats = stats.expect("incremental stats present when enabled");
    assert!(
        stats.fine_skipped_fraction() >= 0.8,
        "deep-idle refresh skipped too little: {stats:?}"
    );
    assert!(
        stats.reused_roots > 0,
        "deep-idle refresh reused no root graph: {stats:?}"
    );

    let measured_steps = (STEPS - MEASURE_FROM + 1) as f64;
    let off_ms = off.as_secs_f64() * 1e3;
    let on_ms = on.as_secs_f64() * 1e3;
    let speedup = off_ms / on_ms;
    println!(
        "  incremental off  steady-state refresh total {off_ms:>8.1} ms  ({:>6.2} ms/refresh)",
        off_ms / measured_steps
    );
    println!(
        "  incremental on   steady-state refresh total {on_ms:>8.1} ms  ({:>6.2} ms/refresh)  speedup {speedup:.2}x",
        on_ms / measured_steps
    );
    println!(
        "  last refresh: {}/{} fine pairs skipped ({:.0}%), {}/{} roots reused",
        stats.fine_skipped,
        stats.fine_pairs,
        stats.fine_skipped_fraction() * 100.0,
        stats.reused_roots,
        stats.roots,
    );
    assert!(
        speedup >= 3.0,
        "activity gate under target: {speedup:.2}x < 3x \
         (off {off_ms:.1} ms vs on {on_ms:.1} ms over {measured_steps} refreshes)"
    );

    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("incremental_refresh".into())),
        ("stacks".into(), JsonValue::Int(STACKS as u64)),
        ("services".into(), JsonValue::Int(2 * STACKS as u64)),
        ("active_stacks".into(), JsonValue::Int(ACTIVE as u64)),
        (
            "active_fraction".into(),
            JsonValue::Num(ACTIVE as f64 / STACKS as f64),
        ),
        ("refreshes".into(), JsonValue::Int(STEPS)),
        (
            "measured_refreshes".into(),
            JsonValue::Int(STEPS - MEASURE_FROM + 1),
        ),
        ("fine_pairs".into(), JsonValue::Int(stats.fine_pairs)),
        ("fine_skipped".into(), JsonValue::Int(stats.fine_skipped)),
        (
            "fine_skipped_fraction".into(),
            JsonValue::Num(stats.fine_skipped_fraction()),
        ),
        ("roots".into(), JsonValue::Int(stats.roots)),
        ("reused_roots".into(), JsonValue::Int(stats.reused_roots)),
        ("refresh_total_ms_off".into(), JsonValue::Num(off_ms)),
        ("refresh_total_ms_on".into(), JsonValue::Num(on_ms)),
        (
            "ms_per_refresh_off".into(),
            JsonValue::Num(off_ms / measured_steps),
        ),
        (
            "ms_per_refresh_on".into(),
            JsonValue::Num(on_ms / measured_steps),
        ),
        ("speedup".into(), JsonValue::Num(speedup)),
        ("bitwise_identical".into(), JsonValue::Bool(true)),
    ]);
    let path = write_bench_json("incremental_refresh", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
