//! Transport-layer throughput: the same synthetic tracer workload driven
//! through (a) the in-process channel and (b) loopback TCP — framed,
//! CRC-checked, brokered, and fanned out to 1, 4, and 8 analyzer shards.
//!
//! The workload is the ingest bench's shape (bursty density-shaped RLE
//! chunks over 64 edges, one wire-v2 batch frame per flush) so the two
//! benches compose: `ingest_throughput` isolates the codec + window
//! cost, this bench adds the envelope, the socket hop, the broker's
//! dedup/replay ring, and the per-shard fan-out on top. Every shard
//! subscribes to the full stream, so the 4-shard case moves 4× the bytes
//! of the 1-shard case.
//!
//! The broker-side acceptor is wrapped in [`CountingAcceptor`], so every
//! `write`/`write_vectored` the broker issues (tracer acks aside, these
//! are the subscriber-fan-out flushes) is counted; the report includes
//! `syscalls_per_record` per TCP configuration. With write coalescing
//! the broker retires up to [`COALESCE_MAX_FRAMES`] frames per call, so
//! this ratio is the direct measure of the batching win.
//!
//! Writes `BENCH_transport_throughput.json` with records/sec per
//! configuration. Two assertions gate regressions:
//! - every TCP path must clear a 100k records/s floor (keep-up with
//!   real tracer flush rates), and
//! - the 1-shard TCP path must be at least 2× the pre-zero-copy
//!   baseline ([`PR9_TCP1_RECORDS_PER_SEC`]), locking in the
//!   pass-through + coalescing gain.

use crossbeam::channel::unbounded;
use e2eprof_bench::{fmt_duration, write_bench_json, JsonValue};
use e2eprof_core::analyzer::OnlineAnalyzer;
use e2eprof_core::graph::NodeLabels;
use e2eprof_core::tracer::{FrameSink, TracerFrame};
use e2eprof_core::{PathmapConfig, WireVersion};
use e2eprof_net::link::{AnalyzerConn, LinkConfig, TracerLink};
use e2eprof_net::pipeline::Endpoint;
use e2eprof_net::{BrokerHandle, CountingAcceptor, IoCounters};
use e2eprof_timeseries::{wire, Nanos, Quanta, RleSeries, Run, Tick};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

const EDGES: usize = 64;
const FLUSHES: u64 = 300;
const CHUNK_TICKS: u64 = 16;
const REPS: usize = 5;

/// Loopback TCP ×1 records/s measured immediately before the zero-copy
/// data plane landed (decode/re-encode broker, one `write` per frame).
/// The pass-through relay + vectored coalescing must at least double it.
const PR9_TCP1_RECORDS_PER_SEC: f64 = 23_163_499.15;

fn config() -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(10))
        .refresh(Nanos::from_secs(2))
        .max_delay(Nanos::from_secs(1))
        .wire(WireVersion::V2)
        .build()
}

/// Bursty, deterministic chunks (xorshift), contiguous across flushes.
fn workload() -> Vec<Vec<((u32, u32), RleSeries)>> {
    let mut state = 0x1234_5678_9abc_def1u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..FLUSHES)
        .map(|flush| {
            let start = flush * CHUNK_TICKS;
            (0..EDGES)
                .map(|e| {
                    let mut runs = Vec::new();
                    let mut t = start;
                    let end = start + CHUNK_TICKS;
                    while t < end {
                        t += next() % 96;
                        if t >= end {
                            break;
                        }
                        let len = (1 + next() % 4).min(end - t);
                        let count = 1 + next() % 24;
                        runs.push(Run::new(Tick::new(t), len, (count as f64).sqrt()));
                        t += len;
                    }
                    let key = (e as u32, (e + EDGES) as u32);
                    (
                        key,
                        RleSeries::from_parts(Tick::new(start), CHUNK_TICKS, runs),
                    )
                })
                .collect()
        })
        .collect()
}

/// Underlying message count a density series represents: Σ len·value².
fn records(flushes: &[Vec<((u32, u32), RleSeries)>]) -> u64 {
    flushes
        .iter()
        .flatten()
        .flat_map(|(_, s)| s.runs())
        .map(|r| r.len() * (r.value() * r.value()).round() as u64)
        .sum()
}

/// Pre-encoded batch frames (encode cost excluded: this bench times the
/// transport, not the codec).
fn frames(flushes: &[Vec<((u32, u32), RleSeries)>]) -> Vec<bytes::Bytes> {
    let mut buf = Vec::new();
    flushes
        .iter()
        .map(|flush| {
            wire::encode_batch_into(flush, true, &mut buf);
            bytes::Bytes::copy_from_slice(&buf)
        })
        .collect()
}

fn labels() -> NodeLabels {
    NodeLabels::new((0..2 * EDGES).map(|i| format!("n{i}")).collect())
}

/// Baseline: frames over the in-process channel into one analyzer.
fn drive_inproc(frames: &[bytes::Bytes]) -> Duration {
    let (tx, rx) = unbounded();
    let mut analyzer = OnlineAnalyzer::new(config(), Vec::new(), labels(), rx);
    let expected = frames.len();
    let t0 = Instant::now();
    let ingester = std::thread::spawn(move || {
        assert_eq!(analyzer.ingest_expected(expected), expected);
    });
    for payload in frames {
        tx.send(TracerFrame::Batch {
            payload: payload.clone(),
        })
        .expect("analyzer alive");
    }
    drop(tx);
    ingester.join().expect("ingester");
    t0.elapsed()
}

/// One TCP run's measurements: wall time plus the broker-side write-call
/// count (each at most one kernel syscall on a real socket).
struct TcpRun {
    elapsed: Duration,
    broker_write_calls: u64,
}

/// Frames over loopback TCP: link → broker → `shards` subscribed
/// analyzers, each ingesting the full stream concurrently. The broker's
/// acceptor is wrapped so every write call it issues is counted.
fn drive_tcp(frames: &[bytes::Bytes], shards: usize) -> TcpRun {
    let endpoint = Endpoint::Tcp.bind().expect("bind loopback");
    let counters = IoCounters::shared();
    let counting = Arc::new(CountingAcceptor::new(
        endpoint.acceptor(),
        Arc::clone(&counters),
    ));
    let broker = BrokerHandle::spawn(
        counting,
        e2eprof_net::BrokerConfig {
            ring_capacity: frames.len().max(1024),
        },
    );
    let expected = frames.len();
    let mut conns = Vec::new();
    let mut ingesters = Vec::new();
    for shard in 0..shards {
        let (conn, rx) = AnalyzerConn::spawn(
            endpoint.dialer(),
            shard as u32,
            shards as u32,
            LinkConfig::default(),
        );
        conns.push(conn);
        let mut analyzer = OnlineAnalyzer::new(config(), Vec::new(), labels(), rx);
        ingesters.push(std::thread::spawn(move || {
            assert_eq!(analyzer.ingest_expected(expected), expected);
        }));
    }
    // A bursty sender: let up to 16 frames ride one coalesced vectored
    // write instead of paying a syscall per frame, with an explicit
    // drain at the end of the burst.
    let link_config = LinkConfig {
        coalesce_depth: 16,
        ..LinkConfig::default()
    };
    let mut link = TracerLink::new(0, endpoint.dialer(), link_config);
    let t0 = Instant::now();
    for payload in frames {
        let dropped = link.send_frame(TracerFrame::Batch {
            payload: payload.clone(),
        });
        assert_eq!(dropped, 0, "bench must not hit backpressure drops");
    }
    link.drain();
    for ingester in ingesters {
        ingester.join().expect("shard ingester");
    }
    let elapsed = t0.elapsed();
    broker.shutdown();
    for conn in &mut conns {
        conn.stop();
    }
    TcpRun {
        elapsed,
        broker_write_calls: counters.write_calls.load(Ordering::Relaxed),
    }
}

fn best_of(reps: usize, f: impl Fn() -> Duration) -> Duration {
    (0..reps).map(|_| f()).min().expect("at least one rep")
}

/// Fastest rep by wall time; syscall counts come from that same rep so
/// the ratio is internally consistent.
fn best_tcp(reps: usize, f: impl Fn() -> TcpRun) -> TcpRun {
    (0..reps)
        .map(|_| f())
        .min_by_key(|r| r.elapsed)
        .expect("at least one rep")
}

fn main() {
    let flushes = workload();
    let total_records = records(&flushes);
    let encoded = frames(&flushes);
    let payload_bytes: usize = encoded.iter().map(bytes::Bytes::len).sum();
    // What the stream costs on the socket: every batch payload travels in
    // one transport envelope of HEADER_LEN framing bytes.
    let bytes_on_wire = payload_bytes + encoded.len() * e2eprof_net::frame::HEADER_LEN;
    println!(
        "transport_throughput: {EDGES} edges x {FLUSHES} flushes = {total_records} records, \
         {} KiB of wire-v2 batches ({} KiB framed)",
        payload_bytes / 1024,
        bytes_on_wire / 1024
    );

    let inproc = best_of(REPS, || drive_inproc(&encoded));
    let tcp1 = best_tcp(REPS, || drive_tcp(&encoded, 1));
    let tcp4 = best_tcp(REPS, || drive_tcp(&encoded, 4));
    let tcp8 = best_tcp(REPS, || drive_tcp(&encoded, 8));

    let rps = |d: Duration| total_records as f64 / d.as_secs_f64();
    let spr = |run: &TcpRun| run.broker_write_calls as f64 / total_records as f64;
    let report_inproc = |name: &str, d: Duration| {
        println!(
            "  {name:<22} {:>9}  {:>7.2} M records/s",
            fmt_duration(d),
            rps(d) / 1e6
        );
    };
    let report_tcp = |name: &str, run: &TcpRun| {
        println!(
            "  {name:<22} {:>9}  {:>7.2} M records/s  {:>6} broker writes  {:.2e} syscalls/record",
            fmt_duration(run.elapsed),
            rps(run.elapsed) / 1e6,
            run.broker_write_calls,
            spr(run)
        );
    };
    report_inproc("in-process channel", inproc);
    report_tcp("tcp loopback x1", &tcp1);
    report_tcp("tcp loopback x4", &tcp4);
    report_tcp("tcp loopback x8", &tcp8);

    // Floor: a tracer flushes every ΔW (seconds); the transport must
    // clear this synthetic 300-flush stream at >= 100k records/s even
    // with 8 subscribed shards, or it could not keep up with real
    // deployments.
    for (name, run) in [("tcp x1", &tcp1), ("tcp x4", &tcp4), ("tcp x8", &tcp8)] {
        assert!(
            rps(run.elapsed) >= 1e5,
            "{name}: {:.0} records/s is below the 100k floor",
            rps(run.elapsed)
        );
    }
    // Regression gate for the zero-copy data plane: pass-through relay +
    // coalesced vectored writes must at least double the decode/re-encode
    // broker's single-shard throughput.
    assert!(
        rps(tcp1.elapsed) >= 2.0 * PR9_TCP1_RECORDS_PER_SEC,
        "tcp x1: {:.0} records/s is below 2x the pre-zero-copy baseline ({:.0})",
        rps(tcp1.elapsed),
        PR9_TCP1_RECORDS_PER_SEC
    );

    let tcp_ns =
        |run: &TcpRun| JsonValue::Int(run.elapsed.as_nanos().try_into().unwrap_or(u64::MAX));
    let report = JsonValue::Obj(vec![
        (
            "bench".into(),
            JsonValue::Str("transport_throughput".into()),
        ),
        ("edges".into(), JsonValue::Int(EDGES as u64)),
        ("flushes".into(), JsonValue::Int(FLUSHES)),
        ("records".into(), JsonValue::Int(total_records)),
        ("wire_bytes".into(), JsonValue::Int(payload_bytes as u64)),
        ("bytes_on_wire".into(), JsonValue::Int(bytes_on_wire as u64)),
        (
            "inproc_ns".into(),
            JsonValue::Int(inproc.as_nanos().try_into().unwrap_or(u64::MAX)),
        ),
        ("tcp_1shard_ns".into(), tcp_ns(&tcp1)),
        ("tcp_4shard_ns".into(), tcp_ns(&tcp4)),
        ("tcp_8shard_ns".into(), tcp_ns(&tcp8)),
        ("inproc_records_per_sec".into(), JsonValue::Num(rps(inproc))),
        (
            "tcp_1shard_records_per_sec".into(),
            JsonValue::Num(rps(tcp1.elapsed)),
        ),
        (
            "tcp_4shard_records_per_sec".into(),
            JsonValue::Num(rps(tcp4.elapsed)),
        ),
        (
            "tcp_8shard_records_per_sec".into(),
            JsonValue::Num(rps(tcp8.elapsed)),
        ),
        (
            "tcp_1shard_broker_write_calls".into(),
            JsonValue::Int(tcp1.broker_write_calls),
        ),
        (
            "tcp_4shard_broker_write_calls".into(),
            JsonValue::Int(tcp4.broker_write_calls),
        ),
        (
            "tcp_8shard_broker_write_calls".into(),
            JsonValue::Int(tcp8.broker_write_calls),
        ),
        (
            "tcp_1shard_syscalls_per_record".into(),
            JsonValue::Num(spr(&tcp1)),
        ),
        (
            "tcp_4shard_syscalls_per_record".into(),
            JsonValue::Num(spr(&tcp4)),
        ),
        (
            "tcp_8shard_syscalls_per_record".into(),
            JsonValue::Num(spr(&tcp8)),
        ),
        (
            "pr9_tcp_1shard_records_per_sec".into(),
            JsonValue::Num(PR9_TCP1_RECORDS_PER_SEC),
        ),
        (
            "tcp_1shard_speedup_vs_pr9".into(),
            JsonValue::Num(rps(tcp1.elapsed) / PR9_TCP1_RECORDS_PER_SEC),
        ),
        (
            "tcp_overhead_vs_inproc".into(),
            JsonValue::Num(tcp1.elapsed.as_secs_f64() / inproc.as_secs_f64()),
        ),
    ]);
    let path = write_bench_json("transport_throughput", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
