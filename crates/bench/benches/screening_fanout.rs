//! Cost of coarse-to-fine screening on a wide-fanout topology.
//!
//! A single front end fans out to `CLIENTS` clusters of `CLUSTER`
//! backends each. Every client's traffic is bursty and the burst phases
//! are pairwise disjoint within the lag horizon `T_u`, so each client's
//! causal evidence only ever touches its own cluster: the other clusters'
//! (client, edge) pairs are provably dead, and the screening tier prunes
//! them from full-lag correlation.
//!
//! Replays the same captured trace through two analyzers — screening off
//! and on — timing only the `refresh` calls, and asserts both publish the
//! same edge sets. Results go to stdout and `BENCH_screening_fanout.json`.

use crossbeam::channel::unbounded;
use e2eprof_bench::{fanout_sim, write_bench_json, JsonValue};
use e2eprof_core::analyzer::OnlineAnalyzer;
use e2eprof_core::config::ScreeningConfig;
use e2eprof_core::graph::{NodeLabels, ServiceGraph};
use e2eprof_core::pathmap::{roots_from_topology, ScreeningStats};
use e2eprof_core::tracer::TracerAgent;
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::prelude::*;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::{Nanos, Quanta, Tick};
use std::collections::HashSet;
use std::time::{Duration, Instant};

/// Burst phases: `CLIENTS` bursts of `BURST` seconds spread over `PERIOD`
/// seconds leave a 2.2 s guard between consecutive bursts — wider than
/// `T_u` (2 s) plus the ω smear, so no cross-cluster lag can align two
/// clients' activity.
const CLIENTS: usize = 6;
const CLUSTER: usize = 8;
const PERIOD: f64 = 18.0;
const BURST: f64 = 0.8;
const TOTAL_SECS: f64 = 60.0;
const REFRESH_MS: u64 = 6_000;
const STEPS: u64 = 9;

fn config(screening: bool) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(36))
        .refresh(Nanos::from_millis(REFRESH_MS))
        .max_delay(Nanos::from_secs(2));
    if screening {
        b = b.screening(ScreeningConfig {
            decimation: 16,
            hysteresis: 0.5,
        });
    }
    b.build()
}

/// Replays the finished run's captures through a fresh analyzer, returning
/// the summed refresh time, the last non-empty graph set, and the final
/// screening statistics (when screening was enabled).
fn replay(
    sim: &Simulation,
    screening: bool,
) -> (Duration, Vec<ServiceGraph>, Option<ScreeningStats>) {
    let config = config(screening);
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config,
        roots_from_topology(sim.topology()),
        NodeLabels::from_topology(sim.topology()),
        rx,
    );

    let mut in_refresh = Duration::ZERO;
    let mut last = Vec::new();
    for step in 1..=STEPS {
        let now = Nanos::from_millis(step * REFRESH_MS);
        let drain = Tick::new(step * REFRESH_MS - 1_000);
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        let t0 = Instant::now();
        let graphs = analyzer.refresh(now);
        in_refresh += t0.elapsed();
        if !graphs.is_empty() {
            last = graphs;
        }
    }
    (in_refresh, last, analyzer.screening_stats())
}

/// Sorted (client, edge set) for cross-run comparison.
fn edge_sets(graphs: &[ServiceGraph]) -> Vec<(String, Vec<(NodeId, NodeId)>)> {
    let mut v: Vec<_> = graphs
        .iter()
        .map(|g| {
            let mut edges: Vec<_> = g.edges().iter().map(|e| (e.from, e.to)).collect();
            edges.sort_unstable();
            (g.client_label.clone(), edges)
        })
        .collect();
    v.sort();
    v
}

fn main() {
    let mut sim = fanout_sim(CLIENTS, CLUSTER, PERIOD, BURST, TOTAL_SECS, 29);
    sim.run_until(Nanos::from_secs(STEPS * REFRESH_MS / 1_000 + 2));
    println!(
        "screening_fanout: {CLIENTS} bursty clients x {CLUSTER}-backend clusters, \
         {STEPS} refreshes, {} packets captured",
        sim.captures().total_packets(),
    );

    let (off, plain, _) = replay(&sim, false);
    let (on, screened, stats) = replay(&sim, true);
    assert_eq!(
        edge_sets(&plain),
        edge_sets(&screened),
        "screening changed the discovered edge sets"
    );
    let stats = stats.expect("screening stats present when enabled");
    assert!(
        stats.candidates >= 200,
        "fanout too narrow to be meaningful: {stats:?}"
    );

    let off_ms = off.as_secs_f64() * 1e3;
    let on_ms = on.as_secs_f64() * 1e3;
    let speedup = off_ms / on_ms;
    println!(
        "  screening off  refresh total {off_ms:>8.1} ms  ({:>6.1} ms/refresh)",
        off_ms / STEPS as f64
    );
    println!(
        "  screening on   refresh total {on_ms:>8.1} ms  ({:>6.1} ms/refresh)  speedup {speedup:.2}x",
        on_ms / STEPS as f64
    );
    println!(
        "  last refresh: {} candidate pairs, {} pruned ({:.0}%)",
        stats.candidates,
        stats.pruned,
        stats.pruned_fraction() * 100.0
    );

    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("screening_fanout".into())),
        ("clients".into(), JsonValue::Int(CLIENTS as u64)),
        ("cluster".into(), JsonValue::Int(CLUSTER as u64)),
        ("refreshes".into(), JsonValue::Int(STEPS)),
        ("candidate_pairs".into(), JsonValue::Int(stats.candidates)),
        ("pruned_pairs".into(), JsonValue::Int(stats.pruned)),
        (
            "pruned_fraction".into(),
            JsonValue::Num(stats.pruned_fraction()),
        ),
        ("refresh_total_ms_off".into(), JsonValue::Num(off_ms)),
        ("refresh_total_ms_on".into(), JsonValue::Num(on_ms)),
        (
            "ms_per_refresh_off".into(),
            JsonValue::Num(off_ms / STEPS as f64),
        ),
        (
            "ms_per_refresh_on".into(),
            JsonValue::Num(on_ms / STEPS as f64),
        ),
        ("speedup".into(), JsonValue::Num(speedup)),
    ]);
    let path = write_bench_json("screening_fanout", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
