//! Micro-benchmarks of the signal layer: the per-node tracer's work
//! (density estimation, streaming RLE) and the analyzer's window
//! maintenance.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use e2eprof_bench::rubis_scenario;
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::window::SlidingWindow;
use e2eprof_timeseries::{Nanos, Quanta, Tick};

fn bench_timeseries(c: &mut Criterion) {
    let scenario = rubis_scenario(Nanos::from_secs(30), Nanos::from_secs(2), 42);
    let n = scenario.rubis.nodes();
    let timestamps: Vec<Nanos> = scenario
        .rubis
        .sim()
        .captures()
        .edge_signal(n.ws, n.ts1)
        .to_vec();

    let mut group = c.benchmark_group("timeseries_ops");
    group.throughput(Throughput::Elements(timestamps.len() as u64));

    group.bench_function("density_streaming_chunks", |b| {
        // The tracer's pattern: push records, drain a chunk per second.
        b.iter(|| {
            let mut est = DensityEstimator::new(Quanta::from_millis(1), 50);
            let mut out = 0usize;
            let mut i = 0;
            for drain_at in (1..=30u64).map(|s| s * 1000) {
                let horizon = Nanos::from_millis(drain_at) + Nanos::from_micros(25_000);
                while i < timestamps.len() && timestamps[i] < horizon {
                    est.push(timestamps[i]);
                    i += 1;
                }
                out += est.drain_chunk(Tick::new(drain_at)).num_entries();
            }
            out
        });
    });

    let sparse = DensityEstimator::from_timestamps(Quanta::from_millis(1), 50, &timestamps);
    let rle = sparse.to_rle();
    group.bench_function("sliding_window_append_evict", |b| {
        let chunk_len = rle.len() / 10;
        let chunks: Vec<_> = (0..10)
            .map(|i| {
                rle.slice(
                    Tick::new(rle.start().index() + i * chunk_len),
                    Tick::new(rle.start().index() + (i + 1) * chunk_len),
                )
            })
            .collect();
        b.iter(|| {
            let mut w = SlidingWindow::new(3 * chunk_len);
            for chunk in &chunks {
                w.append_chunk(chunk);
            }
            w.end()
        });
    });

    group.bench_function("series_stats", |b| {
        b.iter(|| rle.stats().variance());
    });

    group.finish();
}

criterion_group!(benches, bench_timeseries);
criterion_main!(benches);
