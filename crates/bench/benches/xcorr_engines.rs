//! Micro-benchmarks of the correlation engines on one prepared signal
//! pair: the unit cost underlying Fig. 9, plus normalization, spike
//! detection, and the incremental update path.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2eprof_bench::{corr_pair, rubis_scenario};
use e2eprof_timeseries::{Nanos, Tick};
use e2eprof_xcorr::engine::all_engines;
use e2eprof_xcorr::incremental::IncrementalCorrelator;
use e2eprof_xcorr::{normalize, rle, SpikeDetector};

fn bench_engines(c: &mut Criterion) {
    let scenario = rubis_scenario(Nanos::from_secs(30), Nanos::from_secs(2), 42);
    let (x, y) = corr_pair(&scenario);
    let max_lag = scenario.config.max_lag();

    let mut group = c.benchmark_group("xcorr_engines");
    for engine in all_engines() {
        group.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &(&x, &y),
            |b, (x, y)| {
                b.iter(|| engine.correlate(x, y, max_lag));
            },
        );
    }
    group.finish();

    let mut group = c.benchmark_group("xcorr_support");
    let raw = rle::correlate(&x, &y, max_lag);
    group.bench_function("normalize_eq1", |b| {
        b.iter(|| normalize::normalize(&raw, &x, &y));
    });
    let rho = normalize::normalize(&raw, &x, &y);
    let detector = SpikeDetector::new(3.0, 50);
    group.bench_function("spike_detection", |b| {
        b.iter(|| detector.detect(rho.values()));
    });
    // One ΔW = W/4 incremental advance (the online analyzer's unit of
    // work per refresh per edge).
    let (start, end) = (x.start(), x.end());
    let quarter = (end - start) / 4;
    group.bench_function("incremental_refresh", |b| {
        b.iter_batched(
            || {
                let mut inc = IncrementalCorrelator::new(max_lag);
                inc.append(&x.slice(start, Tick::new(end.index() - quarter)), &y);
                inc
            },
            |mut inc| {
                inc.append(&x.slice(Tick::new(end.index() - quarter), end), &y);
                inc.evict_to(Tick::new(start.index() + quarter), &x, &y);
                inc
            },
            criterion::BatchSize::LargeInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
