//! Fig. 9 (Criterion form): execution time of service-path analysis per
//! correlation strategy, as the sliding window grows.
//!
//! Scaled to Criterion-friendly sizes (`T_u` = 2 s instead of the paper's
//! 1 min); the `experiments fig9` binary runs the larger one-shot sweep.
//! The shape under test: direct engines grow linearly in `W` with
//! RLE ≪ burst ≤ no-compression; FFT pays the full window regardless of
//! `T_u`; the incremental refresh is (near-)constant in `W`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2eprof_bench::rubis_scenario;
use e2eprof_core::pathmap::Pathmap;
use e2eprof_timeseries::Nanos;
use e2eprof_xcorr::engine::all_engines;

fn bench_fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9_analysis_time");
    group.sample_size(10);
    for w_secs in [15u64, 30, 60] {
        let scenario = rubis_scenario(Nanos::from_secs(w_secs), Nanos::from_secs(2), 42);
        for engine in all_engines() {
            let name = engine.name();
            let pm = Pathmap::with_correlator(scenario.config.clone(), engine);
            group.bench_with_input(BenchmarkId::new(name, w_secs), &scenario, |b, s| {
                b.iter(|| pm.discover(&s.signals, &s.roots, &s.labels));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_fig9);
criterion_main!(benches);
