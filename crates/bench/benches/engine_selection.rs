//! Engine-selection sweep: density × window across every correlation
//! engine plus the auto-selecting backend.
//!
//! For each grid point the four engines and the auto backend correlate
//! the same pair through the arena-backed steady-state path
//! (`correlate_into`), timed by iteration loops sized to amortize timer
//! granularity. The sweep asserts the adaptive backend's point: at every
//! point `auto` lands within 10% of the best engine (plus a small
//! absolute slack for microsecond-scale points), and the worst engine is
//! at least 2× slower than `auto` — i.e. a fixed engine choice is always
//! substantially wrong somewhere in the regime grid, and the cost model
//! avoids that. Results go to stdout and `BENCH_engine_selection.json`.

use e2eprof_bench::{write_bench_json, JsonValue};
use e2eprof_timeseries::{DenseSeries, RleSeries, Tick};
use e2eprof_xcorr::engine::all_engines;
use e2eprof_xcorr::{simd, AutoCorrelator, CorrArena, CorrSeries, Correlator, CostModel};
use std::time::Instant;

const DENSITIES: [f64; 3] = [0.02, 0.1, 1.0];
const WINDOWS: [u64; 2] = [4_096, 16_384];
/// Relative headroom the auto backend is allowed over the best engine.
const REL_SLACK: f64 = 1.10;
/// Absolute headroom (ns) for microsecond-scale points where scheduler
/// jitter dominates a 10% margin.
const ABS_SLACK_NS: f64 = 20_000.0;

/// Deterministic pseudo-random signal: each tick is active with
/// probability `density`, active values vary over {1..5} so a density-1
/// signal run-length-encodes to ~n runs (the RLE engine's worst case).
fn signal(n: u64, density: f64, seed: u64) -> RleSeries {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let values: Vec<f64> = (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            if ((state % 10_000) as f64) < density * 10_000.0 {
                ((state >> 32) % 5 + 1) as f64
            } else {
                0.0
            }
        })
        .collect();
    DenseSeries::new(Tick::new(0), values).to_sparse().to_rle()
}

/// Nanoseconds per call: iteration count sized so one measurement spans
/// ≥ ~20 ms, minimum over 3 measurements.
fn time_ns(mut f: impl FnMut()) -> f64 {
    let t0 = Instant::now();
    f();
    let once = t0.elapsed().as_secs_f64().max(1e-7);
    let iters = ((0.02 / once).ceil() as u64).clamp(1, 1_000_000);
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed().as_secs_f64() / iters as f64);
    }
    best * 1e9
}

fn main() {
    let model = CostModel::calibrate();
    println!(
        "engine_selection: dense kernel `{}`; calibrated ns/op: dense {:.3} sparse {:.3} rle {:.3} fft {:.3}",
        simd::kernel_name(),
        model.dense_op_ns,
        model.sparse_op_ns,
        model.rle_op_ns,
        model.fft_op_ns,
    );

    let mut points = Vec::new();
    let mut hits = 0usize;
    let mut total = 0usize;
    for &window in &WINDOWS {
        for &density in &DENSITIES {
            let max_lag = window / 4;
            let x = signal(window, density, 7 + window);
            let y = signal(window, density, 1_013 + window);
            let auto = AutoCorrelator::new(model);
            let pick = auto.pick(&x, &y, max_lag).as_str();

            let mut timings: Vec<(String, f64)> = Vec::new();
            for engine in all_engines() {
                let mut arena = CorrArena::new();
                let mut out = CorrSeries::zeros(0);
                let ns = time_ns(|| engine.correlate_into(&x, &y, max_lag, &mut out, &mut arena));
                timings.push((engine.name().to_string(), ns));
            }
            let auto_ns = {
                let mut arena = CorrArena::new();
                let mut out = CorrSeries::zeros(0);
                time_ns(|| auto.correlate_into(&x, &y, max_lag, &mut out, &mut arena))
            };
            let (best_name, best_ns) = timings
                .iter()
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .map(|(n, t)| (n.clone(), *t))
                .expect("nonempty");
            let worst_ns = timings
                .iter()
                .map(|&(_, t)| t)
                .fold(f64::NEG_INFINITY, f64::max);
            let hit = pick == best_name;
            hits += hit as usize;
            total += 1;

            println!(
                "  n={window:>6} density={density:<4} lag={max_lag:>5}  pick={pick:<17} \
                 auto={:>10.1}us  best={best_name} {:>10.1}us  worst={:>10.1}us",
                auto_ns / 1e3,
                best_ns / 1e3,
                worst_ns / 1e3,
            );
            for (name, ns) in &timings {
                println!("      {name:<17} {:>12.1}us", ns / 1e3);
            }

            assert!(
                auto_ns <= best_ns * REL_SLACK + ABS_SLACK_NS,
                "n={window} density={density}: auto {auto_ns:.0}ns not within 10% \
                 of best engine {best_name} at {best_ns:.0}ns"
            );
            assert!(
                worst_ns >= 2.0 * auto_ns,
                "n={window} density={density}: worst engine {worst_ns:.0}ns is not \
                 2x slower than auto {auto_ns:.0}ns — the grid no longer \
                 discriminates engine regimes"
            );

            points.push(JsonValue::Obj(vec![
                ("window".into(), JsonValue::Int(window)),
                ("density".into(), JsonValue::Num(density)),
                ("max_lag".into(), JsonValue::Int(max_lag)),
                ("pick".into(), JsonValue::Str(pick.into())),
                ("auto_ns".into(), JsonValue::Num(auto_ns)),
                ("best".into(), JsonValue::Str(best_name)),
                ("best_ns".into(), JsonValue::Num(best_ns)),
                ("worst_ns".into(), JsonValue::Num(worst_ns)),
                ("hit".into(), JsonValue::Bool(hit)),
                (
                    "engines".into(),
                    JsonValue::Obj(
                        timings
                            .into_iter()
                            .map(|(n, t)| (n, JsonValue::Num(t)))
                            .collect(),
                    ),
                ),
            ]));
        }
    }

    let hit_rate = hits as f64 / total as f64;
    println!("  pick hit rate: {hits}/{total} ({:.0}%)", hit_rate * 100.0);

    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("engine_selection".into())),
        ("kernel".into(), JsonValue::Str(simd::kernel_name().into())),
        (
            "cost_model_ns_per_op".into(),
            JsonValue::Obj(vec![
                ("dense".into(), JsonValue::Num(model.dense_op_ns)),
                ("sparse".into(), JsonValue::Num(model.sparse_op_ns)),
                ("rle".into(), JsonValue::Num(model.rle_op_ns)),
                ("fft".into(), JsonValue::Num(model.fft_op_ns)),
            ]),
        ),
        ("hit_rate".into(), JsonValue::Num(hit_rate)),
        ("points".into(), JsonValue::Arr(points)),
    ]);
    let path = write_bench_json("engine_selection", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
