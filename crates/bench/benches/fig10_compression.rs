//! Fig. 10 (Criterion form): the *cost* side of trace compression — how
//! long density estimation, zero-suppression, run-length encoding, and
//! wire encoding take as the window grows. (The representation *sizes*
//! Fig. 10 plots are printed by `experiments fig10`.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use e2eprof_bench::rubis_scenario;
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{wire, Nanos, Quanta};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_compression");
    for w_secs in [30u64, 60, 120] {
        let scenario = rubis_scenario(Nanos::from_secs(w_secs), Nanos::from_secs(2), 42);
        let n = scenario.rubis.nodes();
        let timestamps: Vec<Nanos> = scenario
            .rubis
            .sim()
            .captures()
            .edge_signal(n.ts1, n.ws)
            .to_vec();
        group.throughput(Throughput::Elements(timestamps.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("density_estimation", w_secs),
            &timestamps,
            |b, ts| {
                b.iter(|| DensityEstimator::from_timestamps(Quanta::from_millis(1), 50, ts));
            },
        );

        let sparse = DensityEstimator::from_timestamps(Quanta::from_millis(1), 50, &timestamps);
        group.bench_with_input(BenchmarkId::new("rle_encode", w_secs), &sparse, |b, s| {
            b.iter(|| s.to_rle());
        });

        let rle = sparse.to_rle();
        group.bench_with_input(BenchmarkId::new("rle_decode", w_secs), &rle, |b, r| {
            b.iter(|| r.to_sparse());
        });

        group.bench_with_input(BenchmarkId::new("wire_encode", w_secs), &rle, |b, r| {
            b.iter(|| wire::encode(r));
        });

        let frame = wire::encode(&rle);
        group.bench_with_input(BenchmarkId::new("wire_decode", w_secs), &frame, |b, f| {
            b.iter(|| wire::decode(f).expect("valid frame"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);
criterion_main!(benches);
