//! Fig. 10 (Criterion form): the *cost* side of trace compression — how
//! long density estimation, zero-suppression, run-length encoding, and
//! wire encoding take as the window grows. (The representation *sizes*
//! Fig. 10 plots are printed by `experiments fig10`.)
//!
//! The trailing size report extends the figure to the wire formats:
//! bytes/record shipped for one RUBiS window under v1 (one fixed-layout
//! frame per edge) versus v2 batch frames with raw and integer-count
//! amplitudes, asserting v2+int-amp spends at least 1.5× fewer bytes per
//! captured record. Written to `BENCH_fig10_compression.json`.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use e2eprof_bench::{rubis_scenario, write_bench_json, JsonValue};
use e2eprof_timeseries::density::DensityEstimator;
use e2eprof_timeseries::{wire, Nanos, Quanta, RleSeries};

fn bench_fig10(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig10_compression");
    for w_secs in [30u64, 60, 120] {
        let scenario = rubis_scenario(Nanos::from_secs(w_secs), Nanos::from_secs(2), 42);
        let n = scenario.rubis.nodes();
        let timestamps: Vec<Nanos> = scenario
            .rubis
            .sim()
            .captures()
            .edge_signal(n.ts1, n.ws)
            .to_vec();
        group.throughput(Throughput::Elements(timestamps.len() as u64));

        group.bench_with_input(
            BenchmarkId::new("density_estimation", w_secs),
            &timestamps,
            |b, ts| {
                b.iter(|| DensityEstimator::from_timestamps(Quanta::from_millis(1), 50, ts));
            },
        );

        let sparse = DensityEstimator::from_timestamps(Quanta::from_millis(1), 50, &timestamps);
        group.bench_with_input(BenchmarkId::new("rle_encode", w_secs), &sparse, |b, s| {
            b.iter(|| s.to_rle());
        });

        let rle = sparse.to_rle();
        group.bench_with_input(BenchmarkId::new("rle_decode", w_secs), &rle, |b, r| {
            b.iter(|| r.to_sparse());
        });

        group.bench_with_input(BenchmarkId::new("wire_encode", w_secs), &rle, |b, r| {
            b.iter(|| wire::encode(r));
        });

        let frame = wire::encode(&rle);
        group.bench_with_input(BenchmarkId::new("wire_decode", w_secs), &frame, |b, f| {
            b.iter(|| wire::decode(f).expect("valid frame"));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig10);

/// Bytes on the wire to ship one full window of every captured edge's
/// density series, per underlying message record.
fn size_report() {
    let scenario = rubis_scenario(Nanos::from_secs(60), Nanos::from_secs(2), 42);
    let captures = scenario.rubis.sim().captures();
    let mut entries: Vec<((u32, u32), RleSeries)> = Vec::new();
    let mut records = 0u64;
    for (src, dst) in captures.edges() {
        let ts = captures.edge_signal(src, dst).to_vec();
        records += ts.len() as u64;
        let rle = DensityEstimator::from_timestamps(Quanta::from_millis(1), 50, &ts).to_rle();
        entries.push(((src.index() as u32, dst.index() as u32), rle));
    }
    assert!(records > 10_000, "scenario too quiet: {records} records");

    let v1_bytes: u64 = entries
        .iter()
        .map(|(_, s)| wire::encode(s).as_ref().len() as u64)
        .sum();
    let v2_raw_bytes = wire::encode_batch(&entries, false).as_ref().len() as u64;
    let v2_int_bytes = wire::encode_batch(&entries, true).as_ref().len() as u64;
    let per = |bytes: u64| bytes as f64 / records as f64;
    let ratio = per(v1_bytes) / per(v2_int_bytes);

    println!(
        "fig10 wire sizes: {} edges, {records} records in one 60 s window",
        entries.len()
    );
    println!(
        "  v1 per-edge frames   {v1_bytes:>8} B  {:>6.3} B/record",
        per(v1_bytes)
    );
    println!(
        "  v2 batch (raw f64)   {v2_raw_bytes:>8} B  {:>6.3} B/record",
        per(v2_raw_bytes)
    );
    println!(
        "  v2 batch (int amp)   {v2_int_bytes:>8} B  {:>6.3} B/record  ({ratio:.2}x fewer than v1)",
        per(v2_int_bytes)
    );
    assert!(
        ratio >= 1.5,
        "wire v2 must spend >= 1.5x fewer bytes/record than v1, got {ratio:.2}x"
    );
    assert!(
        v2_int_bytes <= v2_raw_bytes,
        "integer amplitudes must never cost more than raw f64"
    );

    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("fig10_compression".into())),
        ("edges".into(), JsonValue::Int(entries.len() as u64)),
        ("records".into(), JsonValue::Int(records)),
        ("v1_bytes".into(), JsonValue::Int(v1_bytes)),
        ("v2_raw_bytes".into(), JsonValue::Int(v2_raw_bytes)),
        ("v2_int_amp_bytes".into(), JsonValue::Int(v2_int_bytes)),
        ("v1_bytes_per_record".into(), JsonValue::Num(per(v1_bytes))),
        (
            "v2_raw_bytes_per_record".into(),
            JsonValue::Num(per(v2_raw_bytes)),
        ),
        (
            "v2_int_amp_bytes_per_record".into(),
            JsonValue::Num(per(v2_int_bytes)),
        ),
        ("v1_over_v2_int_amp".into(), JsonValue::Num(ratio)),
    ]);
    let path = write_bench_json("fig10_compression", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}

fn main() {
    let mut c = Criterion::default();
    benches(&mut c);
    size_report();
}
