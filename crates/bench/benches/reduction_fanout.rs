//! Bytes-on-wire saved by the analyzer→tracer reduction feedback loop on
//! the noise-tier fanout workload.
//!
//! One front end serves the traced `cli` root through a hot backend while
//! a time-disjoint `noise` client keeps `BACKENDS` cold backends busy:
//! live traffic, zero causal evidence for the owned root. The same run is
//! driven twice through in-process tracer agents whose frame sink counts
//! what each frame would cost on the socket transport (envelope header +
//! payload) — once with reduction off, once with the feedback loop on,
//! routing each refresh's hint snapshot back to every agent exactly like
//! the distributed pipeline does.
//!
//! Asserts the reduced run ships at least 3× fewer bytes while
//! discovering the identical strong-edge set, and writes
//! `BENCH_reduction_fanout.json`.

use crossbeam::channel::unbounded;
use e2eprof_bench::{noise_fanout_sim, write_bench_json, JsonValue};
use e2eprof_core::analyzer::{OnlineAnalyzer, ReductionStats};
use e2eprof_core::config::{ReductionConfig, ScreeningConfig};
use e2eprof_core::graph::{NodeLabels, ServiceGraph};
use e2eprof_core::pathmap::roots_from_topology;
use e2eprof_core::tracer::{FrameSink, TracerAgent, TracerFrame};
use e2eprof_core::{PathmapConfig, WireVersion};
use e2eprof_net::frame::HEADER_LEN;
use e2eprof_netsim::prelude::*;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::Tick;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const BACKENDS: usize = 8;
const CLI_STEP_MS: u64 = 40;
const NOISE_STEP_MS: u64 = 2;
const SEED: u64 = 17;
const TOTAL_SECS: u64 = 300;
const STEP_SECS: u64 = 2;

fn config(reduction: bool) -> PathmapConfig {
    let mut b = PathmapConfig::builder()
        .window(Nanos::from_secs(20))
        .refresh(Nanos::from_secs(5))
        .max_delay(Nanos::from_millis(500))
        .wire(WireVersion::V2)
        .screening(ScreeningConfig {
            decimation: 8,
            hysteresis: 0.5,
        });
    if reduction {
        b = b.reduction(ReductionConfig {
            base_level: 64,
            patience: 2,
        });
    }
    b.build()
}

/// Counts what each frame would cost on the socket transport — the
/// envelope header plus the wire payload — while forwarding it to the
/// analyzer channel unchanged.
struct CountingSink {
    tx: crossbeam::channel::Sender<TracerFrame>,
    bytes: Arc<AtomicU64>,
    frames: Arc<AtomicU64>,
}

impl FrameSink for CountingSink {
    fn send_frame(&mut self, frame: TracerFrame) -> u64 {
        let payload = match &frame {
            TracerFrame::Series { payload, .. }
            | TracerFrame::Batch { payload }
            | TracerFrame::Backfill { payload } => payload.len(),
        };
        self.bytes
            .fetch_add((HEADER_LEN + payload) as u64, Ordering::Relaxed);
        self.frames.fetch_add(1, Ordering::Relaxed);
        let _ = self.tx.send(frame);
        0
    }
}

struct RunResult {
    graphs: Vec<ServiceGraph>,
    bytes: u64,
    frames: u64,
    stats: Option<ReductionStats>,
}

/// Replays the finished run through counting-sink agents and an analyzer
/// owning only the `cli` root, feeding hint snapshots back after every
/// refresh (the in-process mirror of the distributed feedback loop).
fn replay(sim: &Simulation, reduction: bool) -> RunResult {
    let config = config(reduction);
    let (tx, rx) = unbounded();
    let bytes = Arc::new(AtomicU64::new(0));
    let frames = Arc::new(AtomicU64::new(0));
    let clients: HashSet<NodeId> = sim.topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = sim
        .topology()
        .services()
        .into_iter()
        .map(|node| {
            let sink = CountingSink {
                tx: tx.clone(),
                bytes: bytes.clone(),
                frames: frames.clone(),
            };
            TracerAgent::with_sink(node, clients.clone(), config.clone(), Box::new(sink))
        })
        .collect();
    let mut roots = roots_from_topology(sim.topology());
    roots.sort_unstable();
    let universe: HashSet<NodeId> = roots.iter().map(|&(c, _)| c).collect();
    roots.truncate(1);
    let mut analyzer = OnlineAnalyzer::with_universe(
        config,
        roots,
        universe,
        NodeLabels::from_topology(sim.topology()),
        rx,
    );
    let mut last = Vec::new();
    for step in 1..=(TOTAL_SECS / STEP_SECS) {
        let now = Nanos::from_secs(step * STEP_SECS);
        let drain = Tick::new(step * STEP_SECS * 1_000 - 1_000);
        for a in &mut agents {
            a.poll(sim.captures(), drain);
        }
        analyzer.ingest();
        let graphs = analyzer.refresh(now);
        if let Some(hint) = analyzer.take_hints() {
            for a in &mut agents {
                a.apply_hint_state(&hint);
            }
        }
        if !graphs.is_empty() {
            last = graphs;
        }
    }
    RunResult {
        graphs: last,
        bytes: bytes.load(Ordering::Relaxed),
        frames: frames.load(Ordering::Relaxed),
        stats: analyzer.reduction_stats(),
    }
}

/// Sorted (client, strong-edge set) for cross-run comparison.
fn edge_sets(graphs: &[ServiceGraph]) -> Vec<(String, Vec<(NodeId, NodeId)>)> {
    let mut v: Vec<_> = graphs
        .iter()
        .map(|g| {
            let mut edges: Vec<_> = g.edges().iter().map(|e| (e.from, e.to)).collect();
            edges.sort_unstable();
            (g.client_label.clone(), edges)
        })
        .collect();
    v.sort();
    v
}

fn main() {
    let mut sim = noise_fanout_sim(
        BACKENDS,
        CLI_STEP_MS,
        NOISE_STEP_MS,
        SEED,
        TOTAL_SECS as f64,
    );
    sim.run_until(Nanos::from_secs(TOTAL_SECS));
    println!(
        "reduction_fanout: 1 hot + {BACKENDS} cold backends, {TOTAL_SECS} s run, \
         {} packets captured",
        sim.captures().total_packets(),
    );

    let plain = replay(&sim, false);
    let reduced = replay(&sim, true);

    assert_eq!(
        edge_sets(&plain.graphs),
        edge_sets(&reduced.graphs),
        "reduction changed the discovered strong-edge set"
    );
    assert!(!plain.graphs.is_empty(), "no graphs discovered");
    let stats = reduced.stats.expect("reduction stats present when enabled");
    assert!(
        stats.demotions >= BACKENDS as u64,
        "cold backends never demoted: {stats:?}"
    );
    let ratio = plain.bytes as f64 / reduced.bytes as f64;
    println!(
        "  reduction off  {:>9} B on wire  ({} frames)",
        plain.bytes, plain.frames
    );
    println!(
        "  reduction on   {:>9} B on wire  ({} frames)  {ratio:.2}x fewer bytes",
        reduced.bytes, reduced.frames
    );
    println!(
        "  {} demotions, {} promotions, {} edges reduced at end of run",
        stats.demotions, stats.promotions, stats.reduced_now
    );
    assert!(
        ratio >= 3.0,
        "reduction must ship >= 3x fewer bytes on the fanout workload, got {ratio:.2}x"
    );

    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("reduction_fanout".into())),
        ("cold_backends".into(), JsonValue::Int(BACKENDS as u64)),
        ("run_secs".into(), JsonValue::Int(TOTAL_SECS)),
        ("bytes_on_wire_off".into(), JsonValue::Int(plain.bytes)),
        ("bytes_on_wire_on".into(), JsonValue::Int(reduced.bytes)),
        ("frames_off".into(), JsonValue::Int(plain.frames)),
        ("frames_on".into(), JsonValue::Int(reduced.frames)),
        ("bytes_ratio".into(), JsonValue::Num(ratio)),
        ("demotions".into(), JsonValue::Int(stats.demotions)),
        ("promotions".into(), JsonValue::Int(stats.promotions)),
        (
            "reduced_now".into(),
            JsonValue::Int(stats.reduced_now as u64),
        ),
        ("strong_edges_identical".into(), JsonValue::Bool(true)),
    ]);
    let path = write_bench_json("reduction_fanout", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
