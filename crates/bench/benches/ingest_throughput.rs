//! Streaming-ingest fast path: tracer flush → wire → analyzer windows.
//!
//! Replays an identical synthetic workload (64 edges × 600 flushes of
//! bursty density-shaped RLE chunks, most flushes catching an edge idle) through the two wire paths:
//!
//! * **v1**: one frame per edge per flush — per-frame encode, allocation,
//!   channel send, decode to an owned `RleSeries`, window append.
//! * **v2**: one batch frame per flush — delta/varint batch encode into a
//!   reused buffer, one send, and zero-copy cursor ingest streaming runs
//!   straight into the sliding windows (no intermediate series).
//!
//! Each timed repetition uses a fresh analyzer (replaying the same chunks
//! into a warm one would make them stale duplicates and skip the window
//! work). The bench asserts the v2 path sustains at least 2× the v1
//! records/sec and writes `BENCH_ingest_throughput.json`.

use crossbeam::channel::unbounded;
use e2eprof_bench::{fmt_duration, write_bench_json, JsonValue};
use e2eprof_core::analyzer::OnlineAnalyzer;
use e2eprof_core::graph::NodeLabels;
use e2eprof_core::tracer::TracerFrame;
use e2eprof_core::{PathmapConfig, WireVersion};
use e2eprof_timeseries::{wire, Nanos, Quanta, RleSeries, Run, Tick};
use std::time::{Duration, Instant};

// Flush cadence mirrors a real deployment: ΔW is small next to the
// window, so each flush ships a short, sparse chunk per edge and the
// per-frame fixed costs (encode, allocation, send, decode) dominate the
// per-run work — exactly what the batch format amortizes.
const EDGES: usize = 64;
const FLUSHES: u64 = 600;
const CHUNK_TICKS: u64 = 16;
const REPS: usize = 15;

fn config(wire: WireVersion) -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(10))
        .refresh(Nanos::from_secs(2))
        .max_delay(Nanos::from_secs(1))
        .wire(wire)
        .build()
}

/// Density-shaped chunks: bursts of √count amplitude separated by silent
/// gaps, contiguous across flushes, deterministic via xorshift.
fn workload() -> Vec<Vec<((u32, u32), RleSeries)>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    (0..FLUSHES)
        .map(|flush| {
            let start = flush * CHUNK_TICKS;
            (0..EDGES)
                .map(|e| {
                    let mut runs = Vec::new();
                    let mut t = start;
                    let end = start + CHUNK_TICKS;
                    while t < end {
                        t += next() % 96; // silent gap — most flushes catch an edge idle
                        if t >= end {
                            break;
                        }
                        let len = (1 + next() % 4).min(end - t);
                        let count = 1 + next() % 24;
                        runs.push(Run::new(Tick::new(t), len, (count as f64).sqrt()));
                        t += len;
                    }
                    let key = (e as u32, (e + EDGES) as u32);
                    (
                        key,
                        RleSeries::from_parts(Tick::new(start), CHUNK_TICKS, runs),
                    )
                })
                .collect()
        })
        .collect()
}

/// Underlying message count a density series represents: Σ len·value².
fn records(flushes: &[Vec<((u32, u32), RleSeries)>]) -> u64 {
    flushes
        .iter()
        .flatten()
        .flat_map(|(_, s)| s.runs())
        .map(|r| r.len() * (r.value() * r.value()).round() as u64)
        .sum()
}

fn analyzer(wire: WireVersion) -> (OnlineAnalyzer, crossbeam::channel::Sender<TracerFrame>) {
    let (tx, rx) = unbounded();
    let labels = NodeLabels::new((0..2 * EDGES).map(|i| format!("n{i}")).collect());
    (
        OnlineAnalyzer::new(config(wire), Vec::new(), labels, rx),
        tx,
    )
}

/// v1: frame per edge per flush, exactly the tracer's per-series loop.
fn drive_v1(flushes: &[Vec<((u32, u32), RleSeries)>]) -> Duration {
    let (mut an, tx) = analyzer(WireVersion::V1);
    let mut buf = Vec::new();
    let t0 = Instant::now();
    for flush in flushes {
        for (key, chunk) in flush {
            wire::encode_into(chunk, &mut buf);
            let frame = TracerFrame::Series {
                edge: (
                    e2eprof_netsim::NodeId::new(key.0),
                    e2eprof_netsim::NodeId::new(key.1),
                ),
                payload: bytes::Bytes::copy_from_slice(&buf),
            };
            tx.send(frame).expect("analyzer alive");
        }
        an.ingest();
    }
    t0.elapsed()
}

/// v2: one batch frame per flush, exactly the tracer's coalesced path.
fn drive_v2(flushes: &[Vec<((u32, u32), RleSeries)>]) -> Duration {
    let (mut an, tx) = analyzer(WireVersion::V2);
    let mut buf = Vec::new();
    let t0 = Instant::now();
    for flush in flushes {
        wire::encode_batch_into(flush, true, &mut buf);
        tx.send(TracerFrame::Batch {
            payload: bytes::Bytes::copy_from_slice(&buf),
        })
        .expect("analyzer alive");
        an.ingest();
    }
    t0.elapsed()
}

fn best_of(reps: usize, f: impl Fn() -> Duration) -> Duration {
    (0..reps).map(|_| f()).min().expect("at least one rep")
}

fn main() {
    let flushes = workload();
    let total_records = records(&flushes);
    let frames_v1 = EDGES as u64 * FLUSHES;
    println!(
        "ingest_throughput: {EDGES} edges x {FLUSHES} flushes x {CHUNK_TICKS} ticks \
         = {total_records} records ({frames_v1} v1 frames vs {FLUSHES} v2 frames)"
    );

    let v1 = best_of(REPS, || drive_v1(&flushes));
    let v2 = best_of(REPS, || drive_v2(&flushes));
    let rps = |d: Duration| total_records as f64 / d.as_secs_f64();
    let (v1_rps, v2_rps) = (rps(v1), rps(v2));
    let speedup = v2_rps / v1_rps;
    println!(
        "  v1 per-series  {:>9}  {:>6.1} M records/s",
        fmt_duration(v1),
        v1_rps / 1e6
    );
    println!(
        "  v2 zero-copy   {:>9}  {:>6.1} M records/s  speedup {speedup:.2}x",
        fmt_duration(v2),
        v2_rps / 1e6
    );
    assert!(
        speedup >= 2.0,
        "v2 zero-copy ingest must be >= 2x v1 records/sec, got {speedup:.2}x \
         ({:.1}M vs {:.1}M records/s)",
        v2_rps / 1e6,
        v1_rps / 1e6
    );

    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("ingest_throughput".into())),
        ("edges".into(), JsonValue::Int(EDGES as u64)),
        ("flushes".into(), JsonValue::Int(FLUSHES)),
        ("chunk_ticks".into(), JsonValue::Int(CHUNK_TICKS)),
        ("records".into(), JsonValue::Int(total_records)),
        ("v1_frames".into(), JsonValue::Int(frames_v1)),
        ("v2_frames".into(), JsonValue::Int(FLUSHES)),
        (
            "v1_ns".into(),
            JsonValue::Int(v1.as_nanos().try_into().unwrap_or(u64::MAX)),
        ),
        (
            "v2_ns".into(),
            JsonValue::Int(v2.as_nanos().try_into().unwrap_or(u64::MAX)),
        ),
        ("v1_records_per_sec".into(), JsonValue::Num(v1_rps)),
        ("v2_records_per_sec".into(), JsonValue::Num(v2_rps)),
        ("speedup".into(), JsonValue::Num(speedup)),
    ]);
    let path = write_bench_json("ingest_throughput", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
