//! Scaling of the online analyzer's sharded correlation refresh.
//!
//! Replays the same captured Delta Revenue Pipeline trace through one
//! analyzer per worker count, timing only the `refresh` calls. Every
//! analyzer sees byte-identical tracer frames, and the outputs are
//! asserted equal across worker counts — the speedup must come purely
//! from sharding the per-(client, edge) incremental-correlation work.

use crossbeam::channel::unbounded;
use e2eprof_apps::delta::{Delta, DeltaConfig};
use e2eprof_bench::{write_bench_json, JsonValue};
use e2eprof_core::analyzer::OnlineAnalyzer;
use e2eprof_core::graph::{NodeLabels, ServiceGraph};
use e2eprof_core::pathmap::roots_from_topology;
use e2eprof_core::tracer::TracerAgent;
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::{Nanos, Quanta, Tick};
use std::collections::HashSet;
use std::time::{Duration, Instant};

const QUEUES: usize = 12;
const STEP_SECS: u64 = 60;
const STEPS: u64 = 8;
const TICK_MS: u64 = 20;

fn config(num_workers: usize) -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(TICK_MS))
        .omega_ticks(20)
        .window(Nanos::from_minutes(6))
        .refresh(Nanos::from_secs(STEP_SECS))
        .max_delay(Nanos::from_secs(30))
        .num_workers(num_workers)
        .build()
}

/// Replays the finished run's captures through a fresh analyzer, returning
/// the summed refresh time and the last non-empty graph set.
fn replay(delta: &Delta, num_workers: usize) -> (Duration, Vec<ServiceGraph>) {
    let config = config(num_workers);
    let (tx, rx) = unbounded();
    let clients: HashSet<NodeId> = delta.sim().topology().clients().into_iter().collect();
    let mut agents: Vec<TracerAgent> = delta
        .sim()
        .topology()
        .services()
        .into_iter()
        .map(|node| TracerAgent::new(node, clients.clone(), config.clone(), tx.clone()))
        .collect();
    let mut analyzer = OnlineAnalyzer::new(
        config,
        roots_from_topology(delta.sim().topology()),
        NodeLabels::from_topology(delta.sim().topology()),
        rx,
    );

    let mut in_refresh = Duration::ZERO;
    let mut last = Vec::new();
    for step in 1..=STEPS {
        let drain = Tick::new((step * STEP_SECS - 1) * (1000 / TICK_MS));
        for a in &mut agents {
            a.poll(delta.sim().captures(), drain);
        }
        analyzer.ingest();
        let t0 = Instant::now();
        let graphs = analyzer.refresh(Nanos::from_secs(step * STEP_SECS));
        in_refresh += t0.elapsed();
        if !graphs.is_empty() {
            last = graphs;
        }
    }
    (in_refresh, last)
}

fn main() {
    let mut delta = Delta::build(DeltaConfig {
        queues: QUEUES,
        events_per_hour: 240_000.0,
        ..DeltaConfig::default()
    });
    delta
        .sim_mut()
        .run_until(Nanos::from_secs(STEPS * STEP_SECS));
    println!(
        "refresh_scaling: {QUEUES} feeds, {STEPS} refreshes, \
         {} packets captured, host parallelism {}",
        delta.sim().captures().total_packets(),
        e2eprof_core::parallel::available_workers(),
    );

    let worker_counts = [1usize, 2, 4, 8];
    let mut baseline = None;
    let mut reference: Option<Vec<ServiceGraph>> = None;
    let mut rows = Vec::new();
    for &workers in &worker_counts {
        let (elapsed, graphs) = replay(&delta, workers);
        match &reference {
            None => reference = Some(graphs),
            Some(r) => assert_eq!(
                r, &graphs,
                "num_workers={workers} diverged from serial output"
            ),
        }
        let total = elapsed.as_secs_f64();
        let speedup = *baseline.get_or_insert(total) / total;
        println!(
            "  num_workers={workers:>2}  refresh total {:>8.1} ms  \
             ({:>6.1} ms/refresh, speedup {speedup:.2}x)",
            total * 1e3,
            total * 1e3 / STEPS as f64,
        );
        rows.push(JsonValue::Obj(vec![
            ("num_workers".into(), JsonValue::Int(workers as u64)),
            ("refresh_total_ms".into(), JsonValue::Num(total * 1e3)),
            (
                "ms_per_refresh".into(),
                JsonValue::Num(total * 1e3 / STEPS as f64),
            ),
            ("speedup".into(), JsonValue::Num(speedup)),
        ]));
    }
    let report = JsonValue::Obj(vec![
        ("bench".into(), JsonValue::Str("refresh_scaling".into())),
        ("queues".into(), JsonValue::Int(QUEUES as u64)),
        ("refreshes".into(), JsonValue::Int(STEPS)),
        (
            "host_parallelism".into(),
            JsonValue::Int(e2eprof_core::parallel::available_workers() as u64),
        ),
        ("rows".into(), JsonValue::Arr(rows)),
    ]);
    let path = write_bench_json("refresh_scaling", &report).expect("write bench artifact");
    println!("  wrote {}", path.display());
}
