//! Table 1 (Criterion form): end-to-end cost of one run of each
//! path-selection policy (simulation + closed-loop analysis), on a
//! shortened 1-minute measurement interval.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use e2eprof_apps::experiments::{table1, Table1Policy};
use e2eprof_timeseries::Nanos;

fn bench_table1(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_scheduling");
    group.sample_size(10);
    for (policy, name) in [
        (Table1Policy::RoundRobinBaseline, "round_robin_baseline"),
        (Table1Policy::RoundRobinPerturbed, "round_robin_perturbed"),
        (Table1Policy::E2EProfPerturbed, "e2eprof_perturbed"),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| table1(policy, 42, Nanos::from_minutes(1)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
