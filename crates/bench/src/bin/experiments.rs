//! Regenerates every table and figure of the paper's evaluation section.
//!
//! ```sh
//! cargo run --release -p e2eprof-bench --bin experiments -- all
//! cargo run --release -p e2eprof-bench --bin experiments -- fig9 --full
//! ```
//!
//! Subcommands: `fig5`, `fig6`, `accuracy`, `fig7`, `table1`, `fig9`,
//! `fig10`, `delta`, `skew`, `screening`, `ablations`, `baselines`,
//! `all`. `--full` enlarges the cost sweeps (fig9/fig10: `T_u` = 30 s,
//! windows to 4 min) and the Delta run (25 queues) — substantially slower.

use e2eprof_apps::delta::DeltaConfig;
use e2eprof_apps::experiments::{
    accuracy, delta_analysis, delta_paper_config, diagnose_delta, fig5_affinity, fig6_round_robin,
    fig7_change_detection, skew_estimation, table1, Table1Policy,
};
use e2eprof_bench::{fmt_duration, rubis_scenario};
use e2eprof_core::pathmap::Pathmap;
use e2eprof_timeseries::{Nanos, Tick};
use e2eprof_xcorr::engine::all_engines;
use e2eprof_xcorr::incremental::IncrementalCorrelator;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let cmd = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");
    match cmd {
        "fig5" => fig5(),
        "fig6" => fig6(),
        "accuracy" => run_accuracy(),
        "fig7" => fig7(),
        "table1" => run_table1(),
        "fig9" => fig9(full),
        "fig10" => fig10(full),
        "delta" => delta(full),
        "skew" => skew(),
        "screening" => screening(),
        "ablations" => ablations(),
        "baselines" => baselines(),
        "all" => {
            fig5();
            fig6();
            run_accuracy();
            fig7();
            run_table1();
            fig9(full);
            fig10(full);
            delta(full);
            skew();
            screening();
            ablations();
            baselines();
        }
        other => {
            eprintln!("unknown experiment {other:?}");
            eprintln!("usage: experiments [fig5|fig6|accuracy|fig7|table1|fig9|fig10|delta|skew|screening|ablations|baselines|all] [--full]");
            std::process::exit(2);
        }
    }
}

fn header(title: &str) {
    println!("\n============================================================");
    println!("{title}");
    println!("============================================================\n");
}

fn fig5() {
    header("Fig. 5 — service graph, affinity-based server selection");
    let (_, graphs) = fig5_affinity(42, Nanos::from_minutes(2));
    for g in &graphs {
        println!("{g}");
    }
}

fn fig6() {
    header("Fig. 6 — service graph, round-robin server selection");
    let (_, graphs) = fig6_round_robin(42, Nanos::from_minutes(2));
    for g in &graphs {
        println!("{g}");
    }
}

fn run_accuracy() {
    header("Sec. 4.1.1 — inferred delays vs. ground truth");
    let reports = accuracy(42, Nanos::from_minutes(2));
    for (name, r) in ["bidding", "comment"].iter().zip(&reports) {
        println!("class {name}:");
        for h in &r.hops {
            println!(
                "  {:>5} -> {:<5} inferred {:>6.1}ms  actual {:>6.1}ms  error {:>4.1}%",
                h.from,
                h.to,
                h.inferred.as_millis_f64(),
                h.actual.as_millis_f64(),
                h.rel_error * 100.0
            );
        }
        println!(
            "  end-to-end: inferred {:?}, client-observed {:.1}ms, gap {:+.1}%",
            r.e2e_inferred.map(|d| d.as_millis_f64()),
            r.e2e_actual.as_millis_f64(),
            r.e2e_gap.unwrap_or(f64::NAN) * 100.0
        );
        println!();
    }
    println!("(paper: per-server delays within ~10%; client observes ~16% more)");
}

fn fig7() {
    header("Fig. 7 — performance change detection (delay staircase at EJB2)");
    let (points, _) = fig7_change_detection(42, 15);
    println!(
        "{:>6}  {:>10}  {:>16}  {:>14}",
        "time", "injected", "E2EProf @ EJB2", "frontend avg"
    );
    for p in &points {
        println!(
            "{:>5.0}s  {:>8.1}ms  {:>14.1}ms  {:>12.1}ms",
            p.at.as_secs_f64(),
            p.injected.as_millis_f64(),
            p.detected.map(|d| d.as_millis_f64()).unwrap_or(f64::NAN),
            p.frontend_avg
                .map(|d| d.as_millis_f64())
                .unwrap_or(f64::NAN),
        );
    }
    println!("\n(detected = injected + EJB2's actual processing time; the");
    println!(" front-end average moves by about half — most requests take");
    println!(" the unperturbed path)");
}

fn run_table1() {
    header("Table 1 — average latency with different path-selection methods");
    println!("{:<36} {:>9} {:>9}", "", "Bidding", "Comment");
    for (policy, label) in [
        (
            Table1Policy::RoundRobinBaseline,
            "Round-Robin (no perturbation)",
        ),
        (
            Table1Policy::RoundRobinPerturbed,
            "Round-Robin (with perturbation)",
        ),
        (
            Table1Policy::E2EProfPerturbed,
            "E2EProf (with perturbation)",
        ),
    ] {
        let row = table1(policy, 42, Nanos::from_minutes(10));
        println!(
            "{:<36} {:>7.0}ms {:>7.0}ms",
            label,
            row.bidding.as_millis_f64(),
            row.comment.as_millis_f64()
        );
    }
    println!("\n(paper: 72/64, 121/109, 97/139)");
}

fn fig9(full: bool) {
    header("Fig. 9 — execution time of service path analysis");
    // The paper sweeps W to 32 min at T_u = 1 min; the quadratic engines
    // make that hours of compute, so --full covers the same shape at
    // W ≤ 4 min / T_u = 30 s (still ~10 min of wall clock on one core).
    let (windows, max_delay) = if full {
        (vec![60u64, 120, 240], Nanos::from_secs(30))
    } else {
        (vec![30u64, 60, 120], Nanos::from_secs(5))
    };
    println!(
        "(τ = 1ms, ω = 50ms, T_u = {}s; engines recompute the full window,",
        max_delay.as_secs_f64()
    );
    println!(" 'incremental' updates correlations for one ΔW = W/4 refresh)\n");
    println!(
        "{:>8}  {:>16} {:>16} {:>16} {:>16} {:>16}",
        "W", "no-compression", "burst", "rle", "fft", "incremental"
    );
    for w in windows {
        let scenario = rubis_scenario(Nanos::from_secs(w), max_delay, 42);
        let mut cells = Vec::new();
        for engine in all_engines() {
            let pm = Pathmap::with_correlator(scenario.config.clone(), engine);
            let t0 = Instant::now();
            let graphs = pm.discover(&scenario.signals, &scenario.roots, &scenario.labels);
            let dt = t0.elapsed();
            assert!(!graphs.is_empty());
            cells.push(fmt_duration(dt));
        }
        // Incremental: advance every (client, edge) correlator by ΔW.
        let dt = time_incremental_refresh(&scenario);
        cells.push(fmt_duration(dt));
        println!(
            "{:>7}s  {:>16} {:>16} {:>16} {:>16} {:>16}",
            w, cells[0], cells[1], cells[2], cells[3], cells[4]
        );
    }
    println!("\n(paper's ordering: RLE ≪ burst ≈ no-compression, FFT superlinear");
    println!(" and non-incremental; incremental per-refresh cost ~flat in W)");
}

/// Times one ΔW sliding-window advance of the incremental correlators for
/// every (client, edge) pair the analysis correlates.
fn time_incremental_refresh(s: &e2eprof_bench::Scenario) -> std::time::Duration {
    let max_lag = s.config.max_lag();
    let refresh = s.config.refresh_ticks();
    let (start, end) = s.signals.window();
    let mid = Tick::new(start.index() + (end.index() - start.index()) / 2);
    let mut total = std::time::Duration::ZERO;
    for &(client, front) in &s.roots {
        let Some(x) = s.signals.source_signal(client, front) else {
            continue;
        };
        let edges: Vec<_> = s.signals.edges().collect();
        for (from, to) in edges {
            let Some(y) = s.signals.target_signal(from, to) else {
                continue;
            };
            // Prime a correlator on the first half-window (untimed), then
            // time one ΔW append + evict cycle.
            let mut inc = IncrementalCorrelator::new(max_lag);
            inc.append(&x.slice(start, mid), y);
            let t0 = Instant::now();
            let new_end = Tick::new((mid.index() + refresh).min(end.index()));
            inc.append(&x.slice(mid, new_end), y);
            inc.evict_to(Tick::new(start.index() + refresh), &x, y);
            total += t0.elapsed();
        }
    }
    total
}

fn fig10(full: bool) {
    header("Fig. 10 — length of the time-series trace under each representation");
    let windows = if full {
        vec![60u64, 120, 240, 480]
    } else {
        vec![30u64, 60, 120, 240]
    };
    println!("(TS1 <-> WS connection, τ = 1ms, ω = 50ms)\n");
    println!(
        "{:>8}  {:>14} {:>16} {:>14} {:>12} {:>8}",
        "W", "total packets", "no compression", "burst", "RLE runs", "ratio"
    );
    for w in windows {
        let scenario = rubis_scenario(Nanos::from_secs(w), Nanos::from_secs(5), 42);
        let n = scenario.rubis.nodes();
        let y = scenario
            .signals
            .target_signal(n.ts1, n.ws)
            .expect("TS1->WS signal");
        let sparse = y.to_sparse();
        let packets: usize = scenario
            .rubis
            .sim()
            .captures()
            .edge_signal(n.ts1, n.ws)
            .len();
        let dense_len = y.len();
        println!(
            "{:>7}s  {:>14} {:>16} {:>14} {:>12} {:>7.1}x",
            w,
            packets,
            dense_len,
            sparse.num_entries(),
            y.num_runs(),
            dense_len as f64 / y.num_runs().max(1) as f64,
        );
    }
    println!("\n(paper: RLE an order of magnitude shorter than the alternatives,");
    println!(" and far below the raw packet count)");
}

fn delta(full: bool) {
    header("Sec. 4.3 — Delta Air Lines Revenue Pipeline");
    let queues = if full { 25 } else { 8 };
    let run_for = Nanos::from_minutes(135);
    println!(
        "({queues} queues, {} minutes simulated, τ = 1s, W = 2h)\n",
        135
    );

    let (delta, graphs) = delta_analysis(
        DeltaConfig {
            queues,
            ..DeltaConfig::default()
        },
        &delta_paper_config(),
        run_for,
    );
    let complete = graphs
        .iter()
        .filter(|g| {
            g.has_edge_between("hub", "parser")
                && g.has_edge_between("parser", "validator")
                && g.has_edge_between("validator", "revenue_db")
        })
        .count();
    println!(
        "full pipeline recovered for {complete}/{} bursty feeds",
        queues - 1
    );
    if let Some(g) = graphs.iter().find(|g| g.client_label == "feed_01") {
        println!("\n{g}");
    }
    println!("(sub-second delays quantize to 0 at τ = 1s — the paper's");
    println!(" reported delay inaccuracy; paths are still correct)\n");
    drop(delta);

    let mut surged = e2eprof_apps::delta::Delta::build(DeltaConfig {
        queues,
        batch_at: Some(Nanos::from_minutes(10)),
        batch_size: 4_000,
        ..DeltaConfig::default()
    });
    surged.sim_mut().run_until(Nanos::from_minutes(20));
    println!(
        "4 AM batch: hub queue high-water mark {} (paper: ~4000)\n",
        surged.sim().max_queue_len(surged.nodes().hub)
    );

    for slow in [false, true] {
        let (_, graphs) = delta_analysis(
            DeltaConfig {
                queues,
                slow_db: slow,
                ..DeltaConfig::default()
            },
            &delta_paper_config(),
            run_for,
        );
        let d = diagnose_delta(&graphs);
        println!(
            "slow_db={slow}: e2e {:.1}s, deepest forward {:.1}s, tail gap {:.1}s -> suspect {:?}",
            d.e2e.as_secs_f64(),
            d.last_forward.as_secs_f64(),
            d.tail_gap.as_secs_f64(),
            d.suspect
        );
    }
}

fn skew() {
    header("Sec. 3.8 — clock-skew estimation");
    println!(
        "{:>12} {:>14} {:>12} {:>8}",
        "configured", "estimated", "minus link", "corr"
    );
    for skew_ms in [-8i64, -3, 0, 2, 5, 12] {
        let r = skew_estimation(9, skew_ms, Nanos::from_secs(60));
        println!(
            "{:>10}ms {:>12.1}ms {:>10.1}ms {:>8.2}",
            skew_ms,
            r.estimated_offset_ns as f64 / 1e6,
            (r.estimated_offset_ns - 1_000_000) as f64 / 1e6,
            r.strength
        );
    }
}

fn screening() {
    use e2eprof_bench::fanout_sim;
    use e2eprof_core::config::ScreeningConfig;
    use e2eprof_core::graph::NodeLabels;
    use e2eprof_core::pathmap::{roots_from_topology, ScreenedStatelessProvider};
    use e2eprof_core::signals::EdgeSignals;
    use e2eprof_core::ServiceGraph;
    use e2eprof_timeseries::Quanta;
    use e2eprof_xcorr::engine::RleCorrelator;
    use std::collections::HashMap;

    header("Coarse-to-fine screening — candidate pruning on a wide fan-out");
    println!("(6 phase-disjoint bursty clients x 8-backend clusters; dead");
    println!(" cross-cluster pairs are pruned by the decimated-correlation");
    println!(" bound before full-lag correlation; graphs are unchanged)\n");

    let mut sim = fanout_sim(6, 8, 18.0, 0.8, 60.0, 29);
    sim.run_until(Nanos::from_secs(62));
    let base = e2eprof_core::PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(36))
        .refresh(Nanos::from_secs(6))
        .max_delay(Nanos::from_secs(2))
        .build();
    let signals = EdgeSignals::from_capture(sim.captures(), &base, sim.now());
    let roots = roots_from_topology(sim.topology());
    let labels = NodeLabels::from_topology(sim.topology());
    let fronts: HashMap<_, _> = roots.iter().copied().collect();
    let render = |graphs: &[ServiceGraph]| {
        let mut v: Vec<String> = graphs.iter().map(|g| format!("{g}")).collect();
        v.sort();
        v
    };

    let t0 = Instant::now();
    let plain = Pathmap::new(base.clone()).discover(&signals, &roots, &labels);
    let dt_off = t0.elapsed();
    println!(
        "{:>4}  {:>10} {:>7} {:>8} {:>10} {:>8}",
        "k", "candidates", "pruned", "pruned%", "discover", "speedup"
    );
    println!(
        "{:>4}  {:>10} {:>7} {:>8} {:>10} {:>8}",
        "off",
        "-",
        "-",
        "-",
        fmt_duration(dt_off),
        "1.00x"
    );
    let engine = RleCorrelator;
    for k in [4u64, 8, 16] {
        let cfg = e2eprof_core::PathmapConfig::builder()
            .quanta(Quanta::from_millis(1))
            .omega_ticks(50)
            .window(Nanos::from_secs(36))
            .refresh(Nanos::from_secs(6))
            .max_delay(Nanos::from_secs(2))
            .screening(ScreeningConfig {
                decimation: k,
                hysteresis: 0.5,
            })
            .build();
        let screen = cfg.screen().expect("screening configured");
        let pm = Pathmap::new(cfg);
        let t0 = Instant::now();
        let coarse = signals.decimate(screen.factor());
        let mut provider = ScreenedStatelessProvider::new(&engine, screen, &coarse, &fronts);
        let graphs = pm.discover_with(&signals, &roots, &labels, &mut provider);
        let dt = t0.elapsed();
        let stats = provider.stats();
        assert_eq!(
            render(&plain),
            render(&graphs),
            "screening (k = {k}) changed the discovered graphs"
        );
        println!(
            "{:>4}  {:>10} {:>7} {:>7.0}% {:>10} {:>7.2}x",
            k,
            stats.candidates,
            stats.pruned,
            stats.pruned_fraction() * 100.0,
            fmt_duration(dt),
            dt_off.as_secs_f64() / dt.as_secs_f64().max(1e-9)
        );
    }
    println!("\n(the bound is conservative: every discovered edge survives the");
    println!(" screen, and only provably sub-floor pairs skip full-lag work)");
}

fn ablations() {
    use e2eprof_apps::ablations::*;
    header("Ablations — pathmap design-parameter sweeps (Fig. 5 scenario)");
    let rubis = subject(42);
    let row = |q: &EdgeQuality| {
        format!(
            "found {:>2}/14  missing {:>2}  spurious {:>2}  {:>10}",
            q.found,
            q.missing,
            q.spurious,
            fmt_duration(q.elapsed)
        )
    };

    println!("sampling window ω (ticks of τ = 1ms; paper default 50):");
    for (omega, q) in sweep_omega(&rubis, &[1, 10, 50, 200, 1000, 2000]) {
        println!("  ω = {omega:>5}   {}", row(&q));
    }

    println!("\nspike threshold (σ above mean; paper default 3):");
    for (sigma, q) in sweep_sigma(&rubis, &[1.0, 2.0, 3.0, 4.0, 6.0]) {
        println!("  σ = {sigma:>4.1}   {}", row(&q));
    }

    println!("\ntime quantum τ (µs; ω and spike resolution scaled to 50ms):");
    for (tau, q) in sweep_tau(&rubis, &[250, 500, 1_000, 4_000, 16_000]) {
        println!("  τ = {tau:>6}µs {}", row(&q));
    }

    println!("\ntransaction-delay bound T_u (ms; RUBiS e2e ≈ 50ms):");
    for (ms, q) in sweep_max_delay(&rubis, &[10, 30, 60, 200, 1_000, 5_000]) {
        println!("  T_u = {ms:>5}ms {}", row(&q));
    }

    println!("\n  (note: T_u must exceed the correlation bump width — transaction");
    println!("   spread + ω — by enough margin for the mean+3σ threshold to have a");
    println!("   noise floor; bounds at 1-4x the e2e delay detect nothing. Same for");
    println!("   oversized ω: the bump swallows the whole lag range.)");

    println!("\nper-client parallel discovery (Section 3.7):");
    let (seq, par) = parallel_speedup(&rubis);
    println!(
        "  sequential {}   parallel {}   speedup {:.2}x",
        fmt_duration(seq),
        fmt_duration(par),
        seq.as_secs_f64() / par.as_secs_f64().max(1e-9)
    );
}

fn baselines() {
    use e2eprof_core::convolution;
    use e2eprof_core::nesting::Nesting;
    use e2eprof_core::prelude::*;
    use e2eprof_core::signals::EdgeSignals;

    header("Baseline comparison — pathmap vs. nesting vs. convolution");
    println!("(RUBiS affinity, 90 s trace; paper Sec. 2: nesting assumes");
    println!(" RPC-style traffic, convolution is offline full-lag FFT)\n");

    let rubis = e2eprof_apps::ablations::subject(42);
    let sim = rubis.sim();
    let labels = NodeLabels::from_topology(sim.topology());
    let roots = roots_from_topology(sim.topology());
    let cfg = e2eprof_apps::experiments::rubis_config(Nanos::from_secs(60), Nanos::from_secs(15));

    let timed = |name: &str, graphs: Vec<e2eprof_core::ServiceGraph>, dt: std::time::Duration| {
        let bid = graphs.iter().find(|g| g.client_label == "C1");
        let (edges, e2e, bottleneck) = bid
            .map(|g| {
                (
                    g.edges().iter().filter(|e| !e.is_anchor()).count(),
                    g.end_to_end_delay()
                        .map(|d| format!("{:.0}ms", d.as_millis_f64()))
                        .unwrap_or_else(|| "-".into()),
                    g.vertices()
                        .iter()
                        .find(|v| v.bottleneck)
                        .map(|v| v.label.clone())
                        .unwrap_or_else(|| "-".into()),
                )
            })
            .unwrap_or((0, "-".into(), "-".into()));
        println!(
            "{name:<24} {:>2} edges  e2e {:>6}  bottleneck {:<6} {:>10}",
            edges,
            e2e,
            bottleneck,
            fmt_duration(dt)
        );
    };

    let t0 = Instant::now();
    let signals = EdgeSignals::from_capture(sim.captures(), &cfg, sim.now());
    let g = Pathmap::new(cfg.clone()).discover(&signals, &roots, &labels);
    timed("pathmap (RLE, T_u)", g, t0.elapsed());

    let t0 = Instant::now();
    let g = Nesting::default().discover(sim.captures(), &roots, &labels);
    timed("nesting (RPC pairing)", g, t0.elapsed());

    let base = convolution::baseline(&cfg);
    let t0 = Instant::now();
    let signals = EdgeSignals::from_capture(sim.captures(), base.config(), sim.now());
    let g = base.discover(&signals, &roots, &labels);
    timed("convolution (FFT full)", g, t0.elapsed());

    println!("\n(nesting reports forward call edges only; convolution may add");
    println!(" weak spurious edges over the unbounded lag range; all three");
    println!(" agree on the forward path and the bottleneck)");
}
