//! Shared harness for the benchmark suite and the `experiments` binary.
//!
//! Everything here prepares *inputs* (simulated traces, edge signals,
//! prepared correlation pairs) so that benches measure only the analysis
//! work, exactly like the paper's Fig. 9 measures service-graph
//! computation time for already-collected traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use e2eprof_apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof_core::graph::NodeLabels;
use e2eprof_core::pathmap::roots_from_topology;
use e2eprof_core::signals::EdgeSignals;
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::prelude::*;
use e2eprof_netsim::{NodeId, Route};
use e2eprof_timeseries::{Nanos, Quanta, RleSeries};

/// A prepared analysis scenario: a finished RUBiS round-robin run plus the
/// extracted edge signals for one analysis window.
#[derive(Debug)]
pub struct Scenario {
    /// The deployment (kept for truth/labels).
    pub rubis: Rubis,
    /// The analysis configuration.
    pub config: PathmapConfig,
    /// Extracted per-edge signals.
    pub signals: EdgeSignals,
    /// Pathmap roots.
    pub roots: Vec<(NodeId, NodeId)>,
    /// Node labels.
    pub labels: NodeLabels,
}

/// Builds the Fig. 6 (round-robin) deployment, runs it long enough to fill
/// a `window`-sized analysis window, and extracts signals.
///
/// `max_delay` is the correlation lag bound `T_u` (the paper uses 1 min;
/// scaled-down sweeps use less to keep the quadratic engines affordable).
pub fn rubis_scenario(window: Nanos, max_delay: Nanos, seed: u64) -> Scenario {
    let config = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(window)
        .refresh(Nanos::from_nanos(
            (window.as_nanos() / 4).max(1_000_000_000),
        ))
        .max_delay(max_delay)
        .build();
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::RoundRobin,
        seed,
        ..RubisConfig::default()
    });
    // Fill the window plus the unmaterialized tail plus slack.
    let run_for = window + max_delay + Nanos::from_secs(5);
    rubis.sim_mut().run_until(run_for);
    let signals = EdgeSignals::from_capture(rubis.sim().captures(), &config, rubis.sim().now());
    let roots = roots_from_topology(rubis.sim().topology());
    let labels = NodeLabels::from_topology(rubis.sim().topology());
    Scenario {
        rubis,
        config,
        signals,
        roots,
        labels,
    }
}

/// Extracts one prepared correlation pair from a scenario: the bidding
/// client's source signal and the `WS → TS1` edge signal.
pub fn corr_pair(s: &Scenario) -> (RleSeries, RleSeries) {
    let n = s.rubis.nodes();
    let x = s
        .signals
        .source_signal(n.c1, n.ws)
        .expect("bidding source signal");
    let y = s
        .signals
        .target_signal(n.ws, n.ts1)
        .expect("WS->TS1 signal")
        .clone();
    (x, y)
}

/// Builds the wide-fanout screening deployment: one front end fans out to
/// `clients` clusters of `cluster` backends each, and client `c`'s traffic
/// bursts for `burst` seconds at phase `c·(period/clients)` of every
/// `period`-second cycle (one request per 5 ms while on), for
/// `total_secs`.
///
/// With `period/clients − burst` comfortably above the lag bound `T_u`
/// plus the ω smear, the bursts are pairwise time-disjoint within the lag
/// horizon, so each client's causal evidence only ever touches its own
/// cluster — the other clusters' `(client, edge)` pairs are provably dead
/// and a screening tier can prune them. The caller still has to
/// `run_until` the returned simulation.
pub fn fanout_sim(
    clients: usize,
    cluster: usize,
    period: f64,
    burst: f64,
    total_secs: f64,
    seed: u64,
) -> Simulation {
    let burst_trace = |on_start: f64| {
        let mut arrivals = Vec::new();
        let mut cycle = 0.0;
        while cycle < total_secs {
            let mut t = cycle + on_start;
            while t < cycle + on_start + burst && t < total_secs {
                arrivals.push(Nanos::from_nanos((t * 1e9) as u64));
                t += 5e-3;
            }
            cycle += period;
        }
        Workload::trace(arrivals)
    };
    let mut t = TopologyBuilder::new();
    let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
    for c in 0..clients {
        let class = t.service_class(&format!("class_{c}"));
        let mut backends = Vec::new();
        for b in 0..cluster {
            let s = t.service(
                &format!("s{c}_{b}"),
                ServiceConfig::new(DelayDist::exponential_millis(10)),
            );
            t.connect(web, s, DelayDist::constant_millis(1));
            t.route(s, class, Route::terminal());
            backends.push(s);
        }
        t.route(web, class, Route::round_robin(backends));
        let phase = c as f64 * (period / clients as f64);
        let cli = t.client(&format!("cli_{c}"), class, web, burst_trace(phase));
        t.connect(cli, web, DelayDist::constant_millis(1));
    }
    Simulation::new(t.build().unwrap(), seed)
}

/// Builds the edge-reduction fanout deployment: one front end serves a
/// traced client (`cli`, bursting in `[0, 1)` of each 4 s period at a
/// regular `cli_step_ms` cadence) through a single hot backend, plus
/// `backends` cold backends fed by a separate `noise` client bursting
/// one request every `noise_step_ms` inside the time-disjoint
/// `[2.2, 3.2)` window.
///
/// With the lag bound `T_u` well under the 1.2 s gap between the burst
/// windows, the noise edges carry live traffic but zero causal evidence
/// for `cli` — an analyzer owning only the `cli` root screens them
/// inactive and (with reduction on) demotes them to coarse streaming.
/// This is the workload behind the `reduction_fanout` bench: most of the
/// deployment's bytes belong to edges the owned root does not need at
/// full resolution. The caller still has to `run_until` the returned
/// simulation.
pub fn noise_fanout_sim(
    backends: usize,
    cli_step_ms: u64,
    noise_step_ms: u64,
    seed: u64,
    total_secs: f64,
) -> Simulation {
    let burst_trace = |on_start: f64, on_end: f64, step_ms: u64| {
        let mut arrivals = Vec::new();
        let mut cycle = 0.0;
        while cycle < total_secs {
            let mut t = cycle + on_start;
            while t < cycle + on_end && t < total_secs {
                arrivals.push(Nanos::from_nanos((t * 1e9) as u64));
                t += step_ms as f64 / 1e3;
            }
            cycle += 4.0;
        }
        Workload::trace(arrivals)
    };
    let cli_trace = burst_trace(0.0, 1.0, cli_step_ms);
    let noise_trace = burst_trace(2.2, 3.2, noise_step_ms);
    let mut t = TopologyBuilder::new();
    let bid = t.service_class("bid");
    let other = t.service_class("other");
    let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
    let hot = t.service("hot", ServiceConfig::new(DelayDist::exponential_millis(10)));
    t.connect(web, hot, DelayDist::constant_millis(1));
    t.route(web, bid, Route::fixed(hot));
    t.route(hot, bid, Route::terminal());
    let mut cold = Vec::new();
    for i in 0..backends {
        let s = t.service(
            &format!("s{i}"),
            ServiceConfig::new(DelayDist::exponential_millis(10)),
        );
        t.connect(web, s, DelayDist::constant_millis(1));
        t.route(s, other, Route::terminal());
        cold.push(s);
    }
    t.route(web, other, Route::round_robin(cold));
    let cli = t.client("cli", bid, web, cli_trace);
    t.connect(cli, web, DelayDist::constant_millis(1));
    let noise = t.client("noise", other, web, noise_trace);
    t.connect(noise, web, DelayDist::constant_millis(1));
    Simulation::new(t.build().unwrap(), seed)
}

/// The `noise_fanout_sim` deployment with an *ebbing* background client:
/// `ebb` bursts in `[2.2, 3.2)` of each 4 s period (5 ms regular cadence)
/// only while the period starts before `silent_from` or at/after
/// `resume_at` seconds, and is completely silent in between. The traced
/// `cli` client bursts in `[0, 1)` of every period (20 ms cadence)
/// throughout.
///
/// The silence is what makes the backend tier demotable in a *sharded*
/// deployment, where every client is some shard's root: while `ebb` is
/// live its own shard keeps its edges screened active, so the unanimous
/// [`effective_levels`](e2eprof_core::reduction::effective_levels) merge
/// leaves them fine. Once the window slides past the last ebb burst the
/// edges go cold on every shard and demote; the resumed bursts then
/// trigger the promote-overlap check and a fine backfill. This is the
/// workload behind the reduction fault-injection tests. The caller still
/// has to `run_until` the returned simulation.
pub fn ebbing_fanout_sim(
    backends: usize,
    seed: u64,
    silent_from: f64,
    resume_at: f64,
    total_secs: f64,
) -> Simulation {
    let burst_trace = |on_start: f64, on_end: f64, step_ms: u64, gated: bool| {
        let mut arrivals = Vec::new();
        let mut cycle = 0.0;
        while cycle < total_secs {
            let active = !gated || cycle < silent_from || cycle >= resume_at;
            if active {
                let mut t = cycle + on_start;
                while t < cycle + on_end && t < total_secs {
                    arrivals.push(Nanos::from_nanos((t * 1e9) as u64));
                    t += step_ms as f64 / 1e3;
                }
            }
            cycle += 4.0;
        }
        Workload::trace(arrivals)
    };
    let cli_trace = burst_trace(0.0, 1.0, 20, false);
    let ebb_trace = burst_trace(2.2, 3.2, 5, true);
    let mut t = TopologyBuilder::new();
    let bid = t.service_class("bid");
    let other = t.service_class("other");
    let web = t.service("web", ServiceConfig::new(DelayDist::constant_millis(2)));
    let hot = t.service("hot", ServiceConfig::new(DelayDist::exponential_millis(10)));
    t.connect(web, hot, DelayDist::constant_millis(1));
    t.route(web, bid, Route::fixed(hot));
    t.route(hot, bid, Route::terminal());
    let mut cold = Vec::new();
    for i in 0..backends {
        let s = t.service(
            &format!("s{i}"),
            ServiceConfig::new(DelayDist::exponential_millis(10)),
        );
        t.connect(web, s, DelayDist::constant_millis(1));
        t.route(s, other, Route::terminal());
        cold.push(s);
    }
    t.route(web, other, Route::round_robin(cold));
    let cli = t.client("cli", bid, web, cli_trace);
    t.connect(cli, web, DelayDist::constant_millis(1));
    let ebb = t.client("ebb", other, web, ebb_trace);
    t.connect(ebb, web, DelayDist::constant_millis(1));
    Simulation::new(t.build().unwrap(), seed)
}

/// A wide mesh of `stacks` independent client → web → db chains
/// (2 services per stack, so 256 stacks is a 512-service deployment).
/// Every stack receives a regular `step_ms`-cadence arrival stream during
/// the warm-up `[0, warm_secs)`; after that only the first `active`
/// stacks keep receiving traffic and the rest stay silent forever.
///
/// Once the silent stacks' warm-up activity slides out of retention
/// (`warm_secs + window + T_u` into the run), their windows' change
/// epochs freeze: an activity-gated analyzer can prove their pairs quiet
/// and skip per-refresh work proportional to the idle fraction. Stacks
/// are phase-staggered by 0.1 ms so arrival timestamps do not pile onto
/// identical instants. The caller still has to `run_until` the returned
/// simulation.
pub fn mesh_sim(
    stacks: usize,
    active: usize,
    step_ms: u64,
    warm_secs: f64,
    total_secs: f64,
    seed: u64,
) -> Simulation {
    let mut t = TopologyBuilder::new();
    for i in 0..stacks {
        let trace = {
            let until = if i < active { total_secs } else { warm_secs };
            let phase = (i % 20) as f64 * 1e-4;
            let mut arrivals = Vec::new();
            let mut at = phase;
            while at < until {
                arrivals.push(Nanos::from_nanos((at * 1e9) as u64));
                at += step_ms as f64 / 1e3;
            }
            Workload::trace(arrivals)
        };
        let class = t.service_class(&format!("class_{i}"));
        let web = t.service(
            &format!("web_{i}"),
            ServiceConfig::new(DelayDist::constant_millis(2)),
        );
        let db = t.service(
            &format!("db_{i}"),
            ServiceConfig::new(DelayDist::exponential_millis(8)),
        );
        t.connect(web, db, DelayDist::constant_millis(1));
        t.route(web, class, Route::fixed(db));
        t.route(db, class, Route::terminal());
        let cli = t.client(&format!("cli_{i}"), class, web, trace);
        t.connect(cli, web, DelayDist::constant_millis(1));
    }
    Simulation::new(t.build().unwrap(), seed)
}

/// A minimal JSON value for machine-readable benchmark artifacts (the
/// build has no JSON dependency; the subset here — objects, arrays,
/// numbers, strings, booleans — is all the bench reports need).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// A float, rendered with enough digits to round-trip.
    Num(f64),
    /// An unsigned integer.
    Int(u64),
    /// A string (escaped minimally: quotes and backslashes).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    fn render(&self, out: &mut String) {
        match self {
            JsonValue::Num(v) if v.is_finite() => out.push_str(&format!("{v}")),
            JsonValue::Num(_) => out.push_str("null"),
            JsonValue::Int(v) => out.push_str(&format!("{v}")),
            JsonValue::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    JsonValue::Str(k.clone()).render(out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value as a JSON string.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }
}

/// Writes `BENCH_<name>.json` into the current directory and returns the
/// path, so result-scraping tooling has a machine-readable artifact next
/// to the human-readable stdout table.
pub fn write_bench_json(name: &str, value: &JsonValue) -> std::io::Result<std::path::PathBuf> {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    std::fs::write(&path, value.to_json() + "\n")?;
    Ok(path)
}

/// Formats a nanosecond duration for result tables.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_usable_signals() {
        let s = rubis_scenario(Nanos::from_secs(10), Nanos::from_secs(2), 1);
        let (x, y) = corr_pair(&s);
        assert!(x.len() >= 9_000);
        assert!(x.support() > 0);
        assert!(y.support() > 0);
        assert_eq!(s.roots.len(), 2);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let v = JsonValue::Obj(vec![
            ("name".into(), JsonValue::Str("a \"b\"\\c".into())),
            ("n".into(), JsonValue::Int(3)),
            ("x".into(), JsonValue::Num(1.5)),
            ("nan".into(), JsonValue::Num(f64::NAN)),
            ("ok".into(), JsonValue::Bool(true)),
            (
                "xs".into(),
                JsonValue::Arr(vec![JsonValue::Int(1), JsonValue::Int(2)]),
            ),
        ]);
        assert_eq!(
            v.to_json(),
            r#"{"name":"a \"b\"\\c","n":3,"x":1.5,"nan":null,"ok":true,"xs":[1,2]}"#
        );
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }
}
