//! Shared harness for the benchmark suite and the `experiments` binary.
//!
//! Everything here prepares *inputs* (simulated traces, edge signals,
//! prepared correlation pairs) so that benches measure only the analysis
//! work, exactly like the paper's Fig. 9 measures service-graph
//! computation time for already-collected traces.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use e2eprof_apps::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof_core::graph::NodeLabels;
use e2eprof_core::pathmap::roots_from_topology;
use e2eprof_core::signals::EdgeSignals;
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::{Nanos, Quanta, RleSeries};

/// A prepared analysis scenario: a finished RUBiS round-robin run plus the
/// extracted edge signals for one analysis window.
#[derive(Debug)]
pub struct Scenario {
    /// The deployment (kept for truth/labels).
    pub rubis: Rubis,
    /// The analysis configuration.
    pub config: PathmapConfig,
    /// Extracted per-edge signals.
    pub signals: EdgeSignals,
    /// Pathmap roots.
    pub roots: Vec<(NodeId, NodeId)>,
    /// Node labels.
    pub labels: NodeLabels,
}

/// Builds the Fig. 6 (round-robin) deployment, runs it long enough to fill
/// a `window`-sized analysis window, and extracts signals.
///
/// `max_delay` is the correlation lag bound `T_u` (the paper uses 1 min;
/// scaled-down sweeps use less to keep the quadratic engines affordable).
pub fn rubis_scenario(window: Nanos, max_delay: Nanos, seed: u64) -> Scenario {
    let config = PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(window)
        .refresh(Nanos::from_nanos(
            (window.as_nanos() / 4).max(1_000_000_000),
        ))
        .max_delay(max_delay)
        .build();
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::RoundRobin,
        seed,
        ..RubisConfig::default()
    });
    // Fill the window plus the unmaterialized tail plus slack.
    let run_for = window + max_delay + Nanos::from_secs(5);
    rubis.sim_mut().run_until(run_for);
    let signals = EdgeSignals::from_capture(rubis.sim().captures(), &config, rubis.sim().now());
    let roots = roots_from_topology(rubis.sim().topology());
    let labels = NodeLabels::from_topology(rubis.sim().topology());
    Scenario {
        rubis,
        config,
        signals,
        roots,
        labels,
    }
}

/// Extracts one prepared correlation pair from a scenario: the bidding
/// client's source signal and the `WS → TS1` edge signal.
pub fn corr_pair(s: &Scenario) -> (RleSeries, RleSeries) {
    let n = s.rubis.nodes();
    let x = s
        .signals
        .source_signal(n.c1, n.ws)
        .expect("bidding source signal");
    let y = s
        .signals
        .target_signal(n.ws, n.ts1)
        .expect("WS->TS1 signal")
        .clone();
    (x, y)
}

/// Formats a nanosecond duration for result tables.
pub fn fmt_duration(d: std::time::Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenario_produces_usable_signals() {
        let s = rubis_scenario(Nanos::from_secs(10), Nanos::from_secs(2), 1);
        let (x, y) = corr_pair(&s);
        assert!(x.len() >= 9_000);
        assert!(x.support() > 0);
        assert!(y.support() > 0);
        assert_eq!(s.roots.len(), 2);
    }

    #[test]
    fn duration_formatting() {
        use std::time::Duration;
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7µs");
    }
}
