//! A publish-subscribe dissemination system — the paper's near-term
//! future work ("network overlays and publish-subscribe systems",
//! Section 5), built on the simulator's multicast routes.
//!
//! Topology: publishers (one service class each) → a broker tier →
//! fan-out to subscriber endpoints. Traffic is strictly one-way
//! (fire-and-forget), so call-return techniques see nothing; pathmap's
//! correlation spikes recover the whole dissemination *tree*, including
//! per-subscriber delivery delays.
//!
//! ```text
//! pub_a ─┐            ┌─ sub_0
//!        ├─ broker ───┼─ sub_1     (copies to every subscriber)
//! pub_b ─┘            └─ sub_2
//! ```

use e2eprof_netsim::prelude::*;
use e2eprof_netsim::Route;

/// Pub-sub deployment parameters.
#[derive(Debug, Clone)]
pub struct PubSubConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Number of publishers (each its own service class / analysis root).
    pub publishers: usize,
    /// Number of subscriber endpoints the broker fans out to.
    pub subscribers: usize,
    /// Publication rate per publisher (messages/second).
    pub publish_rate: f64,
}

impl Default for PubSubConfig {
    fn default() -> Self {
        PubSubConfig {
            seed: 23,
            publishers: 2,
            subscribers: 3,
            publish_rate: 20.0,
        }
    }
}

/// Node handles of a built pub-sub system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PubSubNodes {
    /// The broker all publishers send to.
    pub broker: NodeId,
    /// Publisher clients.
    pub publishers: Vec<NodeId>,
    /// Subscriber endpoints.
    pub subscribers: Vec<NodeId>,
}

/// A built pub-sub system.
#[derive(Debug)]
pub struct PubSub {
    sim: Simulation,
    nodes: PubSubNodes,
    classes: Vec<ClassId>,
}

impl PubSub {
    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics if there are no publishers or no subscribers.
    pub fn build(config: PubSubConfig) -> Self {
        assert!(config.publishers > 0, "at least one publisher");
        assert!(config.subscribers > 0, "at least one subscriber");
        let mut t = TopologyBuilder::new();
        let link = DelayDist::constant_millis(1);
        let broker = t.service(
            "broker",
            ServiceConfig::new(DelayDist::normal_millis(4, 1)).with_servers(4),
        );
        let subscribers: Vec<NodeId> = (0..config.subscribers)
            .map(|i| {
                // Subscribers do per-message work (deserialize, persist)
                // of varying weight, so their delivery delays differ.
                t.service(
                    &format!("sub_{i}"),
                    ServiceConfig::new(DelayDist::normal_millis(3 + 4 * i as u64, 1))
                        .with_servers(4),
                )
            })
            .collect();
        let mut publishers = Vec::with_capacity(config.publishers);
        let mut classes = Vec::with_capacity(config.publishers);
        for i in 0..config.publishers {
            let class = t.service_class(&format!("topic_{i}"));
            let p = t.client(
                &format!("pub_{i}"),
                class,
                broker,
                Workload::poisson(config.publish_rate),
            );
            t.connect(p, broker, link.clone());
            t.route(broker, class, Route::multicast(subscribers.clone()));
            for &s in &subscribers {
                t.route(s, class, Route::sink());
            }
            publishers.push(p);
            classes.push(class);
        }
        for &s in &subscribers {
            t.connect(broker, s, link.clone());
        }
        let sim = Simulation::new(t.build().expect("pubsub topology is valid"), config.seed);
        PubSub {
            sim,
            nodes: PubSubNodes {
                broker,
                publishers,
                subscribers,
            },
            classes,
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access (to advance time).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Node handles.
    pub fn nodes(&self) -> &PubSubNodes {
        &self.nodes
    }

    /// Per-publisher service classes.
    pub fn classes(&self) -> &[ClassId] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_netsim::capture::TraceKey;

    #[test]
    fn broker_fans_out_to_every_subscriber() {
        let mut p = PubSub::build(PubSubConfig::default());
        p.sim_mut().run_until(Nanos::from_secs(10));
        let n = p.nodes().clone();
        let published: usize = n
            .publishers
            .iter()
            .map(|&pb| {
                p.sim()
                    .captures()
                    .timestamps(TraceKey::at_receiver(pb, n.broker))
                    .len()
            })
            .sum();
        assert!(published > 300);
        for &s in &n.subscribers {
            let delivered = p
                .sim()
                .captures()
                .timestamps(TraceKey::at_receiver(n.broker, s))
                .len();
            // Every publication reaches every subscriber (minus in-flight).
            assert!(
                delivered + 20 >= published,
                "sub {s}: {delivered} of {published}"
            );
        }
    }

    #[test]
    fn dissemination_is_fire_and_forget() {
        let mut p = PubSub::build(PubSubConfig::default());
        p.sim_mut().run_until(Nanos::from_secs(10));
        // Nothing ever returns to a publisher.
        assert_eq!(p.sim().truth().completed_count(), 0);
        // No reverse traffic exists anywhere.
        let n = p.nodes().clone();
        for &s in &n.subscribers {
            assert!(p
                .sim()
                .captures()
                .timestamps(TraceKey::at_sender(s, n.broker))
                .is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "at least one subscriber")]
    fn zero_subscribers_rejected() {
        let _ = PubSub::build(PubSubConfig {
            subscribers: 0,
            ..PubSubConfig::default()
        });
    }
}
