//! Ablations over pathmap's design parameters.
//!
//! The paper motivates each knob qualitatively — `ω` trades spurious
//! spikes against over-generalization (Section 3.5), `τ` trades
//! resolution against cost, `T_u` bounds cost but must cover real
//! transaction delays, the `3σ` threshold separates spikes from noise.
//! These ablations measure those trade-offs on the Fig. 5 scenario, where
//! the correct answer (which edges exist) is known exactly.

use crate::experiments::discover;
use crate::rubis::{Dispatch, Rubis, RubisConfig};
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::NodeId;
use e2eprof_timeseries::{Nanos, Quanta};
use std::collections::BTreeSet;
use std::time::{Duration, Instant};

/// Structural quality of one discovery run against the known topology.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeQuality {
    /// Genuine edges found (both graphs pooled).
    pub found: usize,
    /// Genuine edges missed.
    pub missing: usize,
    /// Discovered edges that carry no causal traffic for that client.
    pub spurious: usize,
    /// Wall-clock analysis time.
    pub elapsed: Duration,
}

/// The causally correct edge set of the affinity deployment, per client:
/// the forward chain, the return chain, and the response to the client.
fn expected_edges(rubis: &Rubis) -> [(NodeId, BTreeSet<(NodeId, NodeId)>); 2] {
    let n = rubis.nodes();
    let chain = |ts, ejb, client| -> BTreeSet<(NodeId, NodeId)> {
        [
            (n.ws, ts),
            (ts, ejb),
            (ejb, n.db),
            (n.db, ejb),
            (ejb, ts),
            (ts, n.ws),
            (n.ws, client),
        ]
        .into_iter()
        .collect()
    };
    [
        (n.c1, chain(n.ts1, n.ejb1, n.c1)),
        (n.c2, chain(n.ts2, n.ejb2, n.c2)),
    ]
}

/// Runs one discovery with `cfg` and scores it against the ground-truth
/// edge sets.
pub fn score(rubis: &Rubis, cfg: &PathmapConfig) -> EdgeQuality {
    let t0 = Instant::now();
    let graphs = discover(rubis, cfg);
    let elapsed = t0.elapsed();
    let expected = expected_edges(rubis);
    let mut found = 0;
    let mut missing = 0;
    let mut spurious = 0;
    for (client, truth) in &expected {
        let Some(g) = graphs.iter().find(|g| g.client == *client) else {
            missing += truth.len();
            continue;
        };
        let got: BTreeSet<(NodeId, NodeId)> = g
            .edges()
            .iter()
            .filter(|e| !e.is_anchor())
            .map(|e| (e.from, e.to))
            .collect();
        found += got.intersection(truth).count();
        missing += truth.difference(&got).count();
        spurious += got.difference(truth).count();
    }
    EdgeQuality {
        found,
        missing,
        spurious,
        elapsed,
    }
}

/// Builds the standard ablation subject: a 90-second affinity RUBiS run.
pub fn subject(seed: u64) -> Rubis {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(Nanos::from_secs(90));
    rubis
}

fn base_cfg() -> e2eprof_core::config::PathmapConfigBuilder {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(Nanos::from_secs(60))
        .refresh(Nanos::from_secs(15))
        .max_delay(Nanos::from_secs(2))
}

/// Sampling-window sweep: too small → spurious spikes, too large →
/// smearing that misses weak edges (paper: `ω = 50·τ` "gave the best set
/// of results").
pub fn sweep_omega(rubis: &Rubis, omegas: &[u64]) -> Vec<(u64, EdgeQuality)> {
    omegas
        .iter()
        .map(|&omega| {
            let cfg = base_cfg().omega_ticks(omega).build();
            (omega, score(rubis, &cfg))
        })
        .collect()
}

/// Spike-threshold sweep: low σ admits noise (spurious edges), high σ
/// drops genuine weak edges.
pub fn sweep_sigma(rubis: &Rubis, sigmas: &[f64]) -> Vec<(f64, EdgeQuality)> {
    sigmas
        .iter()
        .map(|&sigma| {
            let cfg = base_cfg().spike_sigma(sigma).build();
            (sigma, score(rubis, &cfg))
        })
        .collect()
}

/// Time-quantum sweep: finer `τ` costs proportionally more; coarser `τ`
/// loses delay resolution (ω and the spike-resolution window scale with
/// `τ` to keep their wall-clock size).
pub fn sweep_tau(rubis: &Rubis, taus_us: &[u64]) -> Vec<(u64, EdgeQuality)> {
    taus_us
        .iter()
        .map(|&tau_us| {
            let scale = |ns: u64| (ns / tau_us.max(1)).max(1);
            let cfg = base_cfg()
                .quanta(Quanta::from_micros(tau_us))
                .omega_ticks(scale(50_000))
                .spike_resolution_ticks(scale(50_000))
                .build();
            (tau_us, score(rubis, &cfg))
        })
        .collect()
}

/// Lag-bound sweep: `T_u` below the slowest transaction truncates the
/// path; larger `T_u` only costs time.
pub fn sweep_max_delay(rubis: &Rubis, bounds_ms: &[u64]) -> Vec<(u64, EdgeQuality)> {
    bounds_ms
        .iter()
        .map(|&ms| {
            let cfg = base_cfg().max_delay(Nanos::from_millis(ms)).build();
            (ms, score(rubis, &cfg))
        })
        .collect()
}

/// Sequential vs. per-client-parallel discovery wall time (Section 3.7).
pub fn parallel_speedup(rubis: &Rubis) -> (Duration, Duration) {
    use e2eprof_core::prelude::*;
    let cfg = base_cfg().build();
    let pm = Pathmap::new(cfg.clone());
    let signals = EdgeSignals::from_capture(rubis.sim().captures(), &cfg, rubis.sim().now());
    let roots = roots_from_topology(rubis.sim().topology());
    let labels = NodeLabels::from_topology(rubis.sim().topology());
    let t0 = Instant::now();
    let sequential = pm.discover(&signals, &roots, &labels);
    let seq = t0.elapsed();
    let t0 = Instant::now();
    let parallel = pm.discover_parallel(&signals, &roots, &labels);
    let par = t0.elapsed();
    assert_eq!(sequential, parallel, "parallel discovery must agree");
    (seq, par)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults_are_clean() {
        let rubis = subject(31);
        let q = score(&rubis, &base_cfg().build());
        assert_eq!(q.missing, 0, "{q:?}");
        assert_eq!(q.spurious, 0, "{q:?}");
        assert_eq!(q.found, 14);
    }

    #[test]
    fn tiny_max_delay_truncates_paths() {
        let rubis = subject(32);
        let sweeps = sweep_max_delay(&rubis, &[10, 2_000]);
        let (small, full) = (&sweeps[0].1, &sweeps[1].1);
        // A 10ms bound cannot see the ~20-50ms hops deeper in the path.
        assert!(small.missing > 0, "{small:?}");
        assert!(small.found < full.found);
        assert_eq!(full.missing, 0);
    }

    #[test]
    fn oversized_omega_degrades() {
        let rubis = subject(33);
        let sweeps = sweep_omega(&rubis, &[50, 2_000]);
        let (paper, huge) = (&sweeps[0].1, &sweeps[1].1);
        assert_eq!(paper.missing, 0);
        // ω = 2s smears 40ms transactions into uniformity: edges are lost
        // or delays collapse; structure quality must degrade.
        assert!(
            huge.missing > 0 || huge.spurious > 0,
            "huge omega should degrade: {huge:?}"
        );
    }

    #[test]
    fn parallel_matches_and_runs() {
        let rubis = subject(34);
        let (_seq, _par) = parallel_speedup(&rubis); // asserts equality inside
    }
}
