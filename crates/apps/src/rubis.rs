//! The RUBiS multi-tier auction deployment (paper Fig. 4).
//!
//! Topology: two client machines running `httperf`-style Poisson session
//! workloads — one issuing *bidding* requests, one issuing *comment*
//! requests — an Apache web server front end, two Tomcat servlet servers,
//! two EJB application servers, and a MySQL database:
//!
//! ```text
//! C1 (bidding) ─┐         ┌─ TS1 ── EJB1 ─┐
//!               ├── WS ───┤               ├── DB
//! C2 (comment) ─┘         └─ TS2 ── EJB2 ─┘
//! ```
//!
//! The web server dispatches either *affinity-based* (bidding → TS1,
//! comment → TS2), *round-robin*, or *dynamically* (the Section 4.2 SLA
//! scheduler). The EJB servers accept optional delay-perturbation
//! schedules for the Fig. 7 and Table 1 experiments.

use e2eprof_netsim::perturb::DelaySchedule;
use e2eprof_netsim::prelude::*;
use e2eprof_netsim::routing::DynamicRouter;
use e2eprof_netsim::Route;
use std::sync::Arc;

/// Front-end dispatch policy.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum Dispatch {
    /// Bidding → TS1, comment → TS2 (the Fig. 5 configuration).
    Affinity,
    /// Both classes alternate between TS1 and TS2 (Fig. 6).
    RoundRobin,
    /// Consult a dynamic router per request (Section 4.2 / Table 1).
    Dynamic(Arc<dyn DynamicRouter>),
}

/// RUBiS deployment parameters.
///
/// Defaults approximate the paper's deployment: ~10 requests/s per class
/// (30 emulated `httperf` sessions), EJB servers as the dominant cost,
/// 1 ms LAN links.
#[derive(Debug, Clone)]
pub struct RubisConfig {
    /// Front-end dispatch policy.
    pub dispatch: Dispatch,
    /// Simulation seed.
    pub seed: u64,
    /// Bidding-class arrival rate (requests/second).
    pub bidding_rate: f64,
    /// Comment-class arrival rate (requests/second).
    pub comment_rate: f64,
    /// Extra-delay schedule at EJB1.
    pub ejb1_perturb: DelaySchedule,
    /// Extra-delay schedule at EJB2.
    pub ejb2_perturb: DelaySchedule,
    /// Database queries each EJB issues per client request (the paper's
    /// "EJB server issuing multiple data base queries for a single client
    /// request" — a request-rate change across nodes pathmap must
    /// accommodate).
    pub db_queries_per_request: u32,
}

impl Default for RubisConfig {
    fn default() -> Self {
        RubisConfig {
            dispatch: Dispatch::Affinity,
            seed: 42,
            bidding_rate: 10.0,
            comment_rate: 10.0,
            ejb1_perturb: DelaySchedule::None,
            ejb2_perturb: DelaySchedule::None,
            db_queries_per_request: 1,
        }
    }
}

/// Node handles of a built RUBiS deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct RubisNodes {
    pub c1: NodeId,
    pub c2: NodeId,
    pub ws: NodeId,
    pub ts1: NodeId,
    pub ts2: NodeId,
    pub ejb1: NodeId,
    pub ejb2: NodeId,
    pub db: NodeId,
}

/// A built RUBiS deployment: the simulation plus handles.
#[derive(Debug)]
pub struct Rubis {
    sim: Simulation,
    nodes: RubisNodes,
    bidding: ClassId,
    comment: ClassId,
}

impl Rubis {
    /// Builds the deployment.
    ///
    /// # Panics
    ///
    /// Panics if the internally constructed topology fails validation
    /// (a bug, not a user error).
    pub fn build(config: RubisConfig) -> Self {
        let mut t = TopologyBuilder::new();
        let bidding = t.service_class("bidding");
        let comment = t.service_class("comment");

        let link = DelayDist::constant_millis(1);
        let ws = t.service(
            "WS",
            ServiceConfig::new(DelayDist::normal_millis(5, 1))
                .with_response_time(DelayDist::Constant(Nanos::from_micros(300)))
                .with_servers(8),
        );
        let ts1 = t.service(
            "TS1",
            ServiceConfig::new(DelayDist::normal_millis(8, 2))
                .with_response_time(DelayDist::Constant(Nanos::from_micros(500)))
                .with_servers(4),
        );
        let ts2 = t.service(
            "TS2",
            ServiceConfig::new(DelayDist::normal_millis(8, 2))
                .with_response_time(DelayDist::Constant(Nanos::from_micros(500)))
                .with_servers(4),
        );
        let ejb1 = t.service(
            "EJB1",
            ServiceConfig::new(DelayDist::normal_millis(22, 5))
                .with_response_time(DelayDist::Constant(Nanos::from_micros(500)))
                .with_servers(4)
                .with_fanout(config.db_queries_per_request)
                .with_perturbation(config.ejb1_perturb.clone()),
        );
        let ejb2 = t.service(
            "EJB2",
            ServiceConfig::new(DelayDist::normal_millis(18, 4))
                .with_response_time(DelayDist::Constant(Nanos::from_micros(500)))
                .with_servers(4)
                .with_fanout(config.db_queries_per_request)
                .with_perturbation(config.ejb2_perturb.clone()),
        );
        let db = t.service(
            "DB",
            ServiceConfig::new(DelayDist::normal_millis(6, 1))
                .with_response_time(DelayDist::Constant(Nanos::from_micros(300)))
                .with_servers(8),
        );
        let c1 = t.client("C1", bidding, ws, Workload::poisson(config.bidding_rate));
        let c2 = t.client("C2", comment, ws, Workload::poisson(config.comment_rate));

        t.connect(c1, ws, link.clone());
        t.connect(c2, ws, link.clone());
        t.connect(ws, ts1, link.clone());
        t.connect(ws, ts2, link.clone());
        t.connect(ts1, ejb1, link.clone());
        t.connect(ts2, ejb2, link.clone());
        t.connect(ejb1, db, link.clone());
        t.connect(ejb2, db, link);

        match &config.dispatch {
            Dispatch::Affinity => {
                t.route(ws, bidding, Route::fixed(ts1));
                t.route(ws, comment, Route::fixed(ts2));
            }
            Dispatch::RoundRobin => {
                t.route(ws, bidding, Route::round_robin(vec![ts1, ts2]));
                t.route(ws, comment, Route::round_robin(vec![ts2, ts1]));
            }
            Dispatch::Dynamic(router) => {
                t.route(ws, bidding, Route::dynamic(router.clone()));
                t.route(ws, comment, Route::dynamic(router.clone()));
            }
        }
        for class in [bidding, comment] {
            t.route(ts1, class, Route::fixed(ejb1));
            t.route(ts2, class, Route::fixed(ejb2));
            t.route(ejb1, class, Route::fixed(db));
            t.route(ejb2, class, Route::fixed(db));
            t.route(db, class, Route::terminal());
        }

        let sim = Simulation::new(t.build().expect("rubis topology is valid"), config.seed);
        Rubis {
            sim,
            nodes: RubisNodes {
                c1,
                c2,
                ws,
                ts1,
                ts2,
                ejb1,
                ejb2,
                db,
            },
            bidding,
            comment,
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access (to advance time).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Node handles.
    pub fn nodes(&self) -> RubisNodes {
        self.nodes
    }

    /// The bidding service class.
    pub fn bidding(&self) -> ClassId {
        self.bidding
    }

    /// The comment service class.
    pub fn comment(&self) -> ClassId {
        self.comment
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn affinity_classes_stay_on_their_branch() {
        let mut r = Rubis::build(RubisConfig::default());
        r.sim_mut().run_until(Nanos::from_secs(20));
        let n = r.nodes();
        let bid_paths = r.sim().truth().class_paths(r.bidding());
        assert_eq!(bid_paths.len(), 1);
        assert!(bid_paths.contains_key(&vec![n.ws, n.ts1, n.ejb1, n.db]));
        let cmt_paths = r.sim().truth().class_paths(r.comment());
        assert_eq!(cmt_paths.len(), 1);
        assert!(cmt_paths.contains_key(&vec![n.ws, n.ts2, n.ejb2, n.db]));
    }

    #[test]
    fn round_robin_classes_use_both_branches() {
        let mut r = Rubis::build(RubisConfig {
            dispatch: Dispatch::RoundRobin,
            ..RubisConfig::default()
        });
        r.sim_mut().run_until(Nanos::from_secs(20));
        let n = r.nodes();
        let bid_paths = r.sim().truth().class_paths(r.bidding());
        assert_eq!(bid_paths.len(), 2, "paths: {bid_paths:?}");
        assert!(bid_paths.contains_key(&vec![n.ws, n.ts1, n.ejb1, n.db]));
        assert!(bid_paths.contains_key(&vec![n.ws, n.ts2, n.ejb2, n.db]));
    }

    #[test]
    fn baseline_latencies_are_paper_scale() {
        let mut r = Rubis::build(RubisConfig {
            dispatch: Dispatch::RoundRobin,
            ..RubisConfig::default()
        });
        r.sim_mut().run_until(Nanos::from_secs(60));
        let bid = r.sim().truth().class_latency(r.bidding()).mean() / 1e6;
        let cmt = r.sim().truth().class_latency(r.comment()).mean() / 1e6;
        // Paper Table 1, unperturbed round-robin: 72 ms / 64 ms. We only
        // need the same scale, with bidding ≳ comment.
        assert!((30.0..120.0).contains(&bid), "bidding {bid} ms");
        assert!((30.0..120.0).contains(&cmt), "comment {cmt} ms");
    }

    #[test]
    fn perturbation_inflates_latency() {
        let base = {
            let mut r = Rubis::build(RubisConfig {
                dispatch: Dispatch::RoundRobin,
                ..RubisConfig::default()
            });
            r.sim_mut().run_until(Nanos::from_secs(40));
            r.sim().truth().class_latency(r.bidding()).mean()
        };
        let perturbed = {
            let mut r = Rubis::build(RubisConfig {
                dispatch: Dispatch::RoundRobin,
                ejb1_perturb: DelaySchedule::Constant(Nanos::from_millis(50)),
                ejb2_perturb: DelaySchedule::Constant(Nanos::from_millis(50)),
                ..RubisConfig::default()
            });
            r.sim_mut().run_until(Nanos::from_secs(40));
            r.sim().truth().class_latency(r.bidding()).mean()
        };
        assert!(
            perturbed > base + 40e6,
            "perturbed {perturbed} vs base {base}"
        );
    }
}
