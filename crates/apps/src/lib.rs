//! Application models for the E2EProf evaluation.
//!
//! The paper evaluates E2EProf on two enterprise-scale systems; this crate
//! models both on the simulator substrate, plus the SLA-aware scheduler of
//! Section 4.2:
//!
//! * [`rubis`] — the RUBiS EJB auction deployment of Fig. 4: two client
//!   machines (bidding and comment service classes), an Apache front end,
//!   two Tomcat servlet servers, two EJB servers, and a MySQL database,
//!   with affinity-based, round-robin, or dynamic dispatch at the front
//!   end, and optional delay perturbations at the EJB servers (Fig. 7 and
//!   Table 1).
//! * [`delta`] — the Delta Air Lines Revenue Pipeline of Fig. 8: ~40 K
//!   events/hour arriving in 25 front-end queues, forwarded through a
//!   control hub to back-end processing stages, with the 4 AM paper-ticket
//!   batch surge that drives queue lengths to ~4000 and the slow-database
//!   scenario E2EProf diagnosed in production.
//! * [`scheduler`] — the E2EProf-driven path selector: a
//!   [`DynamicRouter`](e2eprof_netsim::routing::DynamicRouter) that routes
//!   bidding requests onto the currently fastest path using live pathmap
//!   branch latencies, penalizing comment requests (Table 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablations;
pub mod delta;
pub mod experiments;
pub mod pubsub;
pub mod rubis;
pub mod scheduler;

pub use delta::{Delta, DeltaConfig};
pub use rubis::{Dispatch, Rubis, RubisConfig};
pub use scheduler::{branch_latency, PathLatencyMap, SlaRouter};
