//! Reusable drivers for every experiment in the paper's evaluation
//! (Section 4). The examples, integration tests, and the bench harness's
//! `experiments` binary all run these, so "the figure" is a single piece
//! of code everywhere.

use crate::rubis::{Dispatch, Rubis, RubisConfig};
use crate::scheduler::{PathLatencyMap, SlaRouter};
use e2eprof_core::change::ChangeTracker;
use e2eprof_core::graph::{NodeLabels, ServiceGraph};
use e2eprof_core::pathmap::{roots_from_topology, Pathmap};
use e2eprof_core::signals::EdgeSignals;
use e2eprof_core::validate::{self, AccuracyReport};
use e2eprof_core::PathmapConfig;
use e2eprof_netsim::perturb::DelaySchedule;
use e2eprof_netsim::prelude::*;
use e2eprof_timeseries::Quanta;
use std::sync::Arc;

/// The analysis configuration used by the RUBiS experiments.
///
/// The paper uses `τ` = 1 ms, `ω` = 50·τ, `T_u` = 1 min. Transactions in
/// both the paper's and our deployment finish within a few hundred
/// milliseconds, so we bound `T_u` at 2 s — the same information at a
/// fraction of the cost (the full 1-minute bound is exercised by the
/// Fig. 9 cost benchmarks, where the cost *is* the measurement).
pub fn rubis_config(window: Nanos, refresh: Nanos) -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_millis(1))
        .omega_ticks(50)
        .window(window)
        .refresh(refresh)
        .max_delay(Nanos::from_secs(2))
        .env_overrides()
        .build()
}

/// Discovers the current service graphs of a RUBiS deployment from its
/// packet captures (offline analysis of the trailing window).
pub fn discover(rubis: &Rubis, cfg: &PathmapConfig) -> Vec<ServiceGraph> {
    let sim = rubis.sim();
    let pm = Pathmap::new(cfg.clone());
    let signals = EdgeSignals::from_capture(sim.captures(), cfg, sim.now());
    pm.discover(
        &signals,
        &roots_from_topology(sim.topology()),
        &NodeLabels::from_topology(sim.topology()),
    )
}

/// **Fig. 5** — service-path detection under affinity-based dispatch.
/// Runs RUBiS for `run_for`, then returns the deployment and its two
/// discovered graphs (bidding, comment).
pub fn fig5_affinity(seed: u64, run_for: Nanos) -> (Rubis, Vec<ServiceGraph>) {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::Affinity,
        seed,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(run_for);
    let cfg = rubis_config(Nanos::from_minutes(1), Nanos::from_secs(30));
    let graphs = discover(&rubis, &cfg);
    (rubis, graphs)
}

/// **Fig. 6** — service-path detection under round-robin dispatch.
pub fn fig6_round_robin(seed: u64, run_for: Nanos) -> (Rubis, Vec<ServiceGraph>) {
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::RoundRobin,
        seed,
        ..RubisConfig::default()
    });
    rubis.sim_mut().run_until(run_for);
    let cfg = rubis_config(Nanos::from_minutes(1), Nanos::from_secs(30));
    let graphs = discover(&rubis, &cfg);
    (rubis, graphs)
}

/// **Section 4.1.1** — accuracy of inferred delays vs. ground truth, for
/// both classes of an affinity run.
pub fn accuracy(seed: u64, run_for: Nanos) -> Vec<AccuracyReport> {
    let (rubis, graphs) = fig5_affinity(seed, run_for);
    let classes = [rubis.bidding(), rubis.comment()];
    graphs
        .iter()
        .zip(classes)
        .map(|(g, class)| validate::compare(g, rubis.sim().truth(), rubis.sim().topology(), class))
        .collect()
}

/// One sample of the Fig. 7 change-detection time series.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fig7Point {
    /// Refresh time.
    pub at: Nanos,
    /// Extra delay injected at EJB2 at that time.
    pub injected: Nanos,
    /// E2EProf's inferred processing delay at EJB2 (hop of EJB2 → DB in
    /// the bidding graph), if that edge was discovered this refresh.
    pub detected: Option<Nanos>,
    /// Average bidding latency observed at the front end over the same
    /// window (ground truth): moves far less than the per-edge signal
    /// because more than half the requests take the low-latency path —
    /// the paper's point about per-node tracking diagnosing faster.
    pub frontend_avg: Option<Nanos>,
}

/// **Fig. 7** — change detection. Round-robin dispatch; a staircase delay
/// (one step per `step_every`) is injected at EJB2; the analysis (window
/// `W` = 1 min as in the paper) refreshes every minute and tracks the
/// per-edge delay.
pub fn fig7_change_detection(seed: u64, minutes: u64) -> (Vec<Fig7Point>, ChangeTracker) {
    let step_every = Nanos::from_minutes(3);
    let staircase =
        DelaySchedule::staircase(Nanos::from_minutes(2), step_every, Nanos::from_millis(20));
    let mut rubis = Rubis::build(RubisConfig {
        dispatch: Dispatch::RoundRobin,
        seed,
        ejb2_perturb: staircase.clone(),
        ..RubisConfig::default()
    });
    let cfg = rubis_config(Nanos::from_minutes(1), Nanos::from_minutes(1));
    let n = rubis.nodes();
    let mut points = Vec::new();
    let mut tracker = ChangeTracker::new();
    for minute in 1..=minutes {
        let now = Nanos::from_minutes(minute);
        rubis.sim_mut().run_until(now);
        let graphs = discover(&rubis, &cfg);
        tracker.record(now, &graphs);
        let bid_graph = graphs.iter().find(|g| g.client == n.c1);
        let detected = bid_graph
            .and_then(|g| g.edge(n.ejb2, n.db))
            .map(|e| e.hop_delay);
        let window_start = now.saturating_sub(cfg.window());
        let frontend =
            rubis
                .sim()
                .truth()
                .class_latency_between(rubis.bidding(), window_start, now);
        let frontend_avg =
            (frontend.count() > 0).then(|| Nanos::from_nanos(frontend.mean().round() as u64));
        // The analysis window trails `now` by T_u + W; report the
        // injection level in force at the window's midpoint.
        let observed_at = now.saturating_sub(cfg.max_delay() + Nanos::from_secs(30));
        points.push(Fig7Point {
            at: now,
            injected: staircase.extra_delay(observed_at),
            detected,
            frontend_avg,
        });
    }
    (points, tracker)
}

/// The three rows of Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Table1Policy {
    /// Round-robin, no perturbation.
    RoundRobinBaseline,
    /// Round-robin with random 0–100 ms EJB delays changing each minute.
    RoundRobinPerturbed,
    /// E2EProf-driven path selection under the same perturbation.
    E2EProfPerturbed,
}

/// One measured row of Table 1.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Table1Row {
    /// Which policy the row measures.
    pub policy: Table1Policy,
    /// Mean bidding latency over the measurement interval.
    pub bidding: Nanos,
    /// Mean comment latency over the measurement interval.
    pub comment: Nanos,
}

/// **Table 1** — average latency under the three path-selection policies,
/// measured over `duration` (paper: 10 minutes) after a 1-minute warm-up.
///
/// The perturbation schedules are pure functions of `(seed, time)`, so the
/// perturbed policies face *identical* delay sequences.
pub fn table1(policy: Table1Policy, seed: u64, duration: Nanos) -> Table1Row {
    let perturb = |salt: u64| {
        DelaySchedule::random_piecewise(
            Nanos::from_minutes(1),
            Nanos::from_millis(100),
            seed ^ salt,
        )
    };
    let perturbed = !matches!(policy, Table1Policy::RoundRobinBaseline);
    let (ejb1_perturb, ejb2_perturb) = if perturbed {
        (perturb(0xA11CE), perturb(0xB0B))
    } else {
        (DelaySchedule::None, DelaySchedule::None)
    };

    let map = PathLatencyMap::new();
    let dispatch = match policy {
        Table1Policy::E2EProfPerturbed => {
            // Branch heads are TS1/TS2; their ids are assigned by the
            // builder in declaration order (see RubisNodes).
            let rubis_probe = Rubis::build(RubisConfig::default());
            let n = rubis_probe.nodes();
            Dispatch::Dynamic(Arc::new(SlaRouter::new(
                rubis_probe.bidding(),
                n.ts1,
                n.ts2,
                map.clone(),
            )))
        }
        _ => Dispatch::RoundRobin,
    };
    let mut rubis = Rubis::build(RubisConfig {
        dispatch,
        seed,
        ejb1_perturb,
        ejb2_perturb,
        ..RubisConfig::default()
    });

    let warmup = Nanos::from_minutes(1);
    let end = warmup + duration;
    if matches!(policy, Table1Policy::E2EProfPerturbed) {
        // Closed loop: refresh pathmap every 5 s and republish branch
        // latencies for the router.
        let cfg = PathmapConfig::builder()
            .quanta(Quanta::from_millis(1))
            .omega_ticks(50)
            .window(Nanos::from_secs(15))
            .refresh(Nanos::from_secs(3))
            .max_delay(Nanos::from_secs(1))
            .build();
        let n = rubis.nodes();
        let mut now = Nanos::ZERO;
        while now < end {
            now += Nanos::from_secs(3);
            rubis.sim_mut().run_until(now);
            let graphs = discover(&rubis, &cfg);
            map.update_from_graphs(&graphs, n.ws, &[n.ts1, n.ts2]);
        }
    } else {
        rubis.sim_mut().run_until(end);
    }

    let truth = rubis.sim().truth();
    let mean = |class| {
        Nanos::from_nanos(
            truth
                .class_latency_between(class, warmup, end)
                .mean()
                .round() as u64,
        )
    };
    Table1Row {
        policy,
        bidding: mean(rubis.bidding()),
        comment: mean(rubis.comment()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_discovers_both_affinity_paths() {
        let (rubis, graphs) = fig5_affinity(21, Nanos::from_minutes(2));
        assert_eq!(graphs.len(), 2);
        let n = rubis.nodes();
        let bid = graphs.iter().find(|g| g.client == n.c1).expect("bid graph");
        for (a, b) in [("WS", "TS1"), ("TS1", "EJB1"), ("EJB1", "DB")] {
            assert!(bid.has_edge_between(a, b), "missing {a}->{b}:\n{bid}");
        }
        assert!(!bid.has_edge_between("WS", "TS2"), "leak:\n{bid}");
        let cmt = graphs.iter().find(|g| g.client == n.c2).expect("cmt graph");
        for (a, b) in [("WS", "TS2"), ("TS2", "EJB2"), ("EJB2", "DB")] {
            assert!(cmt.has_edge_between(a, b), "missing {a}->{b}:\n{cmt}");
        }
        assert!(!cmt.has_edge_between("WS", "TS1"), "leak:\n{cmt}");
    }

    #[test]
    fn fig6_discovers_both_paths_per_class() {
        let (rubis, graphs) = fig6_round_robin(22, Nanos::from_minutes(2));
        let n = rubis.nodes();
        let bid = graphs.iter().find(|g| g.client == n.c1).expect("bid graph");
        for (a, b) in [
            ("WS", "TS1"),
            ("WS", "TS2"),
            ("TS1", "EJB1"),
            ("TS2", "EJB2"),
            ("EJB1", "DB"),
            ("EJB2", "DB"),
        ] {
            assert!(bid.has_edge_between(a, b), "missing {a}->{b}:\n{bid}");
        }
    }

    #[test]
    fn accuracy_within_paper_band() {
        let reports = accuracy(23, Nanos::from_minutes(2));
        for r in &reports {
            assert!(!r.hops.is_empty());
            assert!(r.max_hop_error() < 0.35, "hops: {:#?}", r.hops);
            let gap = r.e2e_gap.expect("estimate");
            assert!(gap > 0.0 && gap < 1.0, "gap {gap}");
        }
    }
}

/// The Delta Revenue Pipeline analysis parameters (Section 4.3): `τ` =
/// 1 s and `ω` = 50·τ as in the paper; the window is stretched to 2 hours
/// (the paper analyzed a week-long trace and reports "carefully setting"
/// the window to eliminate traffic-variation error — bursty feeds need a
/// long window to average out burst-echo correlations), `ω` = 20·τ (tuned
/// like the paper tuned theirs: wide enough to suppress noise, narrow
/// enough that burst-echo structure does not swallow the causal spike),
/// and `T_u` = 10 min.
///
/// At this resolution sub-second processing delays are invisible — exactly
/// the delay-inaccuracy limitation the paper reports — but causal paths
/// are still recovered.
pub fn delta_paper_config() -> PathmapConfig {
    PathmapConfig::builder()
        .quanta(Quanta::from_secs(1))
        .omega_ticks(20)
        .window(Nanos::from_minutes(120))
        .refresh(Nanos::from_minutes(10))
        .max_delay(Nanos::from_minutes(10))
        .env_overrides()
        .build()
}

/// **Section 4.3** — runs the Revenue Pipeline for `run_for` and analyzes
/// it offline with `analysis`, returning the deployment and the per-queue
/// service graphs.
pub fn delta_analysis(
    config: crate::delta::DeltaConfig,
    analysis: &PathmapConfig,
    run_for: Nanos,
) -> (crate::delta::Delta, Vec<ServiceGraph>) {
    let mut delta = crate::delta::Delta::build(config);
    delta.sim_mut().run_until(run_for);
    let sim = delta.sim();
    let pm = Pathmap::new(analysis.clone());
    let signals = EdgeSignals::from_capture(sim.captures(), analysis, sim.now());
    let graphs = pm.discover(
        &signals,
        &roots_from_topology(sim.topology()),
        &NodeLabels::from_topology(sim.topology()),
    );
    (delta, graphs)
}

/// The service node most often marked a bottleneck across graphs — the
/// automated version of "E2EProf successfully diagnosed a slow database
/// server connection".
pub fn dominant_bottleneck(graphs: &[ServiceGraph]) -> Option<String> {
    let mut votes: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for g in graphs {
        for v in g.vertices() {
            if v.bottleneck {
                *votes.entry(v.label.clone()).or_insert(0) += 1;
            }
        }
    }
    votes.into_iter().max_by_key(|&(_, c)| c).map(|(l, _)| l)
}

/// Result of the clock-skew estimation experiment (Section 3.8).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewResult {
    /// The skew configured at the receiving node (ns, signed).
    pub configured_ns: i64,
    /// The estimated receiver−sender offset (ns; includes the 1 ms link).
    pub estimated_offset_ns: i64,
    /// Peak correlation supporting the estimate.
    pub strength: f64,
}

/// **Section 3.8** — injects a clock skew at the receiving end of one edge
/// and recovers it by cross-correlating the two ends' observations of the
/// same messages.
pub fn skew_estimation(seed: u64, skew_ms: i64, run_for: Nanos) -> SkewResult {
    use e2eprof_netsim::capture::TraceKey;
    use e2eprof_netsim::clock::NodeClock;
    use e2eprof_netsim::Route;

    let mut t = e2eprof_netsim::TopologyBuilder::new();
    let class = t.service_class("c");
    let a = t.service(
        "a",
        e2eprof_netsim::ServiceConfig::new(DelayDist::normal_millis(4, 1)),
    );
    let b = t.service(
        "b",
        e2eprof_netsim::ServiceConfig::new(DelayDist::normal_millis(6, 1))
            .with_clock(NodeClock::with_skew_millis(skew_ms)),
    );
    let cli = t.client("cli", class, a, Workload::poisson(30.0));
    t.connect(cli, a, DelayDist::constant_millis(1));
    t.connect(a, b, DelayDist::constant_millis(1));
    t.route(a, class, Route::fixed(b));
    t.route(b, class, Route::terminal());
    let mut sim = e2eprof_netsim::Simulation::new(t.build().expect("valid"), seed);
    sim.run_until(run_for);

    let sender = sim.captures().timestamps(TraceKey::at_sender(a, b));
    let receiver = sim.captures().timestamps(TraceKey::at_receiver(a, b));
    let est = e2eprof_core::skew::estimate_skew(sender, receiver, Quanta::from_millis(1), 3, 200)
        .expect("skew estimate");
    SkewResult {
        configured_ns: skew_ms * 1_000_000,
        estimated_offset_ns: est.offset_ns,
        strength: est.strength,
    }
}

/// Result of the Section 4.3 slow-database diagnosis.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaDiagnosis {
    /// Inferred end-to-end delay (largest cumulative spike back at a
    /// client edge), averaged over the graphs that measured one.
    pub e2e: Nanos,
    /// The deepest *forward*-path cumulative delay (arrival at the last
    /// stage), averaged the same way.
    pub last_forward: Nanos,
    /// `e2e − last_forward`: time spent at/below the deepest stage plus
    /// the return trip.
    pub tail_gap: Nanos,
    /// The deepest forward vertex — the suspect when `tail_gap`
    /// dominates.
    pub suspect: Option<String>,
}

/// Diagnoses where a pipeline's latency lives by decomposing the service
/// paths: if the end-to-end delay far exceeds every forward-hop arrival
/// time, the slowdown sits at (or beyond) the deepest stage — the way
/// E2EProf pinned Delta's slow database connection despite inaccurate
/// per-hop delays under deep queueing.
pub fn diagnose_delta(graphs: &[ServiceGraph]) -> DeltaDiagnosis {
    let mut e2e_sum = 0u64;
    let mut fwd_sum = 0u64;
    let mut count = 0u64;
    let mut best_gap = None;
    let mut suspect = None;
    for g in graphs {
        // A graph with no measured return to the client carries no
        // end-to-end estimate to decompose.
        let Some(e2e) = g
            .strong_edges()
            .filter(|e| e.to == g.client)
            .filter_map(|e| e.max_delay())
            .max()
        else {
            continue;
        };
        // Deepest forward hop: the largest cumulative delay on a strong
        // edge that is not headed back to the client. Forward arrivals
        // are bounded by the round trip, so spikes beyond `e2e` are
        // noise-floor correlations at implausible lags (e.g. another
        // client's traffic), not hops on this request's service path.
        let forward = g
            .strong_edges()
            .filter(|e| e.to != g.client)
            .filter_map(|e| e.min_delay().map(|c| (c, e.to)))
            .filter(|&(c, _)| c <= e2e)
            .max_by_key(|&(c, _)| c);
        let Some((fwd, deepest)) = forward else {
            continue;
        };
        e2e_sum += e2e.as_nanos();
        fwd_sum += fwd.as_nanos();
        count += 1;
        let gap = e2e.saturating_sub(fwd);
        if best_gap.map(|b| gap > b).unwrap_or(true) {
            best_gap = Some(gap);
            suspect = Some(g.label_of(deepest));
        }
    }
    if count == 0 {
        return DeltaDiagnosis {
            e2e: Nanos::ZERO,
            last_forward: Nanos::ZERO,
            tail_gap: Nanos::ZERO,
            suspect: None,
        };
    }
    let e2e = Nanos::from_nanos(e2e_sum / count);
    let last_forward = Nanos::from_nanos(fwd_sum / count);
    DeltaDiagnosis {
        e2e,
        last_forward,
        tail_gap: e2e.saturating_sub(last_forward),
        suspect,
    }
}
