//! The Delta Air Lines Revenue Pipeline model (paper Section 4.3, Fig. 8).
//!
//! The Revenue Pipeline tracks operational revenue from worldwide flight
//! operations: about 40 K events per hour arrive in one of 25 queues at a
//! front-end control system and are forwarded through black-box vendor
//! components to back-end servers. The paper's week-long trace analysis
//! exposed two pathmap stress points reproduced here:
//!
//! * **deep queueing** — queueing delays much larger than processing
//!   times, plus a 4 AM batch submission (a day's worth of world-wide
//!   paper tickets) driving queue lengths to ~4000, breaking the
//!   steady-state assumption: paths stay correct, delay estimates do not;
//! * **the slow-database diagnosis** — a database connection slow enough
//!   that a moderate workload saw large response times, which E2EProf
//!   pinpointed from the service path.
//!
//! The model: `queue_XX` feed clients (one service class each, mixed
//! Poisson and bursty ON/OFF arrivals) → `hub` (control system) →
//! `parser` → `validator` → `revenue_db`.

use e2eprof_netsim::prelude::*;
use e2eprof_netsim::Route;

/// Revenue-pipeline parameters.
#[derive(Debug, Clone)]
pub struct DeltaConfig {
    /// Simulation seed.
    pub seed: u64,
    /// Number of front-end queues (paper: 25).
    pub queues: usize,
    /// Total event arrival rate across all queues (paper: ~40 000/hour).
    pub events_per_hour: f64,
    /// If set, `batch_size` events arrive back-to-back on queue 0 at this
    /// instant (the 4 AM paper-ticket submission).
    pub batch_at: Option<Nanos>,
    /// Size of the batch surge (paper: queue length reached ~4000).
    pub batch_size: u32,
    /// Degrade the revenue database (the diagnosed production problem).
    pub slow_db: bool,
}

impl Default for DeltaConfig {
    fn default() -> Self {
        DeltaConfig {
            seed: 7,
            queues: 25,
            events_per_hour: 40_000.0,
            batch_at: None,
            batch_size: 4_000,
            slow_db: false,
        }
    }
}

/// Node handles of a built pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeltaNodes {
    /// The front-end control system all queues feed into.
    pub hub: NodeId,
    /// Ticket parsing stage.
    pub parser: NodeId,
    /// Validation stage.
    pub validator: NodeId,
    /// The revenue database.
    pub db: NodeId,
    /// The feed clients, one per queue.
    pub queues: Vec<NodeId>,
}

/// A built Revenue Pipeline: the simulation plus handles.
#[derive(Debug)]
pub struct Delta {
    sim: Simulation,
    nodes: DeltaNodes,
    classes: Vec<ClassId>,
}

impl Delta {
    /// Builds the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `queues` is zero or the internally constructed topology
    /// fails validation.
    pub fn build(config: DeltaConfig) -> Self {
        assert!(config.queues > 0, "at least one queue");
        let mut t = TopologyBuilder::new();
        let link = DelayDist::constant_millis(2);

        let hub = t.service(
            "hub",
            ServiceConfig::new(DelayDist::exponential_millis(10))
                .with_response_time(DelayDist::Constant(Nanos::from_millis(1))),
        );
        let parser = t.service(
            "parser",
            ServiceConfig::new(DelayDist::exponential_millis(35))
                .with_response_time(DelayDist::Constant(Nanos::from_millis(1))),
        );
        let validator = t.service(
            "validator",
            ServiceConfig::new(DelayDist::exponential_millis(25))
                .with_response_time(DelayDist::Constant(Nanos::from_millis(1))),
        );
        let db_service = if config.slow_db {
            // The slow connection: the workload stays moderate, but the
            // database's effective service time pushes its utilization to
            // ~0.85, so queueing (amplified by bursty arrivals) pushes
            // response times into the multi-second range.
            DelayDist::exponential_millis(75)
        } else {
            DelayDist::exponential_millis(45)
        };
        let db = t.service(
            "revenue_db",
            ServiceConfig::new(db_service)
                .with_response_time(DelayDist::Constant(Nanos::from_millis(1))),
        );

        let per_queue_rate = config.events_per_hour / 3600.0 / config.queues as f64;
        let mut queues = Vec::with_capacity(config.queues);
        let mut classes = Vec::with_capacity(config.queues);
        for i in 0..config.queues {
            let class = t.service_class(&format!("queue_{i:02}"));
            // Every feed submits in clumps — upstream systems batch their
            // events, so each queue is a bursty ON/OFF source with its own
            // (randomly drawn) rhythm. This "wide variation in request
            // traffic" matches the paper's workload characterization and
            // is what makes individual feeds identifiable in the
            // aggregated downstream traffic.
            let workload = if i == 0 {
                match config.batch_at {
                    Some(at) => Workload::poisson_with_batches(
                        per_queue_rate,
                        vec![(at, config.batch_size)],
                    ),
                    None => Workload::poisson(per_queue_rate),
                }
            } else {
                Workload::on_off(
                    per_queue_rate * 4.0,
                    Nanos::from_secs(30),
                    Nanos::from_secs(90),
                )
            };
            let q = t.client(&format!("feed_{i:02}"), class, hub, workload);
            t.connect(q, hub, link.clone());
            t.route(hub, class, Route::fixed(parser));
            t.route(parser, class, Route::fixed(validator));
            t.route(validator, class, Route::fixed(db));
            t.route(db, class, Route::terminal());
            queues.push(q);
            classes.push(class);
        }
        t.connect(hub, parser, link.clone());
        t.connect(parser, validator, link.clone());
        t.connect(validator, db, link);

        let sim = Simulation::new(t.build().expect("delta topology is valid"), config.seed);
        Delta {
            sim,
            nodes: DeltaNodes {
                hub,
                parser,
                validator,
                db,
                queues,
            },
            classes,
        }
    }

    /// The underlying simulation.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// Mutable access (to advance time).
    pub fn sim_mut(&mut self) -> &mut Simulation {
        &mut self.sim
    }

    /// Node handles.
    pub fn nodes(&self) -> &DeltaNodes {
        &self.nodes
    }

    /// The per-queue service classes (indexed like
    /// [`DeltaNodes::queues`]).
    pub fn classes(&self) -> &[ClassId] {
        &self.classes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(config: DeltaConfig) -> Delta {
        Delta::build(DeltaConfig {
            queues: 5,
            ..config
        })
    }

    #[test]
    fn pipeline_processes_events_end_to_end() {
        let mut d = small(DeltaConfig::default());
        d.sim_mut().run_until(Nanos::from_minutes(10));
        let truth = d.sim().truth();
        assert!(truth.completed_count() > 300, "{}", truth.completed_count());
        // Every class follows hub -> parser -> validator -> db.
        let n = d.nodes().clone();
        for &class in d.classes() {
            let paths = truth.class_paths(class);
            if paths.is_empty() {
                continue; // a bursty queue may not have fired yet
            }
            assert_eq!(paths.len(), 1, "class {class}: {paths:?}");
            assert!(paths.contains_key(&vec![n.hub, n.parser, n.validator, n.db]));
        }
    }

    #[test]
    fn batch_surge_floods_the_hub_queue() {
        let mut d = small(DeltaConfig {
            batch_at: Some(Nanos::from_minutes(2)),
            batch_size: 2_000,
            ..DeltaConfig::default()
        });
        d.sim_mut().run_until(Nanos::from_minutes(4));
        let hub = d.nodes().hub;
        assert!(
            d.sim().max_queue_len(hub) > 1_000,
            "hub queue peaked at {}",
            d.sim().max_queue_len(hub)
        );
    }

    #[test]
    fn slow_db_inflates_latency_for_moderate_workload() {
        let fast = {
            let mut d = small(DeltaConfig::default());
            d.sim_mut().run_until(Nanos::from_minutes(10));
            let c = d.classes()[0];
            d.sim().truth().class_latency(c).mean()
        };
        let slow = {
            let mut d = small(DeltaConfig {
                slow_db: true,
                ..DeltaConfig::default()
            });
            d.sim_mut().run_until(Nanos::from_minutes(10));
            let c = d.classes()[0];
            d.sim().truth().class_latency(c).mean()
        };
        assert!(
            slow > fast * 1.5,
            "slow {slow} should far exceed fast {fast}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one queue")]
    fn zero_queues_rejected() {
        let _ = Delta::build(DeltaConfig {
            queues: 0,
            ..DeltaConfig::default()
        });
    }
}
