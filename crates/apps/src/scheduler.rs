//! The E2EProf-driven SLA scheduler (paper Section 4.2, Table 1).
//!
//! Bidding requests carry real-time deadlines; comments do not. Plain
//! round-robin dispatch cannot react when one application-server branch
//! degrades. This module closes the loop: pathmap's live service graphs
//! yield per-branch latencies, a shared [`PathLatencyMap`] publishes them,
//! and the [`SlaRouter`] routes bidding requests to the currently faster
//! branch while penalizing comment requests with the slower one.

use e2eprof_core::graph::ServiceGraph;
use e2eprof_netsim::routing::DynamicRouter;
use e2eprof_netsim::{ClassId, NodeId};
use e2eprof_timeseries::Nanos;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Shared, live per-branch latency estimates (keyed by the branch's first
/// hop, e.g. the Tomcat server).
#[derive(Debug, Clone, Default)]
pub struct PathLatencyMap {
    inner: Arc<RwLock<HashMap<NodeId, Nanos>>>,
}

impl PathLatencyMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Publishes a branch latency.
    pub fn set(&self, branch: NodeId, latency: Nanos) {
        self.inner.write().insert(branch, latency);
    }

    /// The current estimate for a branch.
    pub fn get(&self, branch: NodeId) -> Option<Nanos> {
        self.inner.read().get(&branch).copied()
    }

    /// Updates the map from freshly discovered service graphs: for each
    /// branch head in `branches`, the round-trip latency below the front
    /// end `ws` (averaged over the graphs that observed it).
    pub fn update_from_graphs(&self, graphs: &[ServiceGraph], ws: NodeId, branches: &[NodeId]) {
        for &branch in branches {
            let mut estimates = Vec::new();
            for g in graphs {
                if let Some(latency) = branch_latency(g, ws, branch) {
                    estimates.push(latency.as_nanos());
                }
            }
            if !estimates.is_empty() {
                let mean = estimates.iter().sum::<u64>() / estimates.len() as u64;
                self.set(branch, Nanos::from_nanos(mean));
            }
        }
    }
}

/// The round-trip latency of the branch starting at `branch`, measured
/// below the front end `ws`: the cumulative delay when the branch's
/// response re-enters `ws` minus the cumulative delay when the request
/// left `ws` toward the branch.
pub fn branch_latency(graph: &ServiceGraph, ws: NodeId, branch: NodeId) -> Option<Nanos> {
    let depart = graph.edge(ws, branch)?.min_delay()?;
    let back = graph.edge(branch, ws)?.min_delay()?;
    back.checked_sub(depart)
}

/// A [`DynamicRouter`] implementing the Table 1 policy: bidding requests
/// take the faster branch, comment requests the slower one; round-robin
/// until estimates exist.
#[derive(Debug)]
pub struct SlaRouter {
    bidding: ClassId,
    branch_a: NodeId,
    branch_b: NodeId,
    map: PathLatencyMap,
    fallback: AtomicUsize,
}

impl SlaRouter {
    /// Creates a router favouring `bidding`-class requests between the two
    /// branches.
    pub fn new(bidding: ClassId, branch_a: NodeId, branch_b: NodeId, map: PathLatencyMap) -> Self {
        SlaRouter {
            bidding,
            branch_a,
            branch_b,
            map,
            fallback: AtomicUsize::new(0),
        }
    }

    /// The shared latency map this router consults.
    pub fn latency_map(&self) -> &PathLatencyMap {
        &self.map
    }
}

impl DynamicRouter for SlaRouter {
    fn choose(&self, class: ClassId, _now: Nanos) -> NodeId {
        match (self.map.get(self.branch_a), self.map.get(self.branch_b)) {
            (Some(la), Some(lb)) => {
                let (fast, slow) = if la <= lb {
                    (self.branch_a, self.branch_b)
                } else {
                    (self.branch_b, self.branch_a)
                };
                if class == self.bidding {
                    fast
                } else {
                    slow
                }
            }
            // No estimates yet: behave like round-robin.
            _ => {
                if self
                    .fallback
                    .fetch_add(1, Ordering::Relaxed)
                    .is_multiple_of(2)
                {
                    self.branch_a
                } else {
                    self.branch_b
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use e2eprof_core::graph::GraphEdge;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn graph_with_branch(ws: NodeId, ts: NodeId, depart_ms: u64, back_ms: u64) -> ServiceGraph {
        let mut g = ServiceGraph::new(n(9), "c".into(), ws);
        g.add_vertex(ws, "ws".into());
        g.add_vertex(ts, "ts".into());
        g.add_edge(GraphEdge {
            from: ws,
            to: ts,
            spikes: vec![e2eprof_core::graph::DelaySpike {
                delay: Nanos::from_millis(depart_ms),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(depart_ms),
        });
        g.add_edge(GraphEdge {
            from: ts,
            to: ws,
            spikes: vec![e2eprof_core::graph::DelaySpike {
                delay: Nanos::from_millis(back_ms),
                strength: 0.9,
            }],
            hop_delay: Nanos::from_millis(back_ms - depart_ms),
        });
        g
    }

    #[test]
    fn branch_latency_is_round_trip_below_front_end() {
        let g = graph_with_branch(n(0), n(1), 5, 45);
        assert_eq!(branch_latency(&g, n(0), n(1)), Some(Nanos::from_millis(40)));
        assert_eq!(branch_latency(&g, n(0), n(2)), None);
    }

    #[test]
    fn map_updates_from_graphs() {
        let map = PathLatencyMap::new();
        let g1 = graph_with_branch(n(0), n(1), 5, 45);
        let g2 = graph_with_branch(n(0), n(2), 5, 105);
        map.update_from_graphs(&[g1, g2], n(0), &[n(1), n(2)]);
        assert_eq!(map.get(n(1)), Some(Nanos::from_millis(40)));
        assert_eq!(map.get(n(2)), Some(Nanos::from_millis(100)));
    }

    #[test]
    fn bidding_takes_fast_branch_comment_takes_slow() {
        let map = PathLatencyMap::new();
        map.set(n(1), Nanos::from_millis(30));
        map.set(n(2), Nanos::from_millis(90));
        let bidding = ClassId::new(0);
        let comment = ClassId::new(1);
        let r = SlaRouter::new(bidding, n(1), n(2), map.clone());
        assert_eq!(r.choose(bidding, Nanos::ZERO), n(1));
        assert_eq!(r.choose(comment, Nanos::ZERO), n(2));
        // Branch speeds flip → decisions flip.
        map.set(n(1), Nanos::from_millis(200));
        assert_eq!(r.choose(bidding, Nanos::ZERO), n(2));
        assert_eq!(r.choose(comment, Nanos::ZERO), n(1));
    }

    #[test]
    fn fallback_round_robins_without_estimates() {
        let r = SlaRouter::new(ClassId::new(0), n(1), n(2), PathLatencyMap::new());
        let picks: Vec<NodeId> = (0..4)
            .map(|_| r.choose(ClassId::new(0), Nanos::ZERO))
            .collect();
        assert_eq!(picks, vec![n(1), n(2), n(1), n(2)]);
    }
}
